//! The append-only archive journal: one fsynced, length- and
//! hash-protected JSONL line per run.
//!
//! ```text
//! {"store":"rigor-archive","version":1}
//! {"len":1234,"hash":"<32 hex>","run":{...canonical payload...}}
//! {"len":987,"hash":"<32 hex>","run":{...}}
//! ```
//!
//! Crash semantics mirror `rigor::checkpoint`: every append writes one
//! complete line and fsyncs, so after a kill the file holds every archived
//! run plus at most one torn final line. [`Store::open`] keeps the valid
//! prefix and remembers where it ends; the next append truncates the torn
//! tail before writing, so the file never accumulates garbage. A *complete*
//! line that fails its length/hash check is corruption, not truncation, and
//! is a hard error.

use std::fmt;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use rigor::measurement::BenchmarkMeasurement;
use rigor::ExperimentConfig;
use serde::json::{get_field, DeError, JsonValue};
use serde::{Deserialize, Serialize};

use crate::hash::content_hash;
use crate::index::{Index, IndexEntry};
use crate::record::{Payload, RunRecord};

/// File name of the archive journal inside the store directory.
pub const ARCHIVE_FILE: &str = "archive.jsonl";
/// Magic tag of the meta line.
const MAGIC: &str = "rigor-archive";
/// Archive format version.
const VERSION: u32 = 1;

/// Any failure of the results archive.
#[derive(Debug)]
pub enum StoreError {
    /// Reading or writing the store failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The archive file exists but is not a rigor archive (bad meta line or
    /// unsupported version).
    NotAnArchive {
        /// The archive path.
        path: String,
        /// What was wrong.
        message: String,
    },
    /// A complete (newline-terminated) line failed to parse or failed its
    /// length/hash integrity check — corruption, not a torn write.
    Corrupt {
        /// 1-based line number in the archive file.
        line: usize,
        /// Byte offset of the start of the corrupt line.
        offset: u64,
        /// What was wrong.
        message: String,
    },
    /// A baseline reference matched no archived run.
    UnknownRun {
        /// The reference as given.
        reference: String,
    },
    /// A run-id prefix matched more than one archived run.
    AmbiguousRun {
        /// The reference as given.
        reference: String,
        /// The ids it matched.
        matches: Vec<String>,
    },
    /// The archive holds no runs yet.
    Empty,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "{path}: {source}"),
            StoreError::NotAnArchive { path, message } => {
                write!(f, "{path}: not a rigor archive: {message}")
            }
            StoreError::Corrupt {
                line,
                offset,
                message,
            } => {
                write!(
                    f,
                    "archive line {line} (byte offset {offset}): corrupt: {message}"
                )
            }
            StoreError::UnknownRun { reference } => {
                write!(f, "no archived run matches `{reference}`")
            }
            StoreError::AmbiguousRun { reference, matches } => write!(
                f,
                "run reference `{reference}` is ambiguous: matches {}",
                matches.join(", ")
            ),
            StoreError::Empty => write!(
                f,
                "the archive holds no runs yet (run `rigor archive` first)"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path) -> impl Fn(io::Error) -> StoreError + '_ {
    move |source| StoreError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// `from_str` needs a `Deserialize` target; keeps the raw value for
/// shape dispatch.
struct RawValue(JsonValue);

impl Deserialize for RawValue {
    fn from_value(v: &JsonValue) -> Result<RawValue, DeError> {
        Ok(RawValue(v.clone()))
    }
}

fn meta_line_text() -> String {
    let meta = JsonValue::Object(vec![
        ("store".into(), JsonValue::Str(MAGIC.into())),
        ("version".into(), VERSION.to_value()),
    ]);
    serde_json::to_string(&Payload(meta)).expect("meta is plain data")
}

/// Formats one record line — `{"len":N,"hash":"…","run":{…}}` — the unit of
/// both the on-disk journal and the `rigor serve` wire protocol. The payload
/// text is spliced in verbatim so the stored bytes are exactly the bytes the
/// hash was computed over.
pub fn record_line(record: &RunRecord) -> String {
    let payload = record.payload_json();
    format!(
        "{{\"len\":{},\"hash\":\"{}\",\"run\":{}}}",
        payload.len(),
        record.id,
        payload
    )
}

/// Parses and integrity-checks one record line (see [`record_line`]).
///
/// # Errors
///
/// Malformed JSON, a missing field, or a length/content-hash mismatch
/// between the header and the re-serialized payload.
pub fn parse_record_line(line: &str) -> Result<RunRecord, DeError> {
    let RawValue(v) = serde_json::from_str(line).map_err(|e| DeError::new(e.to_string()))?;
    let len: u64 = get_field(&v, "len")?;
    let hash: String = get_field(&v, "hash")?;
    let run = v
        .get("run")
        .ok_or_else(|| DeError::new("missing `run` field"))?;
    let record = RunRecord::from_payload(run)?;
    // `record.id` was recomputed from the canonical re-serialization of the
    // parsed payload, so comparing it against the stored hash (and length)
    // verifies every byte that matters survived.
    let payload = record.payload_json();
    if payload.len() as u64 != len {
        return Err(DeError::new(format!(
            "length mismatch: header says {len}, payload re-serializes to {}",
            payload.len()
        )));
    }
    if record.id != hash {
        return Err(DeError::new(format!(
            "content hash mismatch: header says {hash}, payload hashes to {}",
            record.id
        )));
    }
    debug_assert_eq!(record.id, content_hash(payload.as_bytes()));
    Ok(record)
}

/// One run plus where its line lives in the journal.
#[derive(Debug, Clone)]
struct StoredRun {
    record: RunRecord,
    offset: u64,
    bytes: u64,
}

/// One complete line that failed parsing or its integrity check, located
/// precisely so the damage can be inspected with a hex editor or `dd`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptLine {
    /// 1-based line number in the archive file.
    pub line: usize,
    /// Byte offset of the start of the line.
    pub offset: u64,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for CorruptLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {} (byte offset {}): {}",
            self.line, self.offset, self.message
        )
    }
}

/// Result of a [`Store::verify`] integrity scan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// Runs whose length and content hash checked out.
    pub intact: usize,
    /// Complete lines that failed parsing or integrity, each located by
    /// line number and byte offset.
    pub corrupt: Vec<CorruptLine>,
    /// True when the file ends in an unterminated (torn) line.
    pub torn_tail: bool,
}

impl VerifyReport {
    /// True when every line checked out and the file ends cleanly.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && !self.torn_tail
    }
}

/// Result of a [`Store::compact`] rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// Runs kept.
    pub kept: usize,
    /// Runs dropped (when a retention limit was given).
    pub dropped: usize,
    /// Journal size before, bytes.
    pub bytes_before: u64,
    /// Journal size after, bytes.
    pub bytes_after: u64,
}

/// An open results archive: the parsed journal plus its on-disk location.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    runs: Vec<StoredRun>,
    /// Byte length of the valid journal prefix (meta line + every intact
    /// record line). Anything past this is a torn tail, dropped on the next
    /// append.
    valid_len: u64,
    torn: bool,
}

impl Store {
    /// Opens (creating if needed) the archive in directory `dir`.
    ///
    /// A torn final line — the signature of a kill mid-append — is
    /// tolerated: the valid prefix loads and the tail is dropped on the
    /// next append. Corruption anywhere else is a hard error. The index
    /// sidecar is rebuilt whenever it is missing or stale.
    ///
    /// # Errors
    ///
    /// I/O failures, a non-archive file at the journal path, or a corrupt
    /// complete line.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(io_err(&dir))?;
        let path = dir.join(ARCHIVE_FILE);
        if !path.exists() {
            let mut f = std::fs::File::create(&path).map_err(io_err(&path))?;
            writeln!(f, "{}", meta_line_text()).map_err(io_err(&path))?;
            f.sync_all().map_err(io_err(&path))?;
        }
        let text = std::fs::read_to_string(&path).map_err(io_err(&path))?;
        let mut store = Store {
            dir,
            runs: Vec::new(),
            valid_len: 0,
            torn: false,
        };
        store.parse_journal(&path, &text)?;
        store.refresh_index()?;
        Ok(store)
    }

    fn parse_journal(&mut self, path: &Path, text: &str) -> Result<(), StoreError> {
        // Split into newline-*terminated* lines; an unterminated final
        // segment is a torn tail, never parsed.
        let mut offset = 0usize;
        let mut complete: Vec<(usize, &str)> = Vec::new(); // (offset, line without \n)
        let bytes = text.as_bytes();
        while offset < bytes.len() {
            match bytes[offset..].iter().position(|&b| b == b'\n') {
                Some(rel) => {
                    complete.push((offset, &text[offset..offset + rel]));
                    offset += rel + 1;
                }
                None => {
                    self.torn = true;
                    break;
                }
            }
        }

        let Some((_, first)) = complete.first() else {
            // Nothing complete on disk (fresh kill before the meta line
            // finished): treat as an empty archive; the torn tail — if any
            // — is dropped on the next append.
            self.valid_len = 0;
            return Ok(());
        };
        let head: RawValue = serde_json::from_str(first).map_err(|e| StoreError::NotAnArchive {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let magic: Option<String> = get_field(&head.0, "store").ok();
        if magic.as_deref() != Some(MAGIC) {
            return Err(StoreError::NotAnArchive {
                path: path.display().to_string(),
                message: format!("missing `\"store\":\"{MAGIC}\"` tag"),
            });
        }
        let version: u32 = get_field(&head.0, "version").unwrap_or(0);
        if version != VERSION {
            return Err(StoreError::NotAnArchive {
                path: path.display().to_string(),
                message: format!("unsupported archive version {version} (expected {VERSION})"),
            });
        }
        self.valid_len = (complete[0].0 + complete[0].1.len() + 1) as u64;

        for (idx, (line_offset, line)) in complete.iter().enumerate().skip(1) {
            if line.trim().is_empty() {
                self.valid_len = (*line_offset + line.len() + 1) as u64;
                continue;
            }
            let record = parse_record_line(line).map_err(|e| StoreError::Corrupt {
                line: idx + 1,
                offset: *line_offset as u64,
                message: e.to_string(),
            })?;
            self.runs.push(StoredRun {
                record,
                offset: *line_offset as u64,
                bytes: (line.len() + 1) as u64,
            });
            self.valid_len = (*line_offset + line.len() + 1) as u64;
        }
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the archive journal.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(ARCHIVE_FILE)
    }

    /// True when the journal ended in a torn line at open time.
    pub fn recovered_torn_tail(&self) -> bool {
        self.torn
    }

    /// Number of archived runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no run is archived.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// All archived runs, in append order.
    pub fn runs(&self) -> impl Iterator<Item = &RunRecord> {
        self.runs.iter().map(|s| &s.record)
    }

    /// The most recently archived run.
    pub fn latest(&self) -> Option<&RunRecord> {
        self.runs.last().map(|s| &s.record)
    }

    /// The last `n` archived runs (fewer when the archive is shorter), in
    /// append order.
    pub fn last_n(&self, n: usize) -> Vec<&RunRecord> {
        let start = self.runs.len().saturating_sub(n.max(1));
        self.runs[start..].iter().map(|s| &s.record).collect()
    }

    /// Finds a run by id prefix (at least one hex character) or exact
    /// label.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownRun`] when nothing matches,
    /// [`StoreError::AmbiguousRun`] when an id prefix matches several runs.
    pub fn get(&self, reference: &str) -> Result<&RunRecord, StoreError> {
        if let Some(run) = self
            .runs
            .iter()
            .find(|s| s.record.label.as_deref() == Some(reference))
        {
            return Ok(&run.record);
        }
        let matches: Vec<&RunRecord> = self
            .runs
            .iter()
            .map(|s| &s.record)
            .filter(|r| r.id.starts_with(reference))
            .collect();
        match matches.as_slice() {
            [] => Err(StoreError::UnknownRun {
                reference: reference.to_string(),
            }),
            [one] => Ok(one),
            many => Err(StoreError::AmbiguousRun {
                reference: reference.to_string(),
                matches: many.iter().map(|r| r.short_id().to_string()).collect(),
            }),
        }
    }

    /// Archives one run: builds the content-addressed record, appends its
    /// line (dropping any torn tail first), fsyncs, and refreshes the
    /// index. Returns the stored record.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn append(
        &mut self,
        label: Option<String>,
        config: &ExperimentConfig,
        measurements: Vec<BenchmarkMeasurement>,
    ) -> Result<&RunRecord, StoreError> {
        let seq = self.runs.last().map(|s| s.record.seq + 1).unwrap_or(0);
        self.append_at_seq(seq, label, config, measurements)
    }

    /// Archives one run under an explicit sequence number instead of the
    /// next free one. The campaign orchestrator uses this to give every
    /// cell its grid index as `seq`, so a cell's archived line is
    /// byte-identical whatever order concurrent workers complete in (the
    /// content hash covers `seq`).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn append_at_seq(
        &mut self,
        seq: u64,
        label: Option<String>,
        config: &ExperimentConfig,
        measurements: Vec<BenchmarkMeasurement>,
    ) -> Result<&RunRecord, StoreError> {
        self.append_record(RunRecord::new(seq, label, config, measurements))
    }

    /// Archives a fully-formed record verbatim — the ingestion path for
    /// runs that arrive over the wire (`rigor serve`). The record's id was
    /// recomputed from its canonical payload when it was parsed
    /// ([`RunRecord::from_payload`]), so the line written here is
    /// byte-identical to the one the originating client would have written
    /// locally.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn append_record(&mut self, record: RunRecord) -> Result<&RunRecord, StoreError> {
        let line = record_line(&record);
        let path = self.journal_path();

        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(io_err(&path))?;
        let disk_len = file.metadata().map_err(io_err(&path))?.len();
        if self.valid_len == 0 {
            // Recovering from a kill before the meta line landed: rewrite
            // the header from scratch.
            file.set_len(0).map_err(io_err(&path))?;
            file.seek(SeekFrom::Start(0)).map_err(io_err(&path))?;
            writeln!(file, "{}", meta_line_text()).map_err(io_err(&path))?;
            self.valid_len = (meta_line_text().len() + 1) as u64;
        } else if disk_len > self.valid_len {
            // Drop the torn tail so the journal never holds mid-file garbage.
            file.set_len(self.valid_len).map_err(io_err(&path))?;
        }
        file.seek(SeekFrom::Start(self.valid_len))
            .map_err(io_err(&path))?;
        writeln!(file, "{line}").map_err(io_err(&path))?;
        // fsync per append: the whole point is surviving a kill.
        file.sync_all().map_err(io_err(&path))?;

        let stored = StoredRun {
            record,
            offset: self.valid_len,
            bytes: (line.len() + 1) as u64,
        };
        self.valid_len += stored.bytes;
        self.torn = false;
        self.runs.push(stored);
        self.refresh_index()?;
        Ok(&self.runs.last().expect("just pushed").record)
    }

    /// The index the current in-memory state corresponds to.
    fn index(&self) -> Index {
        Index {
            entries: self
                .runs
                .iter()
                .map(|s| IndexEntry::of(&s.record, s.offset, s.bytes))
                .collect(),
        }
    }

    /// Rewrites the index sidecar if it is missing or disagrees with the
    /// journal (the journal is always the source of truth).
    fn refresh_index(&self) -> Result<(), StoreError> {
        let want = self.index();
        if Index::load(&self.dir).ok().as_ref() != Some(&want) {
            want.write(&self.dir).map_err(io_err(&self.dir))?;
        }
        Ok(())
    }

    /// Re-reads the journal from disk and integrity-checks every line
    /// (length + content hash) without touching the in-memory state.
    ///
    /// # Errors
    ///
    /// Only on I/O failure — integrity problems are *reported*, not thrown.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        Store::verify_path(&self.journal_path())
    }

    /// Integrity-checks the archive in `dir` without opening it — usable
    /// on archives so corrupt that [`Store::open`] refuses them, which is
    /// exactly when a located damage report matters most.
    ///
    /// # Errors
    ///
    /// Only on I/O failure — integrity problems are *reported*, not thrown.
    pub fn verify_dir(dir: impl Into<PathBuf>) -> Result<VerifyReport, StoreError> {
        Store::verify_path(&dir.into().join(ARCHIVE_FILE))
    }

    fn verify_path(path: &Path) -> Result<VerifyReport, StoreError> {
        let mut text = String::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(io_err(path))?;
        let mut report = VerifyReport::default();
        // The same newline-terminated scan as `parse_journal`, so line
        // numbers and byte offsets agree between `open` errors and
        // `verify` findings.
        let bytes = text.as_bytes();
        let mut offset = 0usize;
        let mut idx = 0usize;
        while offset < bytes.len() {
            let Some(rel) = bytes[offset..].iter().position(|&b| b == b'\n') else {
                report.torn_tail = true;
                break;
            };
            let line = &text[offset..offset + rel];
            if idx > 0 && !line.trim().is_empty() {
                // The meta line's shape (idx 0) is checked at open.
                match parse_record_line(line) {
                    Ok(_) => report.intact += 1,
                    Err(e) => report.corrupt.push(CorruptLine {
                        line: idx + 1,
                        offset: offset as u64,
                        message: e.to_string(),
                    }),
                }
            }
            offset += rel + 1;
            idx += 1;
        }
        Ok(report)
    }

    /// Rewrites the journal from the in-memory runs — dropping any torn
    /// tail and, when `keep_last` is given, all but the newest N runs —
    /// then rebuilds the index. Atomic: written to a temp file, fsynced,
    /// renamed over the journal.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn compact(&mut self, keep_last: Option<usize>) -> Result<CompactionReport, StoreError> {
        let path = self.journal_path();
        let bytes_before = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let keep_from = keep_last
            .map(|n| self.runs.len().saturating_sub(n))
            .unwrap_or(0);
        let dropped = keep_from;

        let tmp = self.dir.join(format!("{ARCHIVE_FILE}.tmp"));
        let mut kept: Vec<StoredRun> = Vec::with_capacity(self.runs.len() - keep_from);
        {
            let mut f = std::fs::File::create(&tmp).map_err(io_err(&tmp))?;
            writeln!(f, "{}", meta_line_text()).map_err(io_err(&tmp))?;
            let mut offset = (meta_line_text().len() + 1) as u64;
            for s in &self.runs[keep_from..] {
                let line = record_line(&s.record);
                writeln!(f, "{line}").map_err(io_err(&tmp))?;
                let bytes = (line.len() + 1) as u64;
                kept.push(StoredRun {
                    record: s.record.clone(),
                    offset,
                    bytes,
                });
                offset += bytes;
            }
            f.sync_all().map_err(io_err(&tmp))?;
        }
        std::fs::rename(&tmp, &path).map_err(io_err(&path))?;

        self.runs = kept;
        self.valid_len = self
            .runs
            .last()
            .map(|s| s.offset + s.bytes)
            .unwrap_or((meta_line_text().len() + 1) as u64);
        self.torn = false;
        self.refresh_index()?;
        let bytes_after = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        Ok(CompactionReport {
            kept: self.runs.len(),
            dropped,
            bytes_before,
            bytes_after,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigor::measurement::InvocationRecord;

    fn measurement(benchmark: &str, level: f64) -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: benchmark.into(),
            engine: "interp".into(),
            invocations: (0..3)
                .map(|i| InvocationRecord {
                    invocation: i,
                    seed: u64::from(i),
                    startup_ns: 5.0,
                    iteration_ns: vec![level, level * 1.01, level * 0.99],
                    gc_cycles: 0,
                    jit_compiles: 0,
                    deopts: 0,
                    checksum: "7".into(),
                    iteration_counters: None,
                    attempts: 1,
                })
                .collect(),
            censored: Vec::new(),
            quarantined: false,
        }
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig::interp()
            .with_invocations(3)
            .with_iterations(3)
            .with_seed(11)
    }

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rigor-store-archive-test-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn append_load_roundtrip() {
        let dir = temp_store("roundtrip");
        let mut store = Store::open(&dir).unwrap();
        assert!(store.is_empty());
        let id0 = store
            .append(None, &config(), vec![measurement("sieve", 100.0)])
            .unwrap()
            .id
            .clone();
        let id1 = store
            .append(
                Some("second".into()),
                &config(),
                vec![measurement("sieve", 100.0), measurement("nbody", 50.0)],
            )
            .unwrap()
            .id
            .clone();
        assert_ne!(id0, id1);

        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(!reopened.recovered_torn_tail());
        let runs: Vec<&RunRecord> = reopened.runs().collect();
        assert_eq!(runs[0].id, id0);
        assert_eq!(runs[0].seq, 0);
        assert_eq!(runs[1].id, id1);
        assert_eq!(runs[1].seq, 1);
        assert_eq!(runs[1].label.as_deref(), Some("second"));
        assert_eq!(runs[1].benchmark_names(), vec!["sieve", "nbody"]);
        assert_eq!(reopened.latest().unwrap().id, id1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lookup_by_prefix_and_label() {
        let dir = temp_store("lookup");
        let mut store = Store::open(&dir).unwrap();
        let id = store
            .append(
                Some("tagged".into()),
                &config(),
                vec![measurement("a", 1.0)],
            )
            .unwrap()
            .id
            .clone();
        store
            .append(None, &config(), vec![measurement("a", 2.0)])
            .unwrap();
        assert_eq!(store.get(&id[..8]).unwrap().id, id);
        assert_eq!(store.get("tagged").unwrap().id, id);
        assert!(matches!(
            store.get("zzzz"),
            Err(StoreError::UnknownRun { .. })
        ));
        // The empty prefix matches everything → ambiguous.
        assert!(matches!(
            store.get(""),
            Err(StoreError::AmbiguousRun { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_recovered_and_truncated_on_append() {
        let dir = temp_store("torn");
        let mut store = Store::open(&dir).unwrap();
        store
            .append(None, &config(), vec![measurement("a", 1.0)])
            .unwrap();
        store
            .append(None, &config(), vec![measurement("a", 2.0)])
            .unwrap();
        let clean = std::fs::read(dir.join(ARCHIVE_FILE)).unwrap();

        // Chop the final line mid-way, as a kill mid-append would.
        std::fs::write(dir.join(ARCHIVE_FILE), &clean[..clean.len() - 20]).unwrap();
        let mut recovered = Store::open(&dir).unwrap();
        assert!(recovered.recovered_torn_tail());
        assert_eq!(recovered.len(), 1);

        // Re-appending the lost run reproduces the uninterrupted file
        // byte-for-byte (determinism makes the payload identical).
        recovered
            .append(None, &config(), vec![measurement("a", 2.0)])
            .unwrap();
        assert_eq!(std::fs::read(dir.join(ARCHIVE_FILE)).unwrap(), clean);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn complete_corrupt_line_is_a_hard_error() {
        let dir = temp_store("corrupt");
        let mut store = Store::open(&dir).unwrap();
        store
            .append(None, &config(), vec![measurement("a", 1.0)])
            .unwrap();
        let path = dir.join(ARCHIVE_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip a digit inside the record line (keeping it complete).
        let flipped = text.replace("\"len\":", "\"len\":9");
        assert_ne!(flipped, text);
        std::fs::write(&path, &flipped).unwrap();
        // The error locates the damage: line number AND byte offset (the
        // record line starts right after the meta line + newline).
        let meta_len = (meta_line_text().len() + 1) as u64;
        match Store::open(&dir) {
            Err(StoreError::Corrupt { line, offset, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(offset, meta_len);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Same for a bit flipped in the payload itself.
        text = text.replace("\"startup_ns\":5.0", "\"startup_ns\":6.0");
        assert!(text.contains("\"startup_ns\":6.0"));
        std::fs::write(&path, &text).unwrap();
        assert!(matches!(Store::open(&dir), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_locates_corrupt_lines_by_offset() {
        let dir = temp_store("verifyoffset");
        let mut store = Store::open(&dir).unwrap();
        store
            .append(None, &config(), vec![measurement("a", 1.0)])
            .unwrap();
        store
            .append(None, &config(), vec![measurement("b", 2.0)])
            .unwrap();
        let path = dir.join(ARCHIVE_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        // Corrupt the second record line (line 3) only.
        let mut lines: Vec<String> = text.split_inclusive('\n').map(str::to_string).collect();
        let expected_offset = (lines[0].len() + lines[1].len()) as u64;
        lines[2] = lines[2].replacen("\"startup_ns\":5.0", "\"startup_ns\":6.0", 1);
        let sabotaged = lines.concat();
        assert_ne!(sabotaged, text);
        std::fs::write(&path, &sabotaged).unwrap();
        let report = store.verify().unwrap();
        assert_eq!(report.intact, 1);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].line, 3);
        assert_eq!(report.corrupt[0].offset, expected_offset);
        assert!(report.corrupt[0].message.contains("hash mismatch"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_record_reproduces_the_local_line() {
        let dir_a = temp_store("wirelocal");
        let dir_b = temp_store("wireremote");
        let mut local = Store::open(&dir_a).unwrap();
        local
            .append(Some("wire".into()), &config(), vec![measurement("a", 1.0)])
            .unwrap();
        // Ship the record as its wire payload and ingest it verbatim.
        let payload: JsonValue =
            serde_json::from_str::<RawValue>(&local.latest().unwrap().payload_json())
                .map(|RawValue(v)| v)
                .unwrap();
        let parsed = RunRecord::from_payload(&payload).unwrap();
        let mut remote = Store::open(&dir_b).unwrap();
        remote.append_record(parsed).unwrap();
        assert_eq!(
            std::fs::read(dir_a.join(ARCHIVE_FILE)).unwrap(),
            std::fs::read(dir_b.join(ARCHIVE_FILE)).unwrap()
        );
        assert!(remote.verify().unwrap().is_clean());
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn rejects_non_archives() {
        let dir = temp_store("nonarchive");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(ARCHIVE_FILE), "{\"foo\":1}\n").unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::NotAnArchive { .. })
        ));
        std::fs::write(
            dir.join(ARCHIVE_FILE),
            "{\"store\":\"rigor-archive\",\"version\":99}\n",
        )
        .unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::NotAnArchive { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_integrity() {
        let dir = temp_store("verify");
        let mut store = Store::open(&dir).unwrap();
        store
            .append(None, &config(), vec![measurement("a", 1.0)])
            .unwrap();
        store
            .append(None, &config(), vec![measurement("b", 2.0)])
            .unwrap();
        let report = store.verify().unwrap();
        assert!(report.is_clean());
        assert_eq!(report.intact, 2);

        // Torn tail shows up in the report.
        let path = dir.join(ARCHIVE_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let report = Store::open(&dir).unwrap().verify().unwrap();
        assert!(report.torn_tail);
        assert!(!report.is_clean());
        assert_eq!(report.intact, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_drops_old_runs_and_rebuilds_index() {
        let dir = temp_store("compact");
        let mut store = Store::open(&dir).unwrap();
        for i in 0..5 {
            store
                .append(None, &config(), vec![measurement("a", 1.0 + f64::from(i))])
                .unwrap();
        }
        let report = store.compact(Some(2)).unwrap();
        assert_eq!(report.kept, 2);
        assert_eq!(report.dropped, 3);
        assert!(report.bytes_after < report.bytes_before);
        assert_eq!(store.len(), 2);
        // Sequence numbers survive compaction (they are part of identity).
        let seqs: Vec<u64> = store.runs().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        // New appends continue the sequence.
        store
            .append(None, &config(), vec![measurement("a", 9.0)])
            .unwrap();
        assert_eq!(store.latest().unwrap().seq, 5);

        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.len(), 3);
        assert!(reopened.verify().unwrap().is_clean());
        let index = Index::load(&dir).unwrap();
        assert_eq!(index.entries.len(), 3);
        assert_eq!(index.entries[0].seq, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_index_is_rebuilt_on_open() {
        let dir = temp_store("staleindex");
        let mut store = Store::open(&dir).unwrap();
        store
            .append(None, &config(), vec![measurement("a", 1.0)])
            .unwrap();
        // Sabotage the sidecar; the journal stays authoritative.
        std::fs::write(dir.join("index.json"), "{\"entries\":[]}\n").unwrap();
        let _ = Store::open(&dir).unwrap();
        let index = Index::load(&dir).unwrap();
        assert_eq!(index.entries.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn last_n_clamps() {
        let dir = temp_store("lastn");
        let mut store = Store::open(&dir).unwrap();
        for i in 0..3 {
            store
                .append(None, &config(), vec![measurement("a", 1.0 + f64::from(i))])
                .unwrap();
        }
        assert_eq!(store.last_n(2).len(), 2);
        assert_eq!(store.last_n(10).len(), 3);
        assert_eq!(store.last_n(0).len(), 1); // 0 is clamped to 1
        assert_eq!(store.last_n(2)[1].seq, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
