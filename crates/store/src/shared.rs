//! [`SharedStore`]: the archive behind a writer lock, as a campaign
//! [`CellSink`].
//!
//! The campaign orchestrator streams completed cells from many worker
//! threads; [`Store`] is single-writer by design. `SharedStore` wraps it in
//! a mutex so concurrent `archive_cell` calls serialize on the fsynced
//! append — the append order varies with scheduling, but each cell's line
//! is byte-identical regardless (its `seq` is the cell's grid index and the
//! content hash covers it), so two archives of the same campaign always
//! hold the same content-id *set*.
//!
//! Idempotency: the completed-check and the append happen under one lock
//! acquisition, so a cell replayed in a crash-recovery window is returned
//! its existing receipt instead of being appended twice.

use std::sync::Mutex;

use rigor::campaign::{Cell, CellPrecision, CellReceipt, CellSink};
use rigor::measurement::BenchmarkMeasurement;

use crate::archive::{Store, StoreError};
use crate::record::RunRecord;

/// A [`Store`] behind a writer lock; the on-disk [`CellSink`] of campaign
/// runs. Each completed cell becomes one archived run whose label is the
/// cell's canonical id and whose `seq` is the cell's grid index.
#[derive(Debug)]
pub struct SharedStore {
    store: Mutex<Store>,
}

/// The receipt for a run that archived `cell`.
fn receipt(record: &RunRecord) -> CellReceipt {
    CellReceipt {
        run_id: record.id.clone(),
        seq: record.seq,
    }
}

impl SharedStore {
    /// Wraps an opened store.
    pub fn new(store: Store) -> SharedStore {
        SharedStore {
            store: Mutex::new(store),
        }
    }

    /// Opens (creating if needed) the archive in `dir` and wraps it.
    ///
    /// # Errors
    ///
    /// As [`Store::open`].
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<SharedStore, StoreError> {
        Store::open(dir).map(SharedStore::new)
    }

    /// Unwraps back into the plain single-writer store.
    pub fn into_inner(self) -> Store {
        self.store.into_inner().expect("store lock poisoned")
    }

    /// Runs `f` with the locked store (for reads and non-campaign writes
    /// between campaign phases).
    pub fn with<R>(&self, f: impl FnOnce(&mut Store) -> R) -> R {
        f(&mut self.store.lock().expect("store lock poisoned"))
    }
}

impl CellSink for SharedStore {
    fn archive_cell(
        &self,
        cell: &Cell,
        measurement: &BenchmarkMeasurement,
    ) -> Result<CellReceipt, String> {
        let mut store = self.store.lock().expect("store lock poisoned");
        let label = cell.id.canonical();
        // Check-then-append under one lock: replays return the original
        // receipt instead of duplicating the run.
        if let Some(existing) = store
            .runs()
            .find(|r| r.label.as_deref() == Some(label.as_str()))
        {
            return Ok(receipt(existing));
        }
        store
            .append_at_seq(
                cell.index as u64,
                Some(label),
                &cell.config,
                vec![measurement.clone()],
            )
            .map(receipt)
            .map_err(|e| e.to_string())
    }

    fn completed_cell(&self, cell: &Cell) -> Result<Option<CellReceipt>, String> {
        let store = self.store.lock().expect("store lock poisoned");
        let label = cell.id.canonical();
        let found = store
            .runs()
            .find(|r| r.label.as_deref() == Some(label.as_str()))
            .map(receipt);
        Ok(found)
    }

    fn archive_cell_precise(
        &self,
        cell: &Cell,
        measurement: &BenchmarkMeasurement,
        precision: &CellPrecision,
    ) -> Result<CellReceipt, String> {
        let mut store = self.store.lock().expect("store lock poisoned");
        let label = cell.id.canonical();
        if let Some(existing) = store
            .runs()
            .find(|r| r.label.as_deref() == Some(label.as_str()))
        {
            return Ok(receipt(existing));
        }
        let record = RunRecord::new(
            cell.index as u64,
            Some(label),
            &cell.config,
            vec![measurement.clone()],
        )
        .with_precision(precision.clone());
        store
            .append_record(record)
            .map(receipt)
            .map_err(|e| e.to_string())
    }

    fn completed_precision(&self, cell: &Cell) -> Result<Option<CellPrecision>, String> {
        let store = self.store.lock().expect("store lock poisoned");
        let label = cell.id.canonical();
        let found = store
            .runs()
            .find(|r| r.label.as_deref() == Some(label.as_str()))
            .and_then(|r| r.precision.clone());
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigor::campaign::CampaignSpec;
    use rigor::ExperimentConfig;
    use rigor_workloads::Size;

    fn cells() -> Vec<Cell> {
        // `CampaignSpec::new` defaults engines/variants to the base config's,
        // so the grid is benchmarks × seeds here.
        let base = ExperimentConfig::interp()
            .with_invocations(2)
            .with_iterations(3)
            .with_size(Size::Small)
            .with_seed(5);
        CampaignSpec::new(base)
            .with_benchmarks(["sieve"])
            .with_seeds(vec![5, 6])
            .cells()
            .unwrap()
    }

    fn measurement(benchmark: &str) -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: benchmark.to_string(),
            engine: "interp".to_string(),
            invocations: vec![],
            censored: vec![],
            quarantined: false,
        }
    }

    #[test]
    fn archive_cell_is_idempotent_and_labels_by_cell_id() {
        let dir = std::env::temp_dir().join(format!("rigor-shared-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let shared = SharedStore::open(&dir).unwrap();
        let cells = cells();
        let m = measurement("sieve");

        assert_eq!(shared.completed_cell(&cells[0]).unwrap(), None);
        let a = shared.archive_cell(&cells[0], &m).unwrap();
        let b = shared.archive_cell(&cells[0], &m).unwrap();
        assert_eq!(a, b, "replay returns the original receipt");
        assert_eq!(a.seq, cells[0].index as u64);
        assert_eq!(shared.completed_cell(&cells[0]).unwrap(), Some(a));
        assert_eq!(shared.completed_cell(&cells[1]).unwrap(), None);

        let store = shared.into_inner();
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.latest().unwrap().label.as_deref(),
            Some("sieve/interp/2x3/5")
        );

        // A reopened (post-kill) store still answers the completed query.
        let reopened = SharedStore::open(&dir).unwrap();
        assert!(reopened.completed_cell(&cells[0]).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn precise_archiving_round_trips_through_reopen() {
        let dir =
            std::env::temp_dir().join(format!("rigor-shared-store-precise-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let shared = SharedStore::open(&dir).unwrap();
        let cells = cells();
        let m = measurement("sieve");
        let precision = CellPrecision {
            invocations_used: 9,
            rel_half_width: Some(0.018),
            target_rel_half_width: 0.02,
            target_met: true,
        };

        assert_eq!(shared.completed_precision(&cells[0]).unwrap(), None);
        let a = shared
            .archive_cell_precise(&cells[0], &m, &precision)
            .unwrap();
        let b = shared
            .archive_cell_precise(&cells[0], &m, &precision)
            .unwrap();
        assert_eq!(a, b, "replay returns the original receipt");
        assert_eq!(
            shared.completed_precision(&cells[0]).unwrap(),
            Some(precision.clone())
        );
        // A plain-archived cell reports no precision.
        shared.archive_cell(&cells[1], &m).unwrap();
        assert_eq!(shared.completed_precision(&cells[1]).unwrap(), None);

        // The precision record survives a kill-and-reopen.
        drop(shared);
        let reopened = SharedStore::open(&dir).unwrap();
        assert_eq!(
            reopened.completed_precision(&cells[0]).unwrap(),
            Some(precision)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
