//! Content addressing for archived runs.
//!
//! Run ids are a 128-bit hex digest of the run's canonical JSON payload.
//! The digest is two chained 64-bit FNV-1a lanes — an *integrity* checksum
//! (torn writes, bit rot, accidental edits), not a cryptographic one; the
//! archive is a local append-only file, not an adversarial input. What
//! matters here is determinism: the JSON printer is canonical (fixed field
//! order, shortest-round-trip floats), so the same measurements always
//! produce the same id, byte for byte, machine to machine.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit content digest of `bytes` as 32 lowercase hex characters.
///
/// Lane one is plain FNV-1a; lane two re-runs FNV-1a seeded with lane
/// one's digest (rotated so the lanes cannot cancel), which makes the
/// second half depend on every byte through a different path.
pub fn content_hash(bytes: &[u8]) -> String {
    let a = fnv1a(FNV_OFFSET, bytes);
    let b = fnv1a(a.rotate_left(31) ^ FNV_OFFSET, bytes);
    format!("{a:016x}{b:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_hex() {
        let d = content_hash(b"hello");
        assert_eq!(d.len(), 32);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(d, content_hash(b"hello"));
    }

    #[test]
    fn digest_separates_close_inputs() {
        let inputs: Vec<String> = (0..1000).map(|i| format!("payload-{i}")).collect();
        let mut digests: Vec<String> = inputs.iter().map(|s| content_hash(s.as_bytes())).collect();
        digests.sort();
        digests.dedup();
        assert_eq!(digests.len(), inputs.len(), "collision among close inputs");
    }

    #[test]
    fn lanes_differ() {
        // If the two lanes ever collapsed into one, ids would lose half
        // their width silently.
        let d = content_hash(b"x");
        assert_ne!(&d[..16], &d[16..]);
    }

    #[test]
    fn empty_input_hashes() {
        assert_eq!(content_hash(b"").len(), 32);
    }
}
