//! The archive's sidecar index: a small JSON summary of every run —
//! enough for `rigor history` to render a trend table without parsing the
//! full measurement payloads — rebuilt from the journal whenever it is
//! missing or stale, and rewritten atomically (temp file + rename) so a
//! crash can never leave a half-written index behind.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::record::RunRecord;

/// File name of the index sidecar inside the store directory.
pub const INDEX_FILE: &str = "index.json";

/// One run's summary in the index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// Content-addressed run id.
    pub id: String,
    /// Sequence number within the archive.
    pub seq: u64,
    /// Optional human label.
    pub label: Option<String>,
    /// Engine the run measured.
    pub engine: String,
    /// Benchmark names in the run.
    pub benchmarks: Vec<String>,
    /// Byte offset of the run's line in `archive.jsonl`.
    pub offset: u64,
    /// Length of the run's line in bytes (newline included).
    pub bytes: u64,
}

impl IndexEntry {
    /// Builds the entry for a record stored at `offset` with `bytes` length.
    pub fn of(record: &RunRecord, offset: u64, bytes: u64) -> IndexEntry {
        IndexEntry {
            id: record.id.clone(),
            seq: record.seq,
            label: record.label.clone(),
            engine: record.fingerprint.engine.clone(),
            benchmarks: record
                .benchmark_names()
                .into_iter()
                .map(str::to_string)
                .collect(),
            offset,
            bytes,
        }
    }
}

/// The whole index.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Index {
    /// One entry per archived run, in append order.
    pub entries: Vec<IndexEntry>,
}

impl Index {
    /// Loads the index sidecar from a store directory.
    ///
    /// # Errors
    ///
    /// I/O errors or malformed JSON.
    pub fn load(dir: &Path) -> io::Result<Index> {
        let text = std::fs::read_to_string(dir.join(INDEX_FILE))?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Writes the index sidecar atomically: to a temp file in the same
    /// directory, fsynced, then renamed over the target.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let tmp = dir.join(format!("{INDEX_FILE}.tmp"));
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, dir.join(INDEX_FILE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigor::ExperimentConfig;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rigor-store-index-test-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = temp_dir("roundtrip");
        let rec = RunRecord::new(
            2,
            Some("nightly".into()),
            &ExperimentConfig::interp(),
            vec![],
        );
        let index = Index {
            entries: vec![IndexEntry::of(&rec, 48, 512)],
        };
        index.write(&dir).unwrap();
        let back = Index::load(&dir).unwrap();
        assert_eq!(back, index);
        assert_eq!(back.entries[0].seq, 2);
        assert_eq!(back.entries[0].label.as_deref(), Some("nightly"));
        assert_eq!(back.entries[0].engine, "interp");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_index_is_an_io_error() {
        let dir = temp_dir("missing");
        std::fs::remove_dir_all(&dir).ok();
        assert!(Index::load(&dir).is_err());
    }
}
