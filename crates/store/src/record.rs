//! The archived unit: one run — a config fingerprint, host metadata and the
//! full per-benchmark measurements — content-addressed by its canonical
//! JSON payload.

use rigor::campaign::CellPrecision;
use rigor::measurement::BenchmarkMeasurement;
use rigor::ExperimentConfig;
use rigor_workloads::Size;
use serde::json::{get_field, DeError, JsonValue};
use serde::{Deserialize, Serialize};

use crate::hash::content_hash;

/// Version of the archived run-record schema.
pub const RECORD_SCHEMA_VERSION: u32 = 1;

/// The experiment-design identity of a run: enough to decide whether two
/// runs are statistically comparable. Engine is part of the fingerprint but
/// *not* of shape compatibility — comparing engines is the point of a
/// regression check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigFingerprint {
    /// Engine name (`"interp"` / `"jit"` / ...).
    pub engine: String,
    /// Requested invocation count.
    pub invocations: u32,
    /// Requested iterations per invocation.
    pub iterations: u32,
    /// Workload size preset label (`"small"` / `"default"` / `"large"`).
    pub size: String,
    /// Master experiment seed.
    pub seed: u64,
    /// Confidence level the experiment was configured with.
    pub confidence: f64,
}

/// The stable label of a size preset.
fn size_label(size: Size) -> &'static str {
    match size {
        Size::Small => "small",
        Size::Default => "default",
        Size::Large => "large",
    }
}

impl ConfigFingerprint {
    /// The fingerprint of `config`.
    pub fn of(config: &ExperimentConfig) -> ConfigFingerprint {
        ConfigFingerprint {
            engine: config.engine.name().to_string(),
            invocations: config.invocations,
            iterations: config.iterations,
            size: size_label(config.size).to_string(),
            seed: config.experiment_seed,
            confidence: config.confidence,
        }
    }

    /// True when two runs have the same experiment *shape* — invocations,
    /// iterations, size and seed — so their samples estimate the same
    /// quantity. Engine and confidence may differ.
    pub fn shape_matches(&self, other: &ConfigFingerprint) -> bool {
        self.invocations == other.invocations
            && self.iterations == other.iterations
            && self.size == other.size
            && self.seed == other.seed
    }
}

/// Where a run was produced. The simulated VM makes measurements
/// host-independent, but recording the host keeps the archive honest if
/// that ever changes (and mirrors what a real perf archive must store).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostMeta {
    /// `std::env::consts::OS` at archive time.
    pub os: String,
    /// `std::env::consts::ARCH` at archive time.
    pub arch: String,
    /// `std::env::consts::FAMILY` at archive time.
    pub family: String,
}

impl HostMeta {
    /// The current host.
    pub fn current() -> HostMeta {
        HostMeta {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            family: std::env::consts::FAMILY.to_string(),
        }
    }
}

/// One archived experiment run.
///
/// The `id` is the content hash of the run's canonical JSON payload (every
/// field below except the id itself), so identical measurements always get
/// identical ids, and any byte of corruption is detectable by re-hashing.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Content-addressed run id (32 hex chars; not part of the payload).
    pub id: String,
    /// Monotone sequence number assigned at append time.
    pub seq: u64,
    /// Optional human label (`--label nightly`, a commit hash, ...).
    pub label: Option<String>,
    /// Schema version of this record.
    pub schema_version: u32,
    /// Experiment-design identity.
    pub fingerprint: ConfigFingerprint,
    /// Where the run was produced.
    pub host: HostMeta,
    /// Full per-benchmark measurements.
    pub measurements: Vec<BenchmarkMeasurement>,
    /// Precision attainment, for cells archived by an adaptive campaign.
    /// Absent from the payload (and so from the content id) when `None`,
    /// which keeps pre-planner archive ids byte-stable.
    pub precision: Option<CellPrecision>,
}

impl RunRecord {
    /// Builds a record (computing its content id) for measurements taken
    /// under `config`.
    pub fn new(
        seq: u64,
        label: Option<String>,
        config: &ExperimentConfig,
        measurements: Vec<BenchmarkMeasurement>,
    ) -> RunRecord {
        let mut record = RunRecord {
            id: String::new(),
            seq,
            label,
            schema_version: RECORD_SCHEMA_VERSION,
            fingerprint: ConfigFingerprint::of(config),
            host: HostMeta::current(),
            measurements,
            precision: None,
        };
        record.id = content_hash(record.payload_json().as_bytes());
        record
    }

    /// Attaches a precision record (builder style), recomputing the content
    /// id — precision attainment is part of the archived bytes.
    pub fn with_precision(mut self, precision: CellPrecision) -> RunRecord {
        self.precision = Some(precision);
        self.id = content_hash(self.payload_json().as_bytes());
        self
    }

    /// The canonical payload: every field except the id, in fixed order.
    pub fn payload(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("schema_version".into(), self.schema_version.to_value()),
            ("seq".into(), self.seq.to_value()),
        ];
        if let Some(label) = &self.label {
            fields.push(("label".into(), label.to_value()));
        }
        fields.push(("fingerprint".into(), self.fingerprint.to_value()));
        fields.push(("host".into(), self.host.to_value()));
        fields.push(("measurements".into(), self.measurements.to_value()));
        if let Some(precision) = &self.precision {
            fields.push(("precision".into(), precision.to_value()));
        }
        JsonValue::Object(fields)
    }

    /// The canonical payload as compact JSON text — the byte string the
    /// content id is computed over.
    pub fn payload_json(&self) -> String {
        serde_json::to_string(&Payload(self.payload())).expect("payload is plain data")
    }

    /// Rebuilds a record from a payload value, recomputing its id from the
    /// canonical bytes.
    ///
    /// # Errors
    ///
    /// Missing/mistyped fields, or a schema version this build does not
    /// understand.
    pub fn from_payload(v: &JsonValue) -> Result<RunRecord, DeError> {
        let schema_version: u32 = get_field(v, "schema_version")?;
        if schema_version > RECORD_SCHEMA_VERSION {
            return Err(DeError::new(format!(
                "archived run has schema_version {schema_version}, but this \
                 build only understands versions up to {RECORD_SCHEMA_VERSION}"
            )));
        }
        let mut record = RunRecord {
            id: String::new(),
            seq: get_field(v, "seq")?,
            label: get_field(v, "label")?,
            schema_version,
            fingerprint: get_field(v, "fingerprint")?,
            host: get_field(v, "host")?,
            measurements: get_field(v, "measurements")?,
            precision: get_field(v, "precision")?,
        };
        record.id = content_hash(record.payload_json().as_bytes());
        Ok(record)
    }

    /// The first 12 hex characters of the id — what tables print.
    pub fn short_id(&self) -> &str {
        &self.id[..self.id.len().min(12)]
    }

    /// The measurement of `benchmark` in this run, if present.
    pub fn benchmark(&self, benchmark: &str) -> Option<&BenchmarkMeasurement> {
        self.measurements.iter().find(|m| m.benchmark == benchmark)
    }

    /// The benchmark names this run measured, in measurement order.
    pub fn benchmark_names(&self) -> Vec<&str> {
        self.measurements
            .iter()
            .map(|m| m.benchmark.as_str())
            .collect()
    }
}

/// `serde_json::to_string` needs a `Serialize` value; wraps a raw payload.
pub(crate) struct Payload(pub JsonValue);

impl Serialize for Payload {
    fn to_value(&self) -> JsonValue {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigor::measurement::InvocationRecord;

    fn sample_measurement(benchmark: &str) -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: benchmark.into(),
            engine: "interp".into(),
            invocations: vec![InvocationRecord {
                invocation: 0,
                seed: 7,
                startup_ns: 12.5,
                iteration_ns: vec![100.0, 101.5],
                gc_cycles: 1,
                jit_compiles: 0,
                deopts: 0,
                checksum: "9".into(),
                iteration_counters: None,
                attempts: 1,
            }],
            censored: Vec::new(),
            quarantined: false,
        }
    }

    fn config() -> ExperimentConfig {
        ExperimentConfig::interp()
            .with_invocations(4)
            .with_iterations(16)
            .with_seed(99)
    }

    #[test]
    fn id_is_deterministic_and_content_sensitive() {
        let a = RunRecord::new(0, None, &config(), vec![sample_measurement("sieve")]);
        let b = RunRecord::new(0, None, &config(), vec![sample_measurement("sieve")]);
        assert_eq!(a.id, b.id);
        assert_eq!(a.id.len(), 32);
        // Any content change — measurements, label, seq — moves the id.
        let c = RunRecord::new(1, None, &config(), vec![sample_measurement("sieve")]);
        assert_ne!(a.id, c.id);
        let d = RunRecord::new(
            0,
            Some("tag".into()),
            &config(),
            vec![sample_measurement("sieve")],
        );
        assert_ne!(a.id, d.id);
    }

    #[test]
    fn payload_roundtrips_with_matching_id() {
        let rec = RunRecord::new(
            3,
            Some("nightly".into()),
            &config(),
            vec![sample_measurement("sieve"), sample_measurement("nbody")],
        );
        let back = RunRecord::from_payload(&rec.payload()).unwrap();
        assert_eq!(back, rec);
        // Re-serialization of a parsed payload is byte-identical: the
        // foundation content addressing stands on.
        assert_eq!(back.payload_json(), rec.payload_json());
    }

    #[test]
    fn precision_is_part_of_the_content_id_and_round_trips() {
        let plain = RunRecord::new(0, None, &config(), vec![sample_measurement("sieve")]);
        let precise = plain.clone().with_precision(CellPrecision {
            invocations_used: 17,
            rel_half_width: Some(0.013),
            target_rel_half_width: 0.02,
            target_met: true,
        });
        assert_ne!(plain.id, precise.id, "precision moves the content id");
        let back = RunRecord::from_payload(&precise.payload()).unwrap();
        assert_eq!(back, precise);
        assert_eq!(back.payload_json(), precise.payload_json());

        // A payload without the field — every pre-planner archive line —
        // still parses, to a record with no precision and the same id.
        let old = RunRecord::from_payload(&plain.payload()).unwrap();
        assert_eq!(old.precision, None);
        assert_eq!(old.id, plain.id);

        // A no-CI precision record must not leak NaN into the payload.
        let no_ci = plain.clone().with_precision(CellPrecision {
            invocations_used: 60,
            rel_half_width: None,
            target_rel_half_width: 0.02,
            target_met: false,
        });
        assert!(!no_ci.payload_json().contains("NaN"));
        let back = RunRecord::from_payload(&no_ci.payload()).unwrap();
        assert_eq!(back.precision.as_ref().unwrap().rel_half_width, None);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let rec = RunRecord::new(0, None, &config(), vec![]);
        let mut payload = rec.payload();
        if let JsonValue::Object(fields) = &mut payload {
            fields[0].1 = 999u32.to_value();
        }
        let err = RunRecord::from_payload(&payload).unwrap_err();
        assert!(err.to_string().contains("schema_version 999"), "{err}");
    }

    #[test]
    fn fingerprint_shape_matching_ignores_engine() {
        let interp = ConfigFingerprint::of(&config());
        let jit = ConfigFingerprint::of(
            &ExperimentConfig::jit()
                .with_invocations(4)
                .with_iterations(16)
                .with_seed(99),
        );
        assert_ne!(interp, jit);
        assert!(interp.shape_matches(&jit));
        let other_shape = ConfigFingerprint::of(&config().with_invocations(5));
        assert!(!interp.shape_matches(&other_shape));
    }

    #[test]
    fn accessors() {
        let rec = RunRecord::new(
            0,
            None,
            &config(),
            vec![sample_measurement("sieve"), sample_measurement("nbody")],
        );
        assert_eq!(rec.short_id().len(), 12);
        assert_eq!(rec.benchmark_names(), vec!["sieve", "nbody"]);
        assert!(rec.benchmark("sieve").is_some());
        assert!(rec.benchmark("missing").is_none());
        assert_eq!(rec.fingerprint.size, "default");
        assert!(!rec.host.os.is_empty() || !rec.host.family.is_empty());
    }
}
