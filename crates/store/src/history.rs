//! Turning the on-disk archive into per-benchmark run histories for trend
//! analysis, and into segment-pooled baselines for the regression gate.
//!
//! `rigor::trend` is pure data-in/data-out over [`rigor::TrendPoint`]
//! slices; this module is the glue that builds those slices from archived
//! [`RunRecord`]s — and, going the other way, turns the *current segment*
//! a trend analysis ends in back into a pooled baseline sample, so the
//! gate can compare HEAD against "the level we have been at" instead of a
//! fixed last-N window.

use rigor::measurement::BenchmarkMeasurement;
use rigor::pool_measurements;
use rigor::steady::SteadyStateDetector;
use rigor::trend::{analyze_trends, TrendConfig, TrendPoint, TrendReport, TrendStatus};

use crate::archive::Store;
use crate::record::RunRecord;

/// Benchmark names across every archived run, in order of first appearance.
pub fn benchmark_names(store: &Store) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for run in store.runs() {
        for name in run.benchmark_names() {
            if !names.iter().any(|n| n == name) {
                names.push(name.to_string());
            }
        }
    }
    names
}

/// One benchmark's archived history as trend points, in archive order.
///
/// Runs that did not measure the benchmark, were quarantined, or have no
/// usable steady state are skipped — the history holds only points a
/// rigorous analysis can stand on.
pub fn benchmark_history(
    store: &Store,
    benchmark: &str,
    detector: &SteadyStateDetector,
) -> Vec<TrendPoint> {
    store
        .runs()
        .filter_map(|run| point_of(run, benchmark, detector))
        .collect()
}

fn point_of(
    run: &RunRecord,
    benchmark: &str,
    detector: &SteadyStateDetector,
) -> Option<TrendPoint> {
    let m = run.benchmark(benchmark)?;
    TrendPoint::from_measurement(run.seq, &run.id, run.label.as_deref(), m, detector)
}

/// Runs the whole-archive trend analysis: every benchmark's history is
/// segmented and significance is corrected across the full family of
/// benchmarks × changepoints.
pub fn trend_report(
    store: &Store,
    benchmarks: &[String],
    detector: &SteadyStateDetector,
    config: &TrendConfig,
) -> TrendReport {
    let histories: Vec<(String, Vec<TrendPoint>)> = benchmarks
        .iter()
        .map(|name| (name.clone(), benchmark_history(store, name, detector)))
        .collect();
    analyze_trends(&histories, config)
}

/// Pools, per benchmark, the measurements of the runs in the *current
/// segment* — the final constant-level stretch of that benchmark's trend —
/// into one baseline sample.
///
/// This is the `--baseline segment` source for the regression gate: it
/// widens the baseline to every run since the benchmark's level last
/// shifted, instead of a fixed last-N window that may straddle an old
/// level. Benchmarks whose history is too short to segment fall back to
/// pooling their entire history.
pub fn segment_baseline(
    store: &Store,
    detector: &SteadyStateDetector,
    config: &TrendConfig,
) -> Vec<BenchmarkMeasurement> {
    let mut baseline: Vec<BenchmarkMeasurement> = Vec::new();
    for name in benchmark_names(store) {
        // The per-run measurement list, kept in lock-step with the trend
        // points so segment run indices map back to measurements.
        let mut measurements: Vec<&BenchmarkMeasurement> = Vec::new();
        let mut points: Vec<TrendPoint> = Vec::new();
        for run in store.runs() {
            if let Some(p) = point_of(run, &name, detector) {
                points.push(p);
                measurements.push(run.benchmark(&name).expect("point implies measurement"));
            }
        }
        let trend = analyze_trends(&[(name.clone(), points)], config)
            .benchmarks
            .pop()
            .expect("one history in, one trend out");
        let current = match (trend.status, trend.segments.last()) {
            (TrendStatus::InsufficientData, _) | (_, None) => &measurements[..],
            (_, Some(seg)) => &measurements[seg.start..seg.end],
        };
        let slices: Vec<&[BenchmarkMeasurement]> =
            current.iter().map(|m| std::slice::from_ref(*m)).collect();
        baseline.extend(pool_measurements(&slices));
    }
    baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigor::measurement::InvocationRecord;
    use rigor::ExperimentConfig;

    fn measurement(name: &str, level: f64, n_inv: usize) -> BenchmarkMeasurement {
        let invocations = (0..n_inv)
            .map(|i| InvocationRecord {
                invocation: i as u32,
                seed: i as u64,
                startup_ns: 0.0,
                iteration_ns: (0..12)
                    .map(|j| level * (1.0 + ((i + j) % 3) as f64 * 0.002))
                    .collect(),
                gc_cycles: 0,
                jit_compiles: 0,
                deopts: 0,
                checksum: String::new(),
                iteration_counters: None,
                attempts: 1,
            })
            .collect();
        BenchmarkMeasurement {
            benchmark: name.into(),
            engine: "interp".into(),
            invocations,
            censored: Vec::new(),
            quarantined: false,
        }
    }

    fn tmp_store(name: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("rigor-history-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Store::open(&dir).unwrap()
    }

    #[test]
    fn history_is_built_in_archive_order_and_skips_gaps() {
        let mut store = tmp_store("order");
        let config = ExperimentConfig::interp();
        store
            .append(None, &config, vec![measurement("a", 100.0, 4)])
            .unwrap();
        // A run without benchmark `a` leaves a gap, not a hole.
        store
            .append(None, &config, vec![measurement("b", 50.0, 4)])
            .unwrap();
        store
            .append(None, &config, vec![measurement("a", 101.0, 4)])
            .unwrap();
        let det = SteadyStateDetector::default();
        let points = benchmark_history(&store, "a", &det);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].seq, 0);
        assert_eq!(points[1].seq, 2);
        assert_eq!(points[0].samples.len(), 4);
        assert_eq!(benchmark_names(&store), vec!["a", "b"]);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn quarantined_runs_drop_out_of_the_history() {
        let mut store = tmp_store("quarantine");
        let config = ExperimentConfig::interp();
        let mut bad = measurement("a", 100.0, 4);
        bad.quarantined = true;
        store.append(None, &config, vec![bad]).unwrap();
        store
            .append(None, &config, vec![measurement("a", 100.0, 4)])
            .unwrap();
        let det = SteadyStateDetector::default();
        let points = benchmark_history(&store, "a", &det);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].seq, 1);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn trend_report_spans_the_whole_archive() {
        let mut store = tmp_store("report");
        let config = ExperimentConfig::interp();
        for _ in 0..6 {
            store
                .append(
                    None,
                    &config,
                    vec![measurement("a", 100.0, 4), measurement("b", 50.0, 4)],
                )
                .unwrap();
        }
        // Benchmark `a` shifts for the final two runs.
        for _ in 0..2 {
            store
                .append(
                    None,
                    &config,
                    vec![measurement("a", 140.0, 4), measurement("b", 50.0, 4)],
                )
                .unwrap();
        }
        let det = SteadyStateDetector::default();
        let names = benchmark_names(&store);
        let report = trend_report(&store, &names, &det, &TrendConfig::default());
        assert_eq!(report.benchmarks.len(), 2);
        let alerts = report.alerts();
        assert_eq!(alerts.len(), 1, "{report:?}");
        assert_eq!(alerts[0].benchmark, "a");
        let cp = alerts[0].alert().unwrap();
        assert_eq!(cp.seq, 6);
        // The named run id is the archived run that shifted.
        let run = store.get(&cp.run_id).unwrap();
        assert_eq!(run.seq, 6);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn segment_baseline_pools_only_the_current_level() {
        let mut store = tmp_store("segment");
        let config = ExperimentConfig::interp();
        for _ in 0..5 {
            store
                .append(None, &config, vec![measurement("a", 100.0, 4)])
                .unwrap();
        }
        for _ in 0..3 {
            store
                .append(None, &config, vec![measurement("a", 140.0, 4)])
                .unwrap();
        }
        let det = SteadyStateDetector::default();
        let baseline = segment_baseline(&store, &det, &TrendConfig::default());
        assert_eq!(baseline.len(), 1);
        // Only the three post-shift runs contribute: 3 × 4 invocations.
        assert_eq!(baseline[0].invocations.len(), 12);
        let level = baseline[0].invocations[0].iteration_ns[0];
        assert!(level > 120.0, "pooled from the new level, got {level}");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn short_archive_falls_back_to_pooling_everything() {
        let mut store = tmp_store("short");
        let config = ExperimentConfig::interp();
        for _ in 0..2 {
            store
                .append(None, &config, vec![measurement("a", 100.0, 4)])
                .unwrap();
        }
        let det = SteadyStateDetector::default();
        let baseline = segment_baseline(&store, &det, &TrendConfig::default());
        assert_eq!(baseline.len(), 1);
        assert_eq!(baseline[0].invocations.len(), 8);
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
