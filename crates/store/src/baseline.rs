//! Baseline selection: turning a `--baseline` reference into archived runs.
//!
//! Four forms are understood:
//!
//! * `last` — the most recent archived run,
//! * `last-N` — the newest N runs pooled into one baseline sample,
//! * `segment` — every run since each benchmark's level last shifted
//!   (the current trend segment; see [`crate::history`]),
//! * anything else — a run id prefix or exact label.

use std::fmt;

use rigor::measurement::BenchmarkMeasurement;
use rigor::pool_measurements;
use rigor::steady::SteadyStateDetector;
use rigor::trend::TrendConfig;

use crate::archive::{Store, StoreError};
use crate::history::segment_baseline;
use crate::record::RunRecord;

/// A parsed `--baseline` reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineRef {
    /// The most recent archived run.
    Last,
    /// The newest N runs, pooled.
    LastN(usize),
    /// The current trend segment, per benchmark: every run since the
    /// benchmark's level last shifted.
    Segment,
    /// A run id prefix or exact label.
    Id(String),
}

impl BaselineRef {
    /// Parses a reference as given on the command line.
    ///
    /// `last`, `last-N` (N ≥ 1) and `segment` are recognized keywords;
    /// everything else is treated as an id prefix / label, resolved at
    /// selection time.
    pub fn parse(text: &str) -> BaselineRef {
        if text.eq_ignore_ascii_case("last") {
            return BaselineRef::Last;
        }
        if text.eq_ignore_ascii_case("segment") {
            return BaselineRef::Segment;
        }
        if let Some(n) = text
            .strip_prefix("last-")
            .and_then(|n| n.parse::<usize>().ok())
        {
            if n >= 1 {
                return BaselineRef::LastN(n);
            }
        }
        BaselineRef::Id(text.to_string())
    }

    /// Resolves the reference against an open store, newest last.
    ///
    /// For [`BaselineRef::Segment`] this returns every archived run — the
    /// candidate set; which runs actually contribute is decided *per
    /// benchmark* by [`BaselineRef::pooled_measurements`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Empty`] when the archive holds no runs, plus the
    /// lookup errors of [`Store::get`] for id references.
    pub fn select<'s>(&self, store: &'s Store) -> Result<Vec<&'s RunRecord>, StoreError> {
        if store.is_empty() {
            return Err(StoreError::Empty);
        }
        match self {
            BaselineRef::Last => Ok(vec![store.latest().expect("non-empty")]),
            BaselineRef::LastN(n) => Ok(store.last_n(*n)),
            BaselineRef::Segment => Ok(store.runs().collect()),
            BaselineRef::Id(reference) => Ok(vec![store.get(reference)?]),
        }
    }

    /// The reference resolved all the way to one pooled per-benchmark
    /// baseline sample — what the regression gate consumes.
    ///
    /// `last`/`last-N`/id references pool the selected runs wholesale;
    /// `segment` runs the trend analysis under `trend_config` and pools,
    /// per benchmark, only the runs of the current (final) segment.
    ///
    /// # Errors
    ///
    /// The selection errors of [`BaselineRef::select`].
    pub fn pooled_measurements(
        &self,
        store: &Store,
        detector: &SteadyStateDetector,
        trend_config: &TrendConfig,
    ) -> Result<Vec<BenchmarkMeasurement>, StoreError> {
        if store.is_empty() {
            return Err(StoreError::Empty);
        }
        match self {
            BaselineRef::Segment => Ok(segment_baseline(store, detector, trend_config)),
            _ => {
                let runs = self.select(store)?;
                let slices: Vec<&[BenchmarkMeasurement]> =
                    runs.iter().map(|r| r.measurements.as_slice()).collect();
                Ok(pool_measurements(&slices))
            }
        }
    }
}

impl fmt::Display for BaselineRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineRef::Last => write!(f, "last"),
            BaselineRef::LastN(n) => write!(f, "last-{n}"),
            BaselineRef::Segment => write!(f, "segment"),
            BaselineRef::Id(id) => write!(f, "{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigor::ExperimentConfig;

    #[test]
    fn parses_keywords_and_ids() {
        assert_eq!(BaselineRef::parse("last"), BaselineRef::Last);
        assert_eq!(BaselineRef::parse("LAST"), BaselineRef::Last);
        assert_eq!(BaselineRef::parse("segment"), BaselineRef::Segment);
        assert_eq!(BaselineRef::parse("SEGMENT"), BaselineRef::Segment);
        assert_eq!(BaselineRef::parse("last-3"), BaselineRef::LastN(3));
        assert_eq!(BaselineRef::parse("last-1"), BaselineRef::LastN(1));
        // Degenerate or non-numeric suffixes fall through to id lookup.
        assert_eq!(
            BaselineRef::parse("last-0"),
            BaselineRef::Id("last-0".into())
        );
        assert_eq!(
            BaselineRef::parse("last-x"),
            BaselineRef::Id("last-x".into())
        );
        assert_eq!(
            BaselineRef::parse("ab12cd"),
            BaselineRef::Id("ab12cd".into())
        );
    }

    #[test]
    fn displays_roundtrip() {
        for text in ["last", "last-3", "segment", "ab12cd"] {
            assert_eq!(BaselineRef::parse(text).to_string(), text);
        }
    }

    #[test]
    fn selects_from_store() {
        let dir =
            std::env::temp_dir().join(format!("rigor-store-baseline-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut store = Store::open(&dir).unwrap();
        assert!(matches!(
            BaselineRef::Last.select(&store),
            Err(StoreError::Empty)
        ));
        let config = ExperimentConfig::interp();
        store.append(Some("first".into()), &config, vec![]).unwrap();
        store.append(None, &config, vec![]).unwrap();
        store.append(None, &config, vec![]).unwrap();

        let last = BaselineRef::Last.select(&store).unwrap();
        assert_eq!(last.len(), 1);
        assert_eq!(last[0].seq, 2);

        let pooled = BaselineRef::LastN(2).select(&store).unwrap();
        assert_eq!(pooled.len(), 2);
        assert_eq!(pooled[0].seq, 1);
        assert_eq!(pooled[1].seq, 2);

        let by_label = BaselineRef::parse("first").select(&store).unwrap();
        assert_eq!(by_label[0].seq, 0);

        // `segment` selects every run as its candidate set.
        let all = BaselineRef::Segment.select(&store).unwrap();
        assert_eq!(all.len(), 3);

        assert!(matches!(
            BaselineRef::parse("nope").select(&store),
            Err(StoreError::UnknownRun { .. })
        ));
        assert!(matches!(
            BaselineRef::Segment.pooled_measurements(
                &Store::open(dir.join("empty")).unwrap(),
                &SteadyStateDetector::default(),
                &TrendConfig::default()
            ),
            Err(StoreError::Empty)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
