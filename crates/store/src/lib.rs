//! `rigor-store`: an append-only, content-addressed on-disk archive of
//! experiment runs.
//!
//! The archive is the persistence layer behind `rigor archive`, `rigor
//! history` and `rigor check`: every run is serialized as one canonical
//! JSON line — config fingerprint, seed, host and engine metadata, the
//! full per-benchmark measurements, and a schema version — protected by a
//! length + content-hash header and fsynced before the append returns.
//!
//! Design rules, in order:
//!
//! 1. **Append-only.** Runs are never edited in place; the only mutation
//!    besides append is [`Store::compact`], an atomic whole-file rewrite.
//! 2. **Content-addressed.** A run's id is the 128-bit digest of its
//!    canonical payload bytes ([`hash::content_hash`]), so identical
//!    measurements get identical ids and any corruption is detectable by
//!    re-hashing ([`Store::verify`]).
//! 3. **Kill-safe.** One fsynced line per append means a crash leaves at
//!    most one torn final line, which [`Store::open`] drops — the same
//!    recovery contract as `rigor::checkpoint`. A *complete* line that
//!    fails its integrity check is corruption and a hard error.
//! 4. **Deterministic.** The canonical JSON printer guarantees that
//!    re-serializing a parsed record is byte-identical, so a recovered
//!    archive, re-appended, reproduces the uninterrupted file exactly.
//!
//! Baselines for regression gating are selected with [`BaselineRef`]
//! (`last`, `last-N`, or an id/label) and fed to
//! `rigor::regress::check_regressions`.
//!
//! ```no_run
//! use rigor_store::{BaselineRef, Store};
//!
//! let mut store = Store::open(".rigor-store")?;
//! // ... run an experiment, collect `measurements` ...
//! # let (config, measurements) = (rigor::ExperimentConfig::interp(), vec![]);
//! let run = store.append(Some("nightly".into()), &config, measurements)?;
//! println!("archived {}", run.short_id());
//! let baseline = BaselineRef::parse("last-3").select(&store)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod archive;
pub mod baseline;
pub mod hash;
pub mod history;
pub mod index;
pub mod record;
pub mod shared;

pub use archive::{
    parse_record_line, record_line, CompactionReport, CorruptLine, Store, StoreError, VerifyReport,
    ARCHIVE_FILE,
};
pub use baseline::BaselineRef;
pub use hash::content_hash;
pub use history::{benchmark_history, benchmark_names, segment_baseline, trend_report};
pub use index::{Index, IndexEntry, INDEX_FILE};
pub use record::{ConfigFingerprint, HostMeta, RunRecord, RECORD_SCHEMA_VERSION};
pub use shared::SharedStore;
