//! Effect sizes: Cohen's d and Cliff's delta.
//!
//! Statistical significance without effect size is the classic benchmarking
//! trap (with enough invocations any 0.1% difference becomes "significant");
//! the methodology reports both.

use crate::descriptive::{mean, variance};

/// Cohen's d with pooled standard deviation. Positive when `mean(a) > mean(b)`.
///
/// Returns `NaN` for degenerate inputs.
pub fn cohens_d(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 || b.len() < 2 {
        return f64::NAN;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let pooled_var = ((na - 1.0) * variance(a) + (nb - 1.0) * variance(b)) / (na + nb - 2.0);
    if pooled_var <= 0.0 {
        return f64::NAN;
    }
    (mean(a) - mean(b)) / pooled_var.sqrt()
}

/// Cliff's delta: P(a > b) − P(a < b) over all cross pairs. Nonparametric,
/// bounded in [−1, 1].
pub fn cliffs_delta(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::NAN;
    }
    let mut gt = 0i64;
    let mut lt = 0i64;
    for &x in a {
        for &y in b {
            if x > y {
                gt += 1;
            } else if x < y {
                lt += 1;
            }
        }
    }
    (gt - lt) as f64 / (a.len() * b.len()) as f64
}

/// Conventional interpretation buckets for |Cohen's d|.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectMagnitude {
    /// |d| < 0.2.
    Negligible,
    /// 0.2 ≤ |d| < 0.5.
    Small,
    /// 0.5 ≤ |d| < 0.8.
    Medium,
    /// |d| ≥ 0.8.
    Large,
}

/// Classifies a Cohen's d value into conventional magnitude buckets.
pub fn classify_cohens_d(d: f64) -> EffectMagnitude {
    let a = d.abs();
    if a < 0.2 {
        EffectMagnitude::Negligible
    } else if a < 0.5 {
        EffectMagnitude::Small
    } else if a < 0.8 {
        EffectMagnitude::Medium
    } else {
        EffectMagnitude::Large
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohens_d_unit_shift_unit_variance() {
        // Two samples one pooled-σ apart → d ≈ 1.
        let a: Vec<f64> = (0..100)
            .map(|i| 10.0 + ((i % 21) as f64 - 10.0) / 6.06)
            .collect();
        let b: Vec<f64> = a.iter().map(|x| x - 1.0).collect();
        let d = cohens_d(&a, &b);
        assert!((d - 1.0).abs() < 0.05, "d = {d}");
    }

    #[test]
    fn cohens_d_sign() {
        let a = [5.0, 6.0, 7.0];
        let b = [1.0, 2.0, 3.0];
        assert!(cohens_d(&a, &b) > 0.0);
        assert!(cohens_d(&b, &a) < 0.0);
    }

    #[test]
    fn cliffs_delta_extremes() {
        let a = [10.0, 11.0, 12.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(cliffs_delta(&a, &b), 1.0);
        assert_eq!(cliffs_delta(&b, &a), -1.0);
    }

    #[test]
    fn cliffs_delta_identical_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(cliffs_delta(&a, &a), 0.0);
    }

    #[test]
    fn cliffs_delta_interleaved_is_small() {
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let d = cliffs_delta(&a, &b);
        assert!(d.abs() < 0.5, "d = {d}");
    }

    #[test]
    fn magnitude_buckets() {
        assert_eq!(classify_cohens_d(0.1), EffectMagnitude::Negligible);
        assert_eq!(classify_cohens_d(-0.3), EffectMagnitude::Small);
        assert_eq!(classify_cohens_d(0.6), EffectMagnitude::Medium);
        assert_eq!(classify_cohens_d(-2.0), EffectMagnitude::Large);
    }

    #[test]
    fn degenerate_inputs_nan() {
        assert!(cohens_d(&[1.0], &[1.0, 2.0]).is_nan());
        assert!(cohens_d(&[1.0, 1.0], &[1.0, 1.0]).is_nan());
        assert!(cliffs_delta(&[], &[1.0]).is_nan());
    }
}
