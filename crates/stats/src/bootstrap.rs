//! Nonparametric bootstrap confidence intervals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ci::ConfidenceInterval;
use crate::descriptive::mean;
use crate::quantile::quantile;

/// Default number of bootstrap resamples.
pub const DEFAULT_RESAMPLES: usize = 2_000;

/// Percentile-bootstrap CI for an arbitrary statistic of one sample.
///
/// Returns `None` for samples with fewer than 2 observations.
pub fn bootstrap_ci<F>(
    xs: &[f64],
    statistic: F,
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64,
{
    if xs.len() < 2 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = vec![0.0; xs.len()];
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for b in buf.iter_mut() {
            *b = xs[rng.gen_range(0..xs.len())];
        }
        stats.push(statistic(&buf));
    }
    let alpha = 1.0 - confidence;
    Some(ConfidenceInterval {
        estimate: statistic(xs),
        lower: quantile(&stats, alpha / 2.0),
        upper: quantile(&stats, 1.0 - alpha / 2.0),
        confidence,
    })
}

/// Percentile-bootstrap CI for the mean.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfidenceInterval> {
    bootstrap_ci(xs, mean, confidence, resamples, seed)
}

/// Percentile-bootstrap CI for the ratio of means mean(a)/mean(b), resampling
/// the two samples independently (they come from independent invocations).
///
/// ```
/// let baseline = [100.0, 102.0, 98.0, 101.0, 99.0, 100.5];
/// let improved = [25.0, 25.5, 24.5, 25.2, 24.8, 25.1];
/// let ci = rigor_stats::bootstrap_ratio_ci(&baseline, &improved, 0.95, 2000, 42)
///     .expect("enough samples");
/// assert!(ci.estimate > 3.8 && ci.estimate < 4.2); // ~4x speedup
/// assert!(ci.excludes(1.0));
/// ```
pub fn bootstrap_ratio_ci(
    a: &[f64],
    b: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfidenceInterval> {
    if a.len() < 2 || b.len() < 2 || mean(b) == 0.0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ratios = Vec::with_capacity(resamples);
    let mut buf_a = vec![0.0; a.len()];
    let mut buf_b = vec![0.0; b.len()];
    for _ in 0..resamples {
        for x in buf_a.iter_mut() {
            *x = a[rng.gen_range(0..a.len())];
        }
        for x in buf_b.iter_mut() {
            *x = b[rng.gen_range(0..b.len())];
        }
        let mb = mean(&buf_b);
        if mb != 0.0 {
            ratios.push(mean(&buf_a) / mb);
        }
    }
    let alpha = 1.0 - confidence;
    Some(ConfidenceInterval {
        estimate: mean(a) / mean(b),
        lower: quantile(&ratios, alpha / 2.0),
        upper: quantile(&ratios, 1.0 - alpha / 2.0),
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| 100.0 + rng.gen_range(-5.0..5.0)).collect()
    }

    #[test]
    fn bootstrap_ci_contains_sample_mean() {
        let xs = sample(30, 1);
        let ci = bootstrap_mean_ci(&xs, 0.95, 1000, 42).unwrap();
        assert!(ci.contains(mean(&xs)), "{ci:?}");
        assert!(ci.lower < ci.upper);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let xs = sample(20, 2);
        let a = bootstrap_mean_ci(&xs, 0.95, 500, 7).unwrap();
        let b = bootstrap_mean_ci(&xs, 0.95, 500, 7).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_mean_ci(&xs, 0.95, 500, 8).unwrap();
        assert_ne!(a.lower, c.lower);
    }

    #[test]
    fn wider_with_more_variance() {
        let tight: Vec<f64> = (0..30).map(|i| 100.0 + (i % 3) as f64 * 0.01).collect();
        let loose: Vec<f64> = (0..30).map(|i| 100.0 + ((i * 13) % 60) as f64).collect();
        let ct = bootstrap_mean_ci(&tight, 0.95, 1000, 1).unwrap();
        let cl = bootstrap_mean_ci(&loose, 0.95, 1000, 1).unwrap();
        assert!(cl.half_width() > ct.half_width() * 10.0);
    }

    #[test]
    fn ratio_ci_estimates_true_speedup() {
        let slow: Vec<f64> = sample(25, 3);
        let fast: Vec<f64> = sample(25, 4).iter().map(|x| x / 3.0).collect();
        let ci = bootstrap_ratio_ci(&slow, &fast, 0.95, 2000, 9).unwrap();
        assert!((ci.estimate - 3.0).abs() < 0.15, "{ci:?}");
        assert!(ci.contains(3.0));
        assert!(ci.excludes(1.0));
    }

    #[test]
    fn custom_statistic_median() {
        let xs = sample(40, 5);
        let ci = bootstrap_ci(&xs, crate::descriptive::median, 0.90, 800, 11).unwrap();
        assert!(ci.contains(crate::descriptive::median(&xs)));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 100, 1).is_none());
        assert!(bootstrap_ratio_ci(&[1.0, 2.0], &[0.0, 0.0], 0.95, 100, 1).is_none());
    }
}

/// BCa (bias-corrected and accelerated) bootstrap CI for an arbitrary
/// statistic — the standard remedy for the percentile bootstrap's small-n
/// undercoverage (Efron & Tibshirani, ch. 14).
///
/// The bias correction `z0` shifts the percentile endpoints by how asymmetric
/// the resampling distribution sits around the point estimate; the
/// acceleration `a` (from a leave-one-out jackknife) corrects for the
/// statistic's variance changing with the parameter.
///
/// Returns `None` for samples with fewer than 3 observations.
///
/// ```
/// let times = [10.2, 10.5, 9.9, 10.1, 10.4, 10.0, 10.3, 10.2];
/// let ci = rigor_stats::bootstrap_bca_ci(&times, rigor_stats::mean, 0.95, 2000, 7)
///     .expect("enough samples");
/// assert!(ci.contains(rigor_stats::mean(&times)));
/// ```
pub fn bootstrap_bca_ci<F>(
    xs: &[f64],
    statistic: F,
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Option<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64,
{
    use crate::dist::{normal_cdf, normal_quantile};
    let n = xs.len();
    if n < 3 {
        return None;
    }
    let theta_hat = statistic(xs);

    // Bootstrap replicates.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = vec![0.0; n];
    let mut reps = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for b in buf.iter_mut() {
            *b = xs[rng.gen_range(0..n)];
        }
        reps.push(statistic(&buf));
    }

    // Bias correction: the normal quantile of the fraction of replicates
    // below the point estimate.
    let below = reps.iter().filter(|&&r| r < theta_hat).count() as f64;
    let frac =
        (below / resamples as f64).clamp(1.0 / resamples as f64, 1.0 - 1.0 / resamples as f64);
    let z0 = normal_quantile(frac);

    // Acceleration from the leave-one-out jackknife.
    let mut jack = Vec::with_capacity(n);
    let mut loo = Vec::with_capacity(n - 1);
    for i in 0..n {
        loo.clear();
        loo.extend(
            xs.iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &x)| x),
        );
        jack.push(statistic(&loo));
    }
    let jack_mean = crate::descriptive::mean(&jack);
    let (mut num, mut den) = (0.0, 0.0);
    for &j in &jack {
        let d = jack_mean - j;
        num += d * d * d;
        den += d * d;
    }
    let a = if den > 0.0 {
        num / (6.0 * den.powf(1.5))
    } else {
        0.0
    };

    // Adjusted percentile endpoints.
    let alpha = 1.0 - confidence;
    let adjust = |z_alpha: f64| -> f64 {
        let w = z0 + z_alpha;
        let denom = 1.0 - a * w;
        if denom.abs() < 1e-12 {
            return if w > 0.0 { 1.0 } else { 0.0 };
        }
        normal_cdf(z0 + w / denom).clamp(0.0, 1.0)
    };
    let a1 = adjust(normal_quantile(alpha / 2.0));
    let a2 = adjust(normal_quantile(1.0 - alpha / 2.0));
    Some(ConfidenceInterval {
        estimate: theta_hat,
        lower: quantile(&reps, a1.min(a2)),
        upper: quantile(&reps, a1.max(a2)),
        confidence,
    })
}

#[cfg(test)]
mod bca_tests {
    use super::*;

    fn skewed_sample(n: usize, seed: u64) -> Vec<f64> {
        // Log-normal-ish: right-skewed like benchmark timings.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (rng.gen_range(-1.0f64..1.0) * 0.4).exp() * 100.0)
            .collect()
    }

    #[test]
    fn bca_contains_the_point_estimate() {
        let xs = skewed_sample(20, 1);
        let ci = bootstrap_bca_ci(&xs, mean, 0.95, 2000, 42).unwrap();
        assert!(ci.contains(mean(&xs)), "{ci:?}");
        assert!(ci.lower < ci.upper);
    }

    #[test]
    fn bca_is_deterministic_per_seed() {
        let xs = skewed_sample(15, 2);
        let a = bootstrap_bca_ci(&xs, mean, 0.95, 800, 9).unwrap();
        let b = bootstrap_bca_ci(&xs, mean, 0.95, 800, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bca_shifts_endpoints_on_skewed_data() {
        // On right-skewed data, BCa endpoints differ from plain percentile.
        let xs = [1.0, 1.1, 1.2, 1.0, 1.3, 1.1, 5.0, 1.2, 1.05, 1.15];
        let pct = bootstrap_mean_ci(&xs, 0.95, 4000, 3).unwrap();
        let bca = bootstrap_bca_ci(&xs, mean, 0.95, 4000, 3).unwrap();
        assert!(
            (pct.lower - bca.lower).abs() > 1e-6 || (pct.upper - bca.upper).abs() > 1e-6,
            "BCa should adjust the endpoints: {pct:?} vs {bca:?}"
        );
    }

    #[test]
    fn bca_on_symmetric_data_matches_percentile_closely() {
        let xs: Vec<f64> = (0..30)
            .map(|i| 100.0 + ((i * 17) % 21) as f64 - 10.0)
            .collect();
        let pct = bootstrap_mean_ci(&xs, 0.95, 4000, 5).unwrap();
        let bca = bootstrap_bca_ci(&xs, mean, 0.95, 4000, 5).unwrap();
        assert!((pct.lower - bca.lower).abs() < pct.half_width() * 0.3);
        assert!((pct.upper - bca.upper).abs() < pct.half_width() * 0.3);
    }

    #[test]
    fn bca_degenerate_inputs() {
        assert!(bootstrap_bca_ci(&[1.0, 2.0], mean, 0.95, 100, 1).is_none());
    }
}
