//! Hypothesis tests: Welch's t-test and the Mann–Whitney U test.

use crate::descriptive::{mean, variance};
use crate::dist::{normal_cdf, t_sf_two_sided};

/// Result of a two-sample test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (t or standardized U).
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Degrees of freedom (Welch only; `NaN` for Mann–Whitney).
    pub df: f64,
}

impl TestResult {
    /// True if the null hypothesis is rejected at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Welch's unequal-variance t-test (two-sided).
///
/// Returns `None` when either sample has fewer than 2 points or both have
/// zero variance.
///
/// ```
/// let interp = [100.0, 101.0, 99.5, 100.5, 100.2];
/// let jit = [50.0, 50.5, 49.8, 50.1, 50.3];
/// let result = rigor_stats::welch_t_test(&interp, &jit).expect("enough samples");
/// assert!(result.significant_at(0.01));
/// ```
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TestResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return None;
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    Some(TestResult {
        statistic: t,
        p_value: t_sf_two_sided(t, df).clamp(0.0, 1.0),
        df,
    })
}

/// Mann–Whitney U test (two-sided, normal approximation with tie
/// correction). Suitable for the skewed timing distributions benchmarks
/// produce.
///
/// Returns `None` for samples smaller than 2.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<TestResult> {
    let (na, nb) = (a.len(), b.len());
    if na < 2 || nb < 2 {
        return None;
    }
    // Rank the pooled sample with average ranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("no NaN in data"));
    let n = pooled.len();
    let mut ranks = vec![0.0; n];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let rank_sum_a: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, &r)| r)
        .sum();
    let (naf, nbf) = (na as f64, nb as f64);
    let u_a = rank_sum_a - naf * (naf + 1.0) / 2.0;
    let mu = naf * nbf / 2.0;
    let nf = n as f64;
    let sigma2 = naf * nbf / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if sigma2 <= 0.0 {
        return None;
    }
    // Continuity correction.
    let z = (u_a - mu - 0.5 * (u_a - mu).signum()) / sigma2.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(TestResult {
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
        df: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jittered(base: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                base + ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5)
            })
            .collect()
    }

    #[test]
    fn welch_detects_large_shift() {
        let a = jittered(10.0, 20, 1);
        let b = jittered(12.0, 20, 2);
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.significant_at(0.01), "p = {}", r.p_value);
        assert!(r.statistic < 0.0, "a < b means negative t");
    }

    #[test]
    fn welch_same_distribution_not_significant() {
        let a = jittered(10.0, 20, 3);
        let b = jittered(10.0, 20, 4);
        let r = welch_t_test(&a, &b).unwrap();
        assert!(!r.significant_at(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn welch_p_value_magnitude_sanity() {
        // Known example: equal variances, t should reduce to Student's t.
        let a = [30.02, 29.99, 30.11, 29.97, 30.01, 29.99];
        let b = [29.89, 29.93, 29.72, 29.98, 30.02, 29.98];
        let r = welch_t_test(&a, &b).unwrap();
        // t ≈ 1.959 with Welch df ≈ 7; t(0.95, 7) = 1.895 sits just below, so
        // the two-sided p must land just under 0.10.
        assert!((r.statistic - 1.959).abs() < 0.01, "t = {}", r.statistic);
        assert!(r.p_value > 0.07 && r.p_value < 0.10, "p = {}", r.p_value);
        assert!((r.df - 7.0).abs() < 1.0, "df = {}", r.df);
    }

    #[test]
    fn mann_whitney_detects_shift() {
        let a = jittered(10.0, 30, 5);
        let b = jittered(11.5, 30, 6);
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.significant_at(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn mann_whitney_identical_samples() {
        let a = jittered(10.0, 30, 7);
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(
            r.p_value > 0.9,
            "identical samples should not differ: p = {}",
            r.p_value
        );
    }

    #[test]
    fn mann_whitney_robust_to_outliers() {
        // A huge outlier should not flip the rank test's conclusion.
        let mut a = jittered(10.0, 25, 8);
        let b = jittered(10.0, 25, 9);
        a[0] = 10_000.0;
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(!r.significant_at(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(welch_t_test(&[1.0, 1.0], &[1.0, 1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[1.0, 2.0]).is_none());
    }
}
