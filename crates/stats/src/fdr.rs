//! Multiple-comparison corrections: Benjamini–Hochberg and Holm–Bonferroni.
//!
//! A regression gate that tests 20 benchmarks at α = 0.05 each expects one
//! false alarm per run — weekly noise that trains people to ignore the gate.
//! These procedures control the *family* error instead: Holm–Bonferroni
//! bounds the probability of even one false rejection (FWER), while
//! Benjamini–Hochberg bounds the expected fraction of false rejections
//! among the rejections made (FDR), which is the usual choice for suite
//! gating because its power does not collapse as the suite grows.
//!
//! Both are exposed in two forms: a rejection mask at a given level, and
//! *adjusted* p-values (as R's `p.adjust` computes them) so reports can
//! print a single per-benchmark number that is comparable against the
//! level directly: `adjusted <= q` iff the hypothesis is rejected.

/// Treats NaN (no test possible) as 1.0 and clamps into [0, 1], so a
/// degenerate p-value can never become a rejection.
fn sanitize(p: f64) -> f64 {
    if p.is_nan() {
        1.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// Indices of `ps` sorted by ascending (sanitized) p-value.
fn ascending_order(ps: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ps.len()).collect();
    order.sort_by(|&a, &b| {
        sanitize(ps[a])
            .partial_cmp(&sanitize(ps[b]))
            .expect("sanitized p-values are ordered")
    });
    order
}

/// Benjamini–Hochberg adjusted p-values (the `BH` method of R's
/// `p.adjust`): `adjusted[i] <= q` iff hypothesis `i` is rejected by the
/// step-up procedure at FDR level `q`. Output is in input order.
pub fn bh_adjusted(ps: &[f64]) -> Vec<f64> {
    let n = ps.len();
    let mut adjusted = vec![0.0; n];
    let order = ascending_order(ps);
    // Step up from the largest p: adjusted_(i) = min_{j >= i} (n / (j+1)) p_(j).
    let mut running = 1.0_f64;
    for (rank, &idx) in order.iter().enumerate().rev() {
        let scaled = sanitize(ps[idx]) * n as f64 / (rank as f64 + 1.0);
        running = running.min(scaled).min(1.0);
        adjusted[idx] = running;
    }
    adjusted
}

/// Benjamini–Hochberg step-up procedure at FDR level `q`: returns, in input
/// order, whether each hypothesis is rejected. NaN p-values are never
/// rejected.
pub fn benjamini_hochberg(ps: &[f64], q: f64) -> Vec<bool> {
    bh_adjusted(ps).into_iter().map(|a| a <= q).collect()
}

/// Holm–Bonferroni adjusted p-values (the `holm` method of R's `p.adjust`):
/// `adjusted[i] <= alpha` iff hypothesis `i` is rejected by the step-down
/// procedure at FWER level `alpha`. Output is in input order.
pub fn holm_adjusted(ps: &[f64]) -> Vec<f64> {
    let n = ps.len();
    let mut adjusted = vec![0.0; n];
    let order = ascending_order(ps);
    // Step down from the smallest p: adjusted_(i) = max_{j <= i} (n - j) p_(j).
    let mut running = 0.0_f64;
    for (rank, &idx) in order.iter().enumerate() {
        let scaled = sanitize(ps[idx]) * (n - rank) as f64;
        running = running.max(scaled).min(1.0);
        adjusted[idx] = running;
    }
    adjusted
}

/// Holm–Bonferroni step-down procedure at FWER level `alpha`: returns, in
/// input order, whether each hypothesis is rejected.
pub fn holm_bonferroni(ps: &[f64], alpha: f64) -> Vec<bool> {
    holm_adjusted(ps).into_iter().map(|a| a <= alpha).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from Benjamini & Hochberg (1995), Section 3.1:
    /// 15 ordered p-values, q = 0.05 — the step-up procedure rejects
    /// exactly the four smallest.
    const BH_1995: [f64; 15] = [
        0.0001, 0.0004, 0.0019, 0.0095, 0.0201, 0.0278, 0.0298, 0.0344, 0.0459, 0.3240, 0.4262,
        0.5719, 0.6528, 0.7590, 1.0000,
    ];

    #[test]
    fn bh_matches_the_1995_worked_example() {
        let rejected = benjamini_hochberg(&BH_1995, 0.05);
        let expected: Vec<bool> = (0..15).map(|i| i < 4).collect();
        assert_eq!(rejected, expected);
    }

    #[test]
    fn holm_is_more_conservative_on_the_same_table() {
        // Holm thresholds 0.05/15, 0.05/14, ... admit only the three
        // smallest entries (0.0095 > 0.05/12 ≈ 0.00417 stops the walk).
        let rejected = holm_bonferroni(&BH_1995, 0.05);
        let expected: Vec<bool> = (0..15).map(|i| i < 3).collect();
        assert_eq!(rejected, expected);
    }

    #[test]
    fn adjusted_values_match_r_p_adjust() {
        // R: p <- c(0.01, 0.005, 0.03, 0.04)
        //    p.adjust(p, "holm") -> 0.03 0.02 0.06 0.06
        //    p.adjust(p, "BH")   -> 0.02 0.02 0.04 0.04
        let ps = [0.01, 0.005, 0.03, 0.04];
        let holm = holm_adjusted(&ps);
        let bh = bh_adjusted(&ps);
        let close = |a: f64, b: f64| (a - b).abs() < 1e-12;
        for (got, want) in holm.iter().zip([0.03, 0.02, 0.06, 0.06]) {
            assert!(close(*got, want), "holm {holm:?}");
        }
        for (got, want) in bh.iter().zip([0.02, 0.02, 0.04, 0.04]) {
            assert!(close(*got, want), "bh {bh:?}");
        }
    }

    #[test]
    fn adjustment_is_monotone_in_the_sorted_order() {
        let ps = [0.04, 0.001, 0.02, 0.9, 0.02, 0.3];
        for adjusted in [bh_adjusted(&ps), holm_adjusted(&ps)] {
            let mut pairs: Vec<(f64, f64)> = ps.iter().copied().zip(adjusted).collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in pairs.windows(2) {
                assert!(w[0].1 <= w[1].1 + 1e-15, "{pairs:?}");
            }
        }
    }

    #[test]
    fn single_hypothesis_reduces_to_the_raw_test() {
        assert_eq!(bh_adjusted(&[0.03]), vec![0.03]);
        assert_eq!(holm_adjusted(&[0.03]), vec![0.03]);
        assert_eq!(benjamini_hochberg(&[0.03], 0.05), vec![true]);
        assert_eq!(holm_bonferroni(&[0.07], 0.05), vec![false]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(bh_adjusted(&[]).is_empty());
        assert!(holm_adjusted(&[]).is_empty());
        // NaN (no test possible) must never be rejected, and must not
        // poison its neighbours.
        let ps = [f64::NAN, 0.0001];
        assert_eq!(benjamini_hochberg(&ps, 0.05), vec![false, true]);
        assert_eq!(holm_bonferroni(&ps, 0.05), vec![false, true]);
        // p = 0 survives any correction; p = 1 survives none.
        assert_eq!(benjamini_hochberg(&[0.0, 1.0], 0.05), vec![true, false]);
    }

    #[test]
    fn bh_rejects_everything_the_uncorrected_test_would_when_all_tiny() {
        let ps = vec![1e-6; 20];
        assert!(benjamini_hochberg(&ps, 0.05).iter().all(|&r| r));
        assert!(holm_bonferroni(&ps, 0.05).iter().all(|&r| r));
    }

    #[test]
    fn bh_kills_the_weekly_false_alarm() {
        // 20 null benchmarks, one of which lands at p = 0.03 by chance: the
        // uncorrected test fires, the corrected gate does not.
        let mut ps = vec![0.5; 20];
        ps[7] = 0.03;
        assert!(ps[7] < 0.05, "uncorrected test would reject");
        assert!(!benjamini_hochberg(&ps, 0.05)[7]);
        assert!(!holm_bonferroni(&ps, 0.05)[7]);
    }
}
