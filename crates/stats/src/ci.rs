//! Confidence intervals.

use serde::{Deserialize, Serialize};

use crate::descriptive::{mean, sem};
use crate::dist::t_critical;

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate (usually a mean or a ratio of means).
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level, e.g. 0.95.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Half-width (margin of error).
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Half-width relative to the estimate (e.g. 0.02 = ±2%).
    pub fn relative_half_width(&self) -> f64 {
        if self.estimate == 0.0 {
            return f64::NAN;
        }
        self.half_width() / self.estimate.abs()
    }

    /// True if `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// True if the interval excludes `value` — the basis for "statistically
    /// significant difference from `value`" decisions.
    pub fn excludes(&self, value: f64) -> bool {
        !self.contains(value)
    }

    /// True if two intervals overlap. Non-overlap implies a significant
    /// difference (the converse does not hold — see the paper's discussion).
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }
}

/// Student-t confidence interval for the mean of `xs`.
///
/// Returns `None` when fewer than 2 observations are available.
pub fn mean_ci(xs: &[f64], confidence: f64) -> Option<ConfidenceInterval> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs);
    let se = sem(xs);
    let t = t_critical(confidence, (xs.len() - 1) as f64);
    Some(ConfidenceInterval {
        estimate: m,
        lower: m - t * se,
        upper: m + t * se,
        confidence,
    })
}

/// Welch confidence interval for the difference of means (a − b), using the
/// Welch–Satterthwaite degrees of freedom.
pub fn welch_diff_ci(a: &[f64], b: &[f64], confidence: f64) -> Option<ConfidenceInterval> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (
        crate::descriptive::variance(a),
        crate::descriptive::variance(b),
    );
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    let se = se2.sqrt();
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let t = t_critical(confidence, df);
    let d = ma - mb;
    Some(ConfidenceInterval {
        estimate: d,
        lower: d - t * se,
        upper: d + t * se,
        confidence,
    })
}

/// Confidence interval for the ratio of means mean(a)/mean(b) by the delta
/// method (first-order propagation of the two SEMs, assuming independence).
///
/// For speedups, `a` is the baseline and `b` the improved system, so values
/// above 1 mean "b is faster".
pub fn ratio_ci_delta(a: &[f64], b: &[f64], confidence: f64) -> Option<ConfidenceInterval> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    if mb == 0.0 {
        return None;
    }
    let r = ma / mb;
    let rel_var = (sem(a) / ma).powi(2) + (sem(b) / mb).powi(2);
    let se = r.abs() * rel_var.sqrt();
    // Conservative df: smaller of the two samples minus one.
    let df = (a.len().min(b.len()) - 1) as f64;
    let t = t_critical(confidence, df);
    Some(ConfidenceInterval {
        estimate: r,
        lower: r - t * se,
        upper: r + t * se,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_hand_checked() {
        // xs = 1..=10: mean 5.5, sd ≈ 3.0277, sem ≈ 0.9574, t(.95, 9) ≈ 2.262
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ci = mean_ci(&xs, 0.95).unwrap();
        assert!((ci.estimate - 5.5).abs() < 1e-12);
        assert!((ci.half_width() - 2.262 * 0.957_427).abs() < 2e-3);
        assert!(ci.contains(5.5));
        assert!(ci.contains(4.0));
        assert!(!ci.contains(10.0));
    }

    #[test]
    fn tiny_samples_return_none() {
        assert!(mean_ci(&[1.0], 0.95).is_none());
        assert!(mean_ci(&[], 0.95).is_none());
        assert!(welch_diff_ci(&[1.0], &[1.0, 2.0], 0.95).is_none());
    }

    #[test]
    fn higher_confidence_is_wider() {
        let xs: Vec<f64> = (1..=20).map(|i| (i % 7) as f64).collect();
        let c90 = mean_ci(&xs, 0.90).unwrap();
        let c99 = mean_ci(&xs, 0.99).unwrap();
        assert!(c99.half_width() > c90.half_width());
    }

    #[test]
    fn welch_detects_clear_difference() {
        let a: Vec<f64> = (0..20).map(|i| 10.0 + (i % 3) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..20).map(|i| 5.0 + (i % 3) as f64 * 0.1).collect();
        let ci = welch_diff_ci(&a, &b, 0.95).unwrap();
        assert!(ci.lower > 4.0 && ci.upper < 6.0);
        assert!(ci.excludes(0.0), "difference is clearly nonzero");
    }

    #[test]
    fn welch_overlapping_distributions_include_zero() {
        let a: Vec<f64> = (0..10).map(|i| 10.0 + ((i * 7) % 5) as f64).collect();
        let b: Vec<f64> = (0..10).map(|i| 10.3 + ((i * 3) % 5) as f64).collect();
        let ci = welch_diff_ci(&a, &b, 0.95).unwrap();
        assert!(
            ci.contains(0.0),
            "no real difference should include 0: {ci:?}"
        );
    }

    #[test]
    fn ratio_ci_centres_on_true_ratio() {
        let a: Vec<f64> = (0..30).map(|i| 20.0 + (i % 5) as f64 * 0.01).collect();
        let b: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.01).collect();
        let ci = ratio_ci_delta(&a, &b, 0.95).unwrap();
        assert!((ci.estimate - 2.0).abs() < 0.01);
        // The CI must cover the exact sample ratio and reject "no speedup".
        assert!(ci.contains(crate::descriptive::mean(&a) / crate::descriptive::mean(&b)));
        assert!(ci.excludes(1.0), "2x speedup must exclude 1.0");
    }

    #[test]
    fn interval_geometry() {
        let a = ConfidenceInterval {
            estimate: 5.0,
            lower: 4.0,
            upper: 6.0,
            confidence: 0.95,
        };
        let b = ConfidenceInterval {
            estimate: 6.5,
            lower: 5.5,
            upper: 7.5,
            confidence: 0.95,
        };
        let c = ConfidenceInterval {
            estimate: 9.0,
            lower: 8.0,
            upper: 10.0,
            confidence: 0.95,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!((a.half_width() - 1.0).abs() < 1e-12);
        assert!((a.relative_half_width() - 0.2).abs() < 1e-12);
    }
}
