//! Changepoint detection by binary segmentation with a BIC-style penalty.
//!
//! This is the machinery behind warmup detection à la Barrett et al.
//! (OOPSLA'17): segment a per-iteration timing series into mean-shift
//! segments, then classify the segment structure (warmup, flat, slowdown,
//! no steady state).

use serde::{Deserialize, Serialize};

/// One mean-shift segment of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First index (inclusive).
    pub start: usize,
    /// One past the last index.
    pub end: usize,
    /// Mean of the segment.
    pub mean: f64,
}

impl Segment {
    /// Number of points in the segment.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the segment is empty (never produced by the segmenter).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Prefix sums enabling O(1) segment cost queries.
struct Prefix {
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl Prefix {
    fn new(xs: &[f64]) -> Prefix {
        let mut sum = Vec::with_capacity(xs.len() + 1);
        let mut sum_sq = Vec::with_capacity(xs.len() + 1);
        sum.push(0.0);
        sum_sq.push(0.0);
        for &x in xs {
            sum.push(sum.last().expect("nonempty") + x);
            sum_sq.push(sum_sq.last().expect("nonempty") + x * x);
        }
        Prefix { sum, sum_sq }
    }

    /// Sum of squared deviations from the mean over `[a, b)`.
    fn sse(&self, a: usize, b: usize) -> f64 {
        let n = (b - a) as f64;
        if n < 1.0 {
            return 0.0;
        }
        let s = self.sum[b] - self.sum[a];
        let sq = self.sum_sq[b] - self.sum_sq[a];
        (sq - s * s / n).max(0.0)
    }

    fn mean(&self, a: usize, b: usize) -> f64 {
        (self.sum[b] - self.sum[a]) / (b - a) as f64
    }
}

/// Configuration for the segmenter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentConfig {
    /// Minimum points per segment.
    pub min_segment_len: usize,
    /// Penalty multiplier on the BIC term; larger values yield fewer
    /// segments. 1.0 is plain BIC.
    pub penalty_factor: f64,
    /// Hard cap on the number of segments.
    pub max_segments: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            min_segment_len: 3,
            penalty_factor: 1.0,
            max_segments: 16,
        }
    }
}

/// Segments `xs` into mean-shift segments by greedy binary segmentation.
///
/// A split is accepted while it reduces the total SSE by more than the
/// BIC-style penalty `penalty_factor · σ̂² · ln n` (σ̂² estimated from
/// first-order differences, robust to mean shifts).
///
/// ```
/// use rigor_stats::changepoint::{segment, SegmentConfig};
///
/// // Ten slow iterations, then thirty fast ones — a warmup step.
/// let mut series = vec![50.0; 10];
/// series.extend(vec![10.0; 30]);
/// let segments = segment(&series, &SegmentConfig::default());
/// assert_eq!(segments.len(), 2);
/// assert_eq!(segments[1].start, 10);
/// ```
pub fn segment(xs: &[f64], config: &SegmentConfig) -> Vec<Segment> {
    let n = xs.len();
    // A zero minimum would admit empty segments (and an n == 1 series would
    // reach the noise estimator with no lag-1 differences); clamp to 1.
    let min_len = config.min_segment_len.max(1);
    if n == 0 {
        return Vec::new();
    }
    if n < 2 * min_len {
        return vec![Segment {
            start: 0,
            end: n,
            mean: crate::descriptive::mean(xs),
        }];
    }
    let prefix = Prefix::new(xs);
    // Robust noise estimate from lag-1 differences: for i.i.d. noise,
    // X_{i+1} − X_i has scale √2·σ, and the median absolute difference is a
    // robust scale estimate (÷0.6745 for normal consistency). Mean shifts
    // contaminate only a handful of differences, so the median ignores them.
    let abs_diffs: Vec<f64> = xs.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
    let med = crate::descriptive::median(&abs_diffs);
    let sigma = med / (std::f64::consts::SQRT_2 * 0.6745);
    // Floor σ̂² relative to the data scale: on (near-)constant series the
    // median difference is 0, and an absolute floor like 1e-30 sits below
    // the rounding error of the prefix-sum SSE (~n·ε·scale²) — spurious
    // "gains" of that size would split constant data. Relative level
    // differences under 1e-6 are numerical noise, never a real shift.
    let scale = xs.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    let sigma2 = (sigma * sigma).max((1e-6 * scale).powi(2)).max(1e-30);
    let penalty = config.penalty_factor * sigma2 * (n as f64).ln() * 4.0;

    let mut boundaries = vec![0usize, n];
    loop {
        if boundaries.len() > config.max_segments {
            break;
        }
        // Find the single best split across all current segments.
        let mut best: Option<(f64, usize)> = None;
        for w in boundaries.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b - a < 2 * min_len {
                continue;
            }
            let whole = prefix.sse(a, b);
            for s in (a + min_len)..=(b - min_len) {
                let gain = whole - prefix.sse(a, s) - prefix.sse(s, b);
                if best.map(|(g, _)| gain > g).unwrap_or(true) {
                    best = Some((gain, s));
                }
            }
        }
        match best {
            Some((gain, split)) if gain > penalty => {
                let pos = boundaries
                    .binary_search(&split)
                    .expect_err("split strictly inside a segment");
                boundaries.insert(pos, split);
            }
            _ => break,
        }
    }

    boundaries
        .windows(2)
        .map(|w| Segment {
            start: w[0],
            end: w[1],
            mean: prefix.mean(w[0], w[1]),
        })
        .collect()
}

/// Penalty factors swept by [`select_penalty_factor`], a geometric grid
/// spanning aggressive (0.25× BIC) to very conservative (64× BIC).
pub const PENALTY_GRID: [f64; 9] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// How many of the [`PENALTY_GRID`] factors must reproduce a boundary for
/// [`select_penalty_factor`] to treat it as stable.
const STABLE_FACTOR_COUNT: usize = 3;

/// Selects a penalty factor for `xs` by a stability sweep.
///
/// The series is segmented at every factor in [`PENALTY_GRID`] and each
/// interior boundary is scored by how many factors reproduce it. A genuine
/// mean shift survives a wide penalty range, so its boundary recurs across
/// many factors; spurious noise-driven splits exist only in a narrow window
/// at the aggressive end of the grid, recurring once or twice. Boundaries
/// reproduced by at least [`STABLE_FACTOR_COUNT`] factors form the stable
/// segmentation, and the returned factor is the middle of the grid factors
/// that yield exactly that segmentation. On a pure-noise series the stable
/// set is empty and the selection lands on the (conservative) unsplit
/// factors.
///
/// Degenerate inputs (too short to ever split) and series where no grid
/// factor reproduces the stable set exactly return plain BIC (1.0).
pub fn select_penalty_factor(xs: &[f64], config: &SegmentConfig) -> f64 {
    let min_len = config.min_segment_len.max(1);
    if xs.len() < 2 * min_len {
        return 1.0;
    }
    // Interior boundaries per grid factor (already sorted by construction).
    let boundaries: Vec<Vec<usize>> = PENALTY_GRID
        .iter()
        .map(|&factor| {
            segment(
                xs,
                &SegmentConfig {
                    penalty_factor: factor,
                    ..*config
                },
            )
            .iter()
            .skip(1)
            .map(|s| s.start)
            .collect()
        })
        .collect();
    let mut counts: Vec<(usize, usize)> = Vec::new();
    for bs in &boundaries {
        for &b in bs {
            match counts.iter_mut().find(|(idx, _)| *idx == b) {
                Some((_, n)) => *n += 1,
                None => counts.push((b, 1)),
            }
        }
    }
    let mut stable: Vec<usize> = counts
        .iter()
        .filter(|(_, n)| *n >= STABLE_FACTOR_COUNT)
        .map(|(b, _)| *b)
        .collect();
    stable.sort_unstable();
    let matching: Vec<usize> = boundaries
        .iter()
        .enumerate()
        .filter(|(_, bs)| **bs == stable)
        .map(|(i, _)| i)
        .collect();
    match matching.get(matching.len() / 2) {
        Some(&mid) => PENALTY_GRID[mid],
        None => 1.0,
    }
}

/// Merges adjacent segments whose means are equivalent within a relative
/// tolerance. Changepoint detection is sensitive enough to flag sub-percent
/// mean shifts that are real but irrelevant to steady-state reasoning; this
/// pass collapses them. Merged means are length-weighted.
pub fn merge_equivalent(segs: &[Segment], rel_tol: f64) -> Vec<Segment> {
    let mut out: Vec<Segment> = Vec::with_capacity(segs.len());
    for &seg in segs {
        match out.last_mut() {
            Some(prev)
                if (prev.mean - seg.mean).abs()
                    <= rel_tol * prev.mean.abs().max(seg.mean.abs()) =>
            {
                let total = (prev.len() + seg.len()) as f64;
                prev.mean = (prev.mean * prev.len() as f64 + seg.mean * seg.len() as f64) / total;
                prev.end = seg.end;
            }
            _ => out.push(seg),
        }
    }
    out
}

#[cfg(test)]
mod merge_tests {
    use super::*;

    fn seg(start: usize, end: usize, mean: f64) -> Segment {
        Segment { start, end, mean }
    }

    #[test]
    fn equivalent_neighbours_merge_weighted() {
        let segs = [seg(0, 30, 100.0), seg(30, 40, 101.0)];
        let merged = merge_equivalent(&segs, 0.02);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].start, 0);
        assert_eq!(merged[0].end, 40);
        assert!((merged[0].mean - 100.25).abs() < 1e-9);
    }

    #[test]
    fn distinct_levels_stay_separate() {
        let segs = [seg(0, 10, 50.0), seg(10, 40, 10.0)];
        let merged = merge_equivalent(&segs, 0.02);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn chain_merging_accumulates() {
        // 100, 101.5, 102 — each neighbour within 2% of the merged prefix
        // (100.75 after the first merge, then 102 is within 2% of that).
        let segs = [seg(0, 10, 100.0), seg(10, 20, 101.5), seg(20, 30, 102.0)];
        let merged = merge_equivalent(&segs, 0.02);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].end, 30);
    }

    #[test]
    fn empty_input() {
        assert!(merge_equivalent(&[], 0.02).is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(level: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 33) as f64 / (1u64 << 31) as f64; // [0,1)
                level + (u - 0.5) * 0.2
            })
            .collect()
    }

    #[test]
    fn flat_series_is_one_segment() {
        let xs = noisy(10.0, 100, 1);
        let segs = segment(&xs, &SegmentConfig::default());
        assert_eq!(segs.len(), 1);
        assert!((segs[0].mean - 10.0).abs() < 0.05);
    }

    #[test]
    fn single_step_is_two_segments() {
        let mut xs = noisy(20.0, 50, 2);
        xs.extend(noisy(10.0, 50, 3));
        let segs = segment(&xs, &SegmentConfig::default());
        assert_eq!(segs.len(), 2, "{segs:?}");
        assert!((segs[0].mean - 20.0).abs() < 0.1);
        assert!((segs[1].mean - 10.0).abs() < 0.1);
        assert!(
            (segs[0].end as i64 - 50).abs() <= 2,
            "split near 50: {segs:?}"
        );
    }

    #[test]
    fn warmup_staircase_finds_all_steps() {
        let mut xs = Vec::new();
        xs.extend(noisy(40.0, 30, 4));
        xs.extend(noisy(25.0, 30, 5));
        xs.extend(noisy(10.0, 60, 6));
        let segs = segment(&xs, &SegmentConfig::default());
        assert_eq!(segs.len(), 3, "{segs:?}");
        assert!(segs[0].mean > segs[1].mean && segs[1].mean > segs[2].mean);
    }

    #[test]
    fn segments_partition_the_series() {
        let mut xs = noisy(5.0, 40, 7);
        xs.extend(noisy(9.0, 40, 8));
        xs.extend(noisy(2.0, 40, 9));
        let segs = segment(&xs, &SegmentConfig::default());
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, xs.len());
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must tile the series");
        }
        assert!(segs.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn short_series_is_single_segment() {
        let xs = vec![1.0, 5.0, 2.0];
        let segs = segment(&xs, &SegmentConfig::default());
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn empty_series_yields_nothing() {
        assert!(segment(&[], &SegmentConfig::default()).is_empty());
    }

    #[test]
    fn higher_penalty_fewer_segments() {
        let mut xs = Vec::new();
        for i in 0..6 {
            xs.extend(noisy(10.0 + i as f64 * 0.35, 25, 10 + i));
        }
        let loose = segment(
            &xs,
            &SegmentConfig {
                penalty_factor: 0.2,
                ..Default::default()
            },
        );
        let strict = segment(
            &xs,
            &SegmentConfig {
                penalty_factor: 50.0,
                ..Default::default()
            },
        );
        assert!(loose.len() >= strict.len());
    }

    // Inter-run histories are much shorter than iteration series; the
    // degenerate lengths below must yield "insufficient data" behaviour (a
    // single whole-series segment, or nothing) — never a panic or a
    // spurious split.

    #[test]
    fn single_point_is_one_whole_segment() {
        let segs = segment(&[42.0], &SegmentConfig::default());
        assert_eq!(
            segs,
            vec![Segment {
                start: 0,
                end: 1,
                mean: 42.0
            }]
        );
    }

    #[test]
    fn zero_min_segment_len_is_clamped_not_panicking() {
        let cfg = SegmentConfig {
            min_segment_len: 0,
            ..Default::default()
        };
        // n == 1 with min_len 0 used to reach the noise estimator with an
        // empty diff series; the clamp keeps it on the short-series path.
        let segs = segment(&[7.0], &cfg);
        assert_eq!(segs.len(), 1);
        // And longer series must never produce empty segments.
        let mut xs = vec![10.0; 8];
        xs.extend(vec![20.0; 8]);
        let segs = segment(&xs, &cfg);
        assert!(segs.iter().all(|s| !s.is_empty()), "{segs:?}");
        assert_eq!(segs.first().unwrap().start, 0);
        assert_eq!(segs.last().unwrap().end, xs.len());
    }

    #[test]
    fn series_shorter_than_two_min_segments_is_never_split() {
        let cfg = SegmentConfig {
            min_segment_len: 4,
            ..Default::default()
        };
        // A blatant step, but with only 7 points no split can satisfy the
        // minimum segment length on both sides.
        let xs = [10.0, 10.0, 10.0, 10.0, 99.0, 99.0, 99.0];
        let segs = segment(&xs, &cfg);
        assert_eq!(segs.len(), 1, "{segs:?}");
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs[0].end, xs.len());
    }

    #[test]
    fn constant_series_is_one_segment() {
        let xs = vec![5.0; 40];
        let segs = segment(&xs, &SegmentConfig::default());
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].mean, 5.0);
    }

    #[test]
    fn auto_penalty_keeps_a_clear_step() {
        let mut xs = noisy(20.0, 40, 11);
        xs.extend(noisy(10.0, 40, 12));
        let cfg = SegmentConfig::default();
        let factor = select_penalty_factor(&xs, &cfg);
        let segs = segment(
            &xs,
            &SegmentConfig {
                penalty_factor: factor,
                ..cfg
            },
        );
        assert_eq!(segs.len(), 2, "factor {factor}: {segs:?}");
    }

    #[test]
    fn auto_penalty_is_conservative_on_noise() {
        let xs = noisy(10.0, 80, 13);
        let cfg = SegmentConfig::default();
        let factor = select_penalty_factor(&xs, &cfg);
        let segs = segment(
            &xs,
            &SegmentConfig {
                penalty_factor: factor,
                ..cfg
            },
        );
        assert_eq!(segs.len(), 1, "factor {factor}: {segs:?}");
    }

    #[test]
    fn auto_penalty_on_degenerate_input_is_bic() {
        let cfg = SegmentConfig::default();
        assert_eq!(select_penalty_factor(&[], &cfg), 1.0);
        assert_eq!(select_penalty_factor(&[1.0, 2.0], &cfg), 1.0);
    }

    #[test]
    fn max_segments_is_respected() {
        let mut xs = Vec::new();
        for i in 0..20 {
            xs.extend(noisy(10.0 * (i % 2 + 1) as f64, 10, 30 + i));
        }
        let cfg = SegmentConfig {
            max_segments: 4,
            min_segment_len: 3,
            penalty_factor: 0.1,
        };
        let segs = segment(&xs, &cfg);
        assert!(segs.len() <= 4);
    }
}
