//! Sample-allocation math for suite-level precision planning.
//!
//! Given per-cell noise estimates, how should a fixed invocation budget be
//! split so the suite-wide precision is best? The classical answer is
//! Neyman allocation: with equal per-sample cost, the variance of each
//! cell's mean after `n_i` samples is `σ_i²/n_i`, and the total estimator
//! variance under `Σ n_i = N` is minimized by `n_i ∝ σ_i`. This module
//! implements that optimum exactly (up to integer rounding) plus the two
//! practical refinements a planner needs:
//!
//! * **deterministic rounding** — largest-remainder apportionment with a
//!   fixed tie-break (lower index wins), so an allocation is a pure
//!   function of its inputs and replays identically on resume;
//! * **floor/ceiling clamps** — every cell keeps at least its pilot floor
//!   (an unmeasured cell can never be starved) and never receives more
//!   than its ceiling, with the freed budget re-flowed to the remaining
//!   cells in Neyman proportion (iterative water-filling).
//!
//! The predicted-half-width model used to size refinements rides on the
//! same `s/√n` scaling as [`crate::ci::mean_ci`]: growing a cell from `n`
//! to `n'` samples shrinks its relative CI half-width by `√(n/n')` (the
//! t-quantile also shrinks with `n`, so the prediction is conservative).

/// A sanitized noise weight: non-finite or negative estimates count as
/// zero weight rather than poisoning the whole allocation.
fn weight(sigma: f64) -> f64 {
    if sigma.is_finite() && sigma > 0.0 {
        sigma
    } else {
        0.0
    }
}

/// Splits `total` into integer shares proportional to `weights` by
/// largest-remainder apportionment. Ties in the fractional part break
/// toward the lower index; an all-zero weight vector splits evenly. The
/// result always sums to `total` (or is empty when `weights` is).
fn apportion(weights: &[f64], total: u64) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let sum: f64 = weights.iter().sum();
    let uniform = vec![1.0; weights.len()];
    let weights = if sum > 0.0 { weights } else { &uniform[..] };
    let sum: f64 = weights.iter().sum();
    let exact: Vec<f64> = weights.iter().map(|w| total as f64 * (w / sum)).collect();
    let mut shares: Vec<u64> = exact.iter().map(|x| x.floor() as u64).collect();
    let assigned: u64 = shares.iter().sum();
    // Distribute the rounding leftover by largest fractional part, lower
    // index first on ties. The leftover is < len, so one pass suffices.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut leftover = total.saturating_sub(assigned);
    for &i in &order {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    shares
}

/// Neyman allocation: integer shares of `total` proportional to the
/// per-cell standard deviations `sigmas` (the closed-form optimum for
/// minimizing total estimator variance at equal per-sample cost).
///
/// Deterministic: largest-remainder rounding with lower-index tie-break.
/// Non-finite or negative sigmas get zero weight; if every sigma is zero
/// the budget splits evenly.
pub fn neyman_allocation(sigmas: &[f64], total: u64) -> Vec<u64> {
    let weights: Vec<f64> = sigmas.iter().map(|&s| weight(s)).collect();
    apportion(&weights, total)
}

/// Neyman allocation under per-cell clamps: every cell receives at least
/// `min(floor, ceilings[i])` and at most `ceilings[i]`, with budget beyond
/// the floors distributed in Neyman proportion and any share a cell cannot
/// absorb (its ceiling) re-flowed to the others (iterative water-filling).
///
/// The floors take precedence over the budget: when `total` cannot cover
/// every floor the result exceeds `total` — a planner's pilot phase is not
/// negotiable. When `total` exceeds the summed ceilings, the surplus is
/// simply left unspent.
pub fn clamped_allocation(sigmas: &[f64], total: u64, floor: u64, ceilings: &[u64]) -> Vec<u64> {
    assert_eq!(sigmas.len(), ceilings.len(), "one ceiling per cell");
    let mut alloc: Vec<u64> = ceilings.iter().map(|&c| floor.min(c)).collect();
    let mut remaining = total.saturating_sub(alloc.iter().sum());
    while remaining > 0 {
        let headroom: Vec<u64> = alloc
            .iter()
            .zip(ceilings)
            .map(|(&a, &c)| c.saturating_sub(a))
            .collect();
        if headroom.iter().all(|&h| h == 0) {
            break;
        }
        // Zero-weight saturated cells so the share flows to open ones.
        let weights: Vec<f64> = sigmas
            .iter()
            .zip(&headroom)
            .map(|(&s, &h)| {
                if h == 0 {
                    0.0
                } else {
                    weight(s).max(f64::MIN_POSITIVE)
                }
            })
            .collect();
        let grants = apportion(&weights, remaining);
        let mut granted = 0u64;
        for ((a, g), &h) in alloc.iter_mut().zip(grants).zip(&headroom) {
            let take = g.min(h);
            *a += take;
            granted += take;
        }
        if granted == 0 {
            // Proportions rounded every open cell to zero: hand out singles
            // in index order so the loop always terminates.
            for (a, &h) in alloc.iter_mut().zip(&headroom) {
                if remaining == 0 {
                    break;
                }
                if h > 0 {
                    *a += 1;
                    remaining -= 1;
                }
            }
            continue;
        }
        remaining -= granted;
    }
    alloc
}

/// The predicted relative CI half-width after growing a cell from `n_now`
/// to `n_new` samples, given its current relative half-width: half-widths
/// scale as `s/√n`, so the prediction is `rel_now · √(n_now/n_new)`.
/// Conservative: the t-quantile also shrinks as `n` grows.
pub fn predicted_rel_half_width(rel_now: f64, n_now: u64, n_new: u64) -> f64 {
    if n_new == 0 {
        return f64::INFINITY;
    }
    rel_now * (n_now as f64 / n_new as f64).sqrt()
}

/// The smallest sample count predicted to bring a cell's relative CI
/// half-width from `rel_now` (at `n_now` samples) down to `target`:
/// `⌈n_now · (rel_now/target)²⌉`. Returns `n_now` when the target is
/// already met; saturates at `u64::MAX` on overflow.
pub fn invocations_for_target(n_now: u64, rel_now: f64, target: f64) -> u64 {
    assert!(target > 0.0, "precision target must be positive");
    if !rel_now.is_finite() {
        return u64::MAX;
    }
    if rel_now <= target {
        return n_now;
    }
    let ratio = rel_now / target;
    let needed = (n_now as f64) * ratio * ratio;
    if needed >= u64::MAX as f64 {
        u64::MAX
    } else {
        needed.ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_cell_closed_form() {
        // σ-ratio 3:1 → shares 75:25 of 100.
        assert_eq!(neyman_allocation(&[3.0, 1.0], 100), vec![75, 25]);
        // Equal σ → even split, odd leftover to the lower index.
        assert_eq!(neyman_allocation(&[2.0, 2.0], 101), vec![51, 50]);
    }

    #[test]
    fn zero_and_degenerate_sigmas() {
        assert_eq!(neyman_allocation(&[0.0, 0.0, 0.0], 9), vec![3, 3, 3]);
        assert_eq!(neyman_allocation(&[f64::NAN, 1.0], 10), vec![0, 10]);
        assert_eq!(neyman_allocation(&[-1.0, 1.0], 10), vec![0, 10]);
        assert_eq!(neyman_allocation(&[], 10), Vec::<u64>::new());
        assert_eq!(neyman_allocation(&[1.0], 0), vec![0]);
    }

    #[test]
    fn allocation_is_deterministic() {
        let sigmas = [1.0, 2.5, 0.5, 2.5, 7.0];
        assert_eq!(
            neyman_allocation(&sigmas, 97),
            neyman_allocation(&sigmas, 97)
        );
        assert_eq!(
            clamped_allocation(&sigmas, 97, 3, &[50; 5]),
            clamped_allocation(&sigmas, 97, 3, &[50; 5])
        );
    }

    #[test]
    fn clamps_respect_floor_and_ceiling() {
        // One huge σ would hog everything; the ceiling re-flows its excess.
        let a = clamped_allocation(&[100.0, 1.0, 1.0], 60, 5, &[20, 40, 40]);
        assert_eq!(a[0], 20, "capped at its ceiling");
        assert!(a.iter().all(|&n| n >= 5), "floor holds: {a:?}");
        assert_eq!(a.iter().sum::<u64>(), 60, "budget fully spent");
    }

    #[test]
    fn floors_take_precedence_over_budget() {
        // Budget 4 cannot cover 3 floors of 5: floors win anyway.
        let a = clamped_allocation(&[1.0, 1.0, 1.0], 4, 5, &[10, 10, 10]);
        assert_eq!(a, vec![5, 5, 5]);
        // Surplus beyond all ceilings is left unspent.
        let a = clamped_allocation(&[1.0, 1.0], 100, 2, &[4, 4]);
        assert_eq!(a, vec![4, 4]);
    }

    #[test]
    fn predicted_half_width_scales_as_inverse_sqrt_n() {
        let p = predicted_rel_half_width(0.04, 5, 20);
        assert!((p - 0.02).abs() < 1e-12, "4x samples halve the width: {p}");
        assert_eq!(predicted_rel_half_width(0.04, 5, 5), 0.04);
        assert!(predicted_rel_half_width(0.04, 5, 0).is_infinite());
    }

    #[test]
    fn invocations_for_target_inverts_the_model() {
        // 4% at n=5 → 2% needs 4x the samples.
        assert_eq!(invocations_for_target(5, 0.04, 0.02), 20);
        // Already met: stay put.
        assert_eq!(invocations_for_target(7, 0.01, 0.02), 7);
        // No usable estimate: unbounded need.
        assert_eq!(invocations_for_target(5, f64::INFINITY, 0.02), u64::MAX);
        // The predicted width at the returned n meets the target.
        let n = invocations_for_target(3, 0.11, 0.02);
        assert!(predicted_rel_half_width(0.11, 3, n) <= 0.02);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Two-cell Neyman optimum, closed form: each integer share sits
        /// within one unit of `total·σ_i/(σ_1+σ_2)`.
        #[test]
        fn prop_two_cell_matches_neyman_optimum(
            s1 in 0.01f64..1e6,
            s2 in 0.01f64..1e6,
            total in 0u64..100_000,
        ) {
            let a = neyman_allocation(&[s1, s2], total);
            prop_assert_eq!(a.iter().sum::<u64>(), total);
            let exact1 = total as f64 * s1 / (s1 + s2);
            prop_assert!((a[0] as f64 - exact1).abs() < 1.0 + 1e-9);
        }

        /// k-cell Neyman optimum: every share is within one unit of its
        /// exact proportional value and the budget is spent exactly.
        #[test]
        fn prop_k_cell_matches_neyman_optimum(
            sigmas in prop::collection::vec(0.01f64..1e4, 1..12),
            total in 0u64..50_000,
        ) {
            let a = neyman_allocation(&sigmas, total);
            prop_assert_eq!(a.iter().sum::<u64>(), total);
            let sum: f64 = sigmas.iter().sum();
            for (share, sigma) in a.iter().zip(&sigmas) {
                let exact = total as f64 * sigma / sum;
                prop_assert!((*share as f64 - exact).abs() < 1.0 + 1e-9);
            }
        }

        /// Clamped allocation never starves a cell below its floor (or its
        /// ceiling when that is lower), never exceeds a ceiling, and spends
        /// the whole budget whenever the clamps make that feasible.
        #[test]
        fn prop_clamped_never_starves(
            sigmas in prop::collection::vec(0.0f64..1e4, 1..12),
            budget_per_cell in 0u64..200,
            floor in 0u64..20,
            ceiling_extra in 1u64..100,
        ) {
            let n = sigmas.len() as u64;
            let total = budget_per_cell * n;
            let ceilings: Vec<u64> = (0..n).map(|i| floor + ceiling_extra + i).collect();
            let a = clamped_allocation(&sigmas, total, floor, &ceilings);
            for ((&share, &ceil), i) in a.iter().zip(&ceilings).zip(0..) {
                prop_assert!(share >= floor.min(ceil), "cell {i} starved: {a:?}");
                prop_assert!(share <= ceil, "cell {i} over ceiling: {a:?}");
            }
            let spent: u64 = a.iter().sum();
            let floors: u64 = ceilings.iter().map(|&c| floor.min(c)).sum();
            let capacity: u64 = ceilings.iter().sum();
            prop_assert_eq!(spent, total.max(floors).min(capacity));
        }
    }
}
