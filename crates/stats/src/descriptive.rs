//! Descriptive statistics.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator). `NaN` if fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean.
pub fn sem(xs: &[f64]) -> f64 {
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Coefficient of variation (σ/μ). `NaN` if the mean is 0 or n < 2.
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return f64::NAN;
    }
    std_dev(xs) / m
}

/// Median (average of the two central order statistics for even n).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in data"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Geometric mean. All inputs must be positive; returns `NaN` otherwise.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Harmonic mean. All inputs must be positive; returns `NaN` otherwise.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return f64::NAN;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Minimum (ignores nothing; `NaN` for empty input).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::NAN, |a, b| if a.is_nan() || b < a { b } else { a })
}

/// Maximum.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::NAN, |a, b| if a.is_nan() || b > a { b } else { a })
}

/// A compact numeric summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Median.
    pub median: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Coefficient of variation.
    pub cov: f64,
}

impl Summary {
    /// Summarizes `xs`.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            median: median(xs),
            min: min(xs),
            max: max(xs),
            cov: cov(xs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn mean_and_variance_hand_computed() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < EPS);
        // Sample variance with n-1: sum of squared devs = 32, / 7
        assert!((variance(&xs) - 32.0 / 7.0).abs() < EPS);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn geomean_known_value() {
        let xs = [1.0, 4.0, 16.0];
        assert!((geomean(&xs) - 4.0).abs() < EPS);
        assert!(geomean(&[1.0, -1.0]).is_nan());
    }

    #[test]
    fn harmonic_known_value() {
        let xs = [1.0, 2.0, 4.0];
        assert!((harmonic_mean(&xs) - 3.0 / 1.75).abs() < EPS);
    }

    #[test]
    fn cov_scale_invariance() {
        let xs = [10.0, 12.0, 14.0];
        let ys: Vec<f64> = xs.iter().map(|x| x * 100.0).collect();
        assert!((cov(&xs) - cov(&ys)).abs() < EPS);
    }

    #[test]
    fn sem_shrinks_with_n() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(sem(&ys) < sem(&xs));
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.0);
    }

    #[test]
    fn summary_is_consistent() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < EPS);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(geomean(&[]).is_nan());
    }
}
