//! Outlier detection: Tukey fences and MAD-based robust z-scores.

use crate::descriptive::median;
use crate::quantile::quantiles;

/// Indices of points outside the Tukey fences `[Q1 − k·IQR, Q3 + k·IQR]`
/// (`k = 1.5` is the classic setting; `k = 3.0` flags only extreme outliers).
pub fn tukey_outliers(xs: &[f64], k: f64) -> Vec<usize> {
    if xs.len() < 4 {
        return Vec::new();
    }
    let qs = quantiles(xs, &[0.25, 0.75]);
    let iqr = qs[1] - qs[0];
    let lo = qs[0] - k * iqr;
    let hi = qs[1] + k * iqr;
    xs.iter()
        .enumerate()
        .filter(|(_, &x)| x < lo || x > hi)
        .map(|(i, _)| i)
        .collect()
}

/// Returns `xs` with Tukey outliers removed (`k` as in [`tukey_outliers`]).
pub fn remove_tukey_outliers(xs: &[f64], k: f64) -> Vec<f64> {
    let bad = tukey_outliers(xs, k);
    xs.iter()
        .enumerate()
        .filter(|(i, _)| !bad.contains(i))
        .map(|(_, &x)| x)
        .collect()
}

/// Median absolute deviation, scaled by 1.4826 to be consistent with the
/// standard deviation under normality.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    1.4826 * median(&devs)
}

/// Robust z-scores `(x − median) / MAD`. Returns an empty vector when the MAD
/// is zero (constant data).
pub fn robust_z_scores(xs: &[f64]) -> Vec<f64> {
    let m = median(xs);
    let s = mad(xs);
    if s.is_nan() || s <= 0.0 {
        return Vec::new();
    }
    xs.iter().map(|x| (x - m) / s).collect()
}

/// Indices where the robust z-score exceeds `threshold` in magnitude
/// (3.5 is the conventional cut-off).
pub fn mad_outliers(xs: &[f64], threshold: f64) -> Vec<usize> {
    robust_z_scores(xs)
        .iter()
        .enumerate()
        .filter(|(_, z)| z.abs() > threshold)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tukey_flags_the_spike() {
        let mut xs: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        xs.push(100.0);
        let out = tukey_outliers(&xs, 1.5);
        assert_eq!(out, vec![30]);
    }

    #[test]
    fn tukey_clean_data_has_no_outliers() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        assert!(tukey_outliers(&xs, 1.5).is_empty());
    }

    #[test]
    fn removal_preserves_order() {
        let xs = vec![1.0, 2.0, 100.0, 3.0, 2.0, 1.0, 2.0, 3.0];
        let clean = remove_tukey_outliers(&xs, 1.5);
        assert_eq!(clean, vec![1.0, 2.0, 3.0, 2.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn mad_of_known_sample() {
        // median=3, abs devs = [2,1,0,1,2] → median dev 1 → MAD = 1.4826
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((mad(&xs) - 1.4826).abs() < 1e-12);
    }

    #[test]
    fn mad_outliers_detects_gc_spike_pattern() {
        // Typical per-iteration times with two GC-pause spikes.
        let mut xs = vec![10.0; 40];
        xs[13] = 25.0;
        xs[29] = 31.0;
        // Add small jitter so MAD is non-degenerate.
        for (i, x) in xs.iter_mut().enumerate() {
            *x += (i % 7) as f64 * 0.01;
        }
        let out = mad_outliers(&xs, 3.5);
        assert!(out.contains(&13) && out.contains(&29), "{out:?}");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn constant_data_yields_no_robust_scores() {
        let xs = vec![5.0; 10];
        assert!(robust_z_scores(&xs).is_empty());
        assert!(mad_outliers(&xs, 3.5).is_empty());
    }
}

/// Replaces isolated timing spikes with the local level, preserving genuine
/// level shifts (warmup steps).
///
/// A point is a *spike* — not a level shift — when the medians of its left
/// and right neighbourhoods agree with each other but not with the point:
/// the series departs and returns. Warmup prefixes and step changes have
/// disagreeing neighbourhoods and are left untouched, as are the first and
/// last few points (a slow first iteration is warmup, not noise).
///
/// This is the outlier handling changepoint-based warmup analysis needs:
/// GC pauses and OS-jitter tails puncture otherwise-flat series and would
/// otherwise fragment the segmentation.
///
/// ```
/// let mut series = vec![10.0; 20];
/// series[9] = 60.0; // a GC pause
/// let cleaned = rigor_stats::despike(&series, 8.0);
/// assert_eq!(cleaned[9], 10.0);
/// ```
pub fn despike(xs: &[f64], k: f64) -> Vec<f64> {
    const WING: usize = 3;
    let n = xs.len();
    let mut out = xs.to_vec();
    if n < 2 * WING + 1 {
        return out;
    }
    for i in WING..(n - WING) {
        let left: Vec<f64> = xs[i - WING..i].to_vec();
        let right: Vec<f64> = xs[i + 1..i + 1 + WING].to_vec();
        let lm = median(&left);
        let rm = median(&right);
        let level = 0.5 * (lm + rm);
        // The two sides must sit at the same level for the excursion to be a
        // spike rather than a step.
        let level_scale = lm.abs().max(rm.abs()).max(1e-300);
        if (lm - rm).abs() > 0.05 * level_scale {
            continue;
        }
        // Local scale: MAD of the neighbours, floored relative to the level
        // so perfectly quiet series still tolerate float dust.
        let mut neigh = left;
        neigh.extend(right);
        let scale = mad(&neigh).max(2e-3 * level.abs()).max(1e-300);
        if (xs[i] - level).abs() > k * scale {
            out[i] = level;
        }
    }
    out
}

#[cfg(test)]
mod despike_tests {
    use super::*;

    fn flat_with(values: &[(usize, f64)], n: usize, level: f64) -> Vec<f64> {
        let mut xs: Vec<f64> = (0..n).map(|i| level + (i % 3) as f64 * 0.01).collect();
        for &(i, v) in values {
            xs[i] = v;
        }
        xs
    }

    #[test]
    fn isolated_spike_is_removed() {
        let xs = flat_with(&[(20, 50.0)], 40, 10.0);
        let out = despike(&xs, 8.0);
        assert!(
            (out[20] - 10.0).abs() < 0.1,
            "spike should be flattened: {}",
            out[20]
        );
        assert_eq!(out[10], xs[10]);
    }

    #[test]
    fn double_spike_is_removed() {
        let xs = flat_with(&[(15, 40.0), (16, 45.0)], 40, 10.0);
        let out = despike(&xs, 8.0);
        assert!((out[15] - 10.0).abs() < 0.2);
        assert!((out[16] - 10.0).abs() < 0.2);
    }

    #[test]
    fn warmup_step_is_preserved() {
        // 10 slow then 30 fast: a genuine level shift.
        let mut xs: Vec<f64> = (0..10).map(|i| 50.0 + (i % 3) as f64 * 0.01).collect();
        xs.extend((0..30).map(|i| 10.0 + (i % 3) as f64 * 0.01));
        let out = despike(&xs, 8.0);
        for (a, b) in xs.iter().zip(&out) {
            assert_eq!(a, b, "step series must be untouched");
        }
    }

    #[test]
    fn leading_compile_hump_is_preserved() {
        // Slow first two iterations (JIT compile) must not be "despiked".
        let mut xs = vec![100.0, 90.0];
        xs.extend((0..30).map(|i| 10.0 + (i % 3) as f64 * 0.01));
        let out = despike(&xs, 8.0);
        assert_eq!(out[0], 100.0);
        assert_eq!(out[1], 90.0);
    }

    #[test]
    fn short_series_untouched() {
        let xs = vec![1.0, 100.0, 1.0];
        assert_eq!(despike(&xs, 8.0), xs);
    }
}
