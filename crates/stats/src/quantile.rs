//! Quantiles (R type-7 / NumPy `linear` interpolation).

/// Returns the `q`-quantile of `xs` (0 ≤ q ≤ 1) using linear interpolation
/// between order statistics (the R type-7 definition, NumPy's default).
///
/// Returns `NaN` for empty input or q outside [0, 1].
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in data"));
    quantile_sorted(&v, q)
}

/// Quantile of an already ascending-sorted slice (no copy).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return f64::NAN;
    }
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Convenience: several quantiles at once (sorts once).
pub fn quantiles(xs: &[f64], qs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in data"));
    qs.iter().map(|&q| quantile_sorted(&v, q)).collect()
}

/// Interquartile range (Q3 − Q1).
pub fn iqr(xs: &[f64]) -> f64 {
    let qs = quantiles(xs, &[0.25, 0.75]);
    qs[1] - qs[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_numpy_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        // numpy.quantile([1,2,3,4], .25) == 1.75
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 3.25).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn invalid_inputs() {
        assert!(quantile(&[], 0.5).is_nan());
        assert!(quantile(&[1.0], -0.1).is_nan());
        assert!(quantile(&[1.0], 1.1).is_nan());
    }

    #[test]
    fn iqr_known_value() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        assert!((iqr(&xs) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let xs: Vec<f64> = (0..50).map(|i| ((i * 37) % 50) as f64).collect();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = quantile(&xs, q);
            assert!(v >= prev, "quantile must be monotone in q");
            prev = v;
        }
    }
}
