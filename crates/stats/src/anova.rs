//! k-sample tests: one-way ANOVA and Kruskal–Wallis.
//!
//! Used when comparing *more than two* configurations (e.g. several JIT
//! thresholds or noise configurations at once): testing every pair with t
//! tests inflates the family-wise error rate; an omnibus test asks "is any
//! configuration different?" first.

use crate::descriptive::{mean, variance};
use crate::dist::{chi2_cdf, f_cdf};
use crate::htest::TestResult;

/// One-way ANOVA over `groups` (unequal sizes allowed).
///
/// Returns `None` when fewer than 2 groups, any group has fewer than 2
/// observations, or the within-group variance is zero.
///
/// ```
/// let t50 = [10.0, 10.2, 9.9];
/// let t500 = [10.1, 10.0, 10.2];
/// let t5000 = [14.0, 14.2, 13.9]; // one threshold clearly differs
/// let result = rigor_stats::one_way_anova(&[&t50, &t500, &t5000]).expect("valid groups");
/// assert!(result.significant_at(0.01));
/// ```
pub fn one_way_anova(groups: &[&[f64]]) -> Option<TestResult> {
    let k = groups.len();
    if k < 2 || groups.iter().any(|g| g.len() < 2) {
        return None;
    }
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    let grand_mean = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n_total as f64;
    let ss_between: f64 = groups
        .iter()
        .map(|g| g.len() as f64 * (mean(g) - grand_mean).powi(2))
        .sum();
    let ss_within: f64 = groups
        .iter()
        .map(|g| (g.len() - 1) as f64 * variance(g))
        .sum();
    let df_between = (k - 1) as f64;
    let df_within = (n_total - k) as f64;
    if ss_within <= 0.0 || df_within <= 0.0 {
        return None;
    }
    let f = (ss_between / df_between) / (ss_within / df_within);
    let p = 1.0 - f_cdf(f, df_between, df_within);
    Some(TestResult {
        statistic: f,
        p_value: p.clamp(0.0, 1.0),
        df: df_between,
    })
}

/// Kruskal–Wallis H test over `groups` (rank-based omnibus test, with tie
/// correction and the chi-square approximation for the p-value).
///
/// Returns `None` for fewer than 2 groups or any empty group.
pub fn kruskal_wallis(groups: &[&[f64]]) -> Option<TestResult> {
    let k = groups.len();
    if k < 2 || groups.iter().any(|g| g.is_empty()) {
        return None;
    }
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    if n_total < 3 {
        return None;
    }
    // Pool and rank with average ranks for ties.
    let mut pooled: Vec<(f64, usize)> = Vec::with_capacity(n_total);
    for (gi, g) in groups.iter().enumerate() {
        for &x in *g {
            pooled.push((x, gi));
        }
    }
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN in data"));
    let mut ranks = vec![0.0; n_total];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n_total {
        let mut j = i;
        while j + 1 < n_total && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let mut rank_sums = vec![0.0; k];
    for (idx, (_, gi)) in pooled.iter().enumerate() {
        rank_sums[*gi] += ranks[idx];
    }
    let nf = n_total as f64;
    let mut h = 0.0;
    for (gi, g) in groups.iter().enumerate() {
        h += rank_sums[gi] * rank_sums[gi] / g.len() as f64;
    }
    h = 12.0 / (nf * (nf + 1.0)) * h - 3.0 * (nf + 1.0);
    // Tie correction.
    let correction = 1.0 - tie_term / (nf * nf * nf - nf);
    if correction <= 0.0 {
        return None; // all values identical
    }
    h /= correction;
    let df = (k - 1) as f64;
    let p = 1.0 - chi2_cdf(h, df);
    Some(TestResult {
        statistic: h,
        p_value: p.clamp(0.0, 1.0),
        df,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anova_hand_computed_f() {
        // Groups with grand mean 3: SSB = 6, SSW = 6, df = (2, 6) → F = 3.0.
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 3.0, 4.0];
        let c = [3.0, 4.0, 5.0];
        let r = one_way_anova(&[&a, &b, &c]).unwrap();
        assert!((r.statistic - 3.0).abs() < 1e-12, "F = {}", r.statistic);
        // F(2,6) 95th percentile is 5.14, so p must be above 0.05…
        assert!(r.p_value > 0.05 && r.p_value < 0.2, "p = {}", r.p_value);
    }

    #[test]
    fn anova_detects_separated_groups() {
        let a = [1.0, 1.1, 0.9, 1.0];
        let b = [5.0, 5.1, 4.9, 5.0];
        let c = [9.0, 9.1, 8.9, 9.0];
        let r = one_way_anova(&[&a, &b, &c]).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn anova_identical_groups_large_p() {
        let g = [1.0, 2.0, 3.0, 4.0];
        let r = one_way_anova(&[&g, &g, &g]).unwrap();
        assert!(r.statistic.abs() < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn anova_degenerate_inputs() {
        assert!(one_way_anova(&[&[1.0, 2.0]]).is_none());
        assert!(one_way_anova(&[&[1.0], &[2.0, 3.0]]).is_none());
        assert!(one_way_anova(&[&[1.0, 1.0], &[1.0, 1.0]]).is_none());
    }

    #[test]
    fn kruskal_detects_shift_robustly() {
        // An extreme outlier in group a must not mask the ordering.
        let a = [1.0, 2.0, 3.0, 4.0, 1000.0];
        let b = [10.0, 11.0, 12.0, 13.0, 14.0];
        let c = [20.0, 21.0, 22.0, 23.0, 24.0];
        let r = kruskal_wallis(&[&a, &b, &c]).unwrap();
        // Hand-computed: rank sums 25/35/60 → H = 6.5, p = exp(-3.25) ≈ 0.039.
        assert!((r.statistic - 6.5).abs() < 1e-9, "H = {}", r.statistic);
        assert!(r.p_value < 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn kruskal_same_distribution_large_p() {
        let a = [1.0, 4.0, 7.0, 10.0, 13.0];
        let b = [2.0, 5.0, 8.0, 11.0, 14.0];
        let c = [3.0, 6.0, 9.0, 12.0, 15.0];
        let r = kruskal_wallis(&[&a, &b, &c]).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn kruskal_handles_ties() {
        let a = [1.0, 1.0, 2.0, 2.0];
        let b = [2.0, 2.0, 3.0, 3.0];
        let r = kruskal_wallis(&[&a, &b]).unwrap();
        assert!(r.statistic.is_finite());
        assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn kruskal_degenerate_inputs() {
        assert!(kruskal_wallis(&[&[1.0, 2.0]]).is_none());
        assert!(kruskal_wallis(&[&[], &[1.0]]).is_none());
        assert!(
            kruskal_wallis(&[&[5.0, 5.0], &[5.0, 5.0]]).is_none(),
            "all-tied data"
        );
    }
}
