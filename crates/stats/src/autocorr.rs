//! Autocorrelation of timing series.
//!
//! Consecutive benchmark iterations are rarely independent: GC cycles, JIT
//! compilation and OS scheduling induce serial correlation. The methodology
//! uses the lag-k autocorrelation to decide whether treating iterations as
//! i.i.d. samples is defensible.

use crate::descriptive::mean;

/// Lag-`k` sample autocorrelation of `xs`. Returns `NaN` when the series is
/// shorter than `k + 2` points or has zero variance.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if n < k + 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return f64::NAN;
    }
    let num: f64 = (0..n - k).map(|i| (xs[i] - m) * (xs[i + k] - m)).sum();
    num / denom
}

/// First `max_lag` autocorrelations (lags 1..=max_lag).
pub fn autocorrelations(xs: &[f64], max_lag: usize) -> Vec<f64> {
    (1..=max_lag).map(|k| autocorrelation(xs, k)).collect()
}

/// The large-lag standard error 1/√n: a lag-k autocorrelation beyond roughly
/// twice this value is significant at ~95%.
pub fn autocorr_significance_bound(n: usize) -> f64 {
    if n == 0 {
        return f64::NAN;
    }
    1.96 / (n as f64).sqrt()
}

/// Effective sample size accounting for lag-1 autocorrelation ρ:
/// `n (1 − ρ) / (1 + ρ)` (AR(1) approximation), clamped to `[1, n]`.
pub fn effective_sample_size(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let rho = autocorrelation(xs, 1);
    if rho.is_nan() {
        return n;
    }
    let rho = rho.clamp(-0.99, 0.99);
    (n * (1.0 - rho) / (1.0 + rho)).clamp(1.0, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_series_has_negative_lag1() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
    }

    #[test]
    fn trend_has_positive_autocorrelation() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(autocorrelation(&xs, 1) > 0.9);
    }

    #[test]
    fn white_noise_is_near_zero() {
        // Deterministic pseudo-noise via a simple LCG.
        let mut state = 12345u64;
        let xs: Vec<f64> = (0..2000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64
            })
            .collect();
        let r = autocorrelation(&xs, 1);
        assert!(
            r.abs() < autocorr_significance_bound(xs.len()) * 1.5,
            "r = {r}"
        );
    }

    #[test]
    fn short_or_constant_series_are_nan() {
        assert!(autocorrelation(&[1.0, 2.0], 1).is_nan());
        assert!(autocorrelation(&[5.0; 10], 1).is_nan());
    }

    #[test]
    fn effective_sample_size_shrinks_under_correlation() {
        let trend: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(effective_sample_size(&trend) < 10.0);
        let alternating: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        // Negative correlation inflates ESS up to the clamp.
        assert!(effective_sample_size(&alternating) >= 99.0);
    }

    #[test]
    fn autocorrelations_vector_lengths() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        let acs = autocorrelations(&xs, 10);
        assert_eq!(acs.len(), 10);
        // Period-5 series: strong positive correlation at lag 5.
        assert!(acs[4] > 0.8);
    }
}
