//! # rigor-stats — statistics for rigorous performance analysis
//!
//! The statistical substrate of the `rigor` workspace, implemented from
//! scratch: descriptive statistics, quantiles, the Student-t / chi-square / F
//! machinery needed for inference (incomplete beta and gamma functions,
//! quantile inversion), nonparametric bootstrap CIs (percentile and BCa),
//! outlier fences and despiking, autocorrelation diagnostics, mean-shift
//! changepoint segmentation (for warmup detection), two-sample tests (Welch
//! t, Mann–Whitney U), k-sample omnibus tests (one-way ANOVA,
//! Kruskal–Wallis) and effect sizes.
//!
//! ## Example: a 95% confidence interval on a mean
//!
//! ```rust
//! use rigor_stats::{mean_ci, bootstrap_mean_ci};
//!
//! let times = [10.2, 10.5, 9.9, 10.1, 10.4, 10.0, 10.3, 10.2];
//! let t_ci = mean_ci(&times, 0.95).expect("enough samples");
//! let b_ci = bootstrap_mean_ci(&times, 0.95, 2000, 42).expect("enough samples");
//! assert!(t_ci.contains(10.2));
//! assert!(b_ci.contains(10.2));
//! ```

#![warn(missing_docs)]

pub mod allocate;
pub mod anova;
pub mod autocorr;
pub mod bootstrap;
pub mod changepoint;
pub mod ci;
pub mod descriptive;
pub mod dist;
pub mod effect;
pub mod fdr;
pub mod htest;
pub mod outlier;
pub mod quantile;

pub use allocate::{
    clamped_allocation, invocations_for_target, neyman_allocation, predicted_rel_half_width,
};
pub use anova::{kruskal_wallis, one_way_anova};
pub use autocorr::{autocorrelation, autocorrelations, effective_sample_size};
pub use bootstrap::{
    bootstrap_bca_ci, bootstrap_ci, bootstrap_mean_ci, bootstrap_ratio_ci, DEFAULT_RESAMPLES,
};
pub use changepoint::{
    merge_equivalent, segment, select_penalty_factor, Segment, SegmentConfig, PENALTY_GRID,
};
pub use ci::{mean_ci, ratio_ci_delta, welch_diff_ci, ConfidenceInterval};
pub use descriptive::{cov, geomean, harmonic_mean, mean, median, sem, std_dev, variance, Summary};
pub use dist::{chi2_cdf, f_cdf, normal_cdf, normal_quantile, t_cdf, t_critical, t_quantile};
pub use effect::{classify_cohens_d, cliffs_delta, cohens_d, EffectMagnitude};
pub use fdr::{benjamini_hochberg, bh_adjusted, holm_adjusted, holm_bonferroni};
pub use htest::{mann_whitney_u, welch_t_test, TestResult};
pub use outlier::{despike, mad, mad_outliers, remove_tukey_outliers, tukey_outliers};
pub use quantile::{iqr, quantile, quantiles};
