//! Probability distributions: standard normal and Student's t.
//!
//! Implemented from scratch (no external special-function crates):
//! the normal CDF via an erf approximation, its inverse via Acklam's
//! rational approximation, and the t CDF via the regularized incomplete
//! beta function (Lentz continued fraction). Quantiles of t are found by
//! a bisection/Newton hybrid on the CDF.

/// Error function, |ε| < 1.5e-7 (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal PDF φ(x).
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF (Acklam's algorithm, |ε| ≈ 1e-9).
///
/// Returns `NaN` outside (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        return f64::NAN;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step for extra accuracy.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// ln Γ(x) via the Lanczos approximation.
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_5e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized incomplete beta function I_x(a, b) (continued fraction,
/// Numerical Recipes style).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized lower incomplete gamma P(a, x) (series for x < a+1,
/// continued fraction otherwise; Numerical Recipes style).
pub fn gamma_inc_lower(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 3e-14 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x); P = 1 - Q.
        const FPMIN: f64 = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / FPMIN;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < FPMIN {
                d = FPMIN;
            }
            c = b + an / c;
            if c.abs() < FPMIN {
                c = FPMIN;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 3e-14 {
                break;
            }
        }
        1.0 - h * (-x + a * x.ln() - ln_gamma(a)).exp()
    }
}

/// Chi-square CDF with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    gamma_inc_lower(df / 2.0, x / 2.0).clamp(0.0, 1.0)
}

/// F-distribution CDF with `d1`/`d2` degrees of freedom.
pub fn f_cdf(x: f64, d1: f64, d2: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    beta_inc(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2)).clamp(0.0, 1.0)
}

/// Student's t CDF with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    if df <= 0.0 {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided tail probability P(|T| > |t|) for Student's t.
pub fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    beta_inc(df / 2.0, 0.5, x)
}

/// Student's t quantile (inverse CDF) with `df` degrees of freedom.
///
/// Found by bisection on [`t_cdf`], seeded by the normal quantile; accurate
/// to ~1e-10.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) || df <= 0.0 {
        return f64::NAN;
    }
    if p == 0.5 {
        return 0.0;
    }
    // Symmetric: solve in the upper half and mirror.
    if p < 0.5 {
        return -t_quantile(1.0 - p, df);
    }
    let mut lo = 0.0;
    let mut hi = normal_quantile(p).max(1.0) * (1.0 + 30.0 / df) + 5.0;
    while t_cdf(hi, df) < p {
        hi *= 2.0;
        if hi > 1e12 {
            return f64::INFINITY;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// The two-sided critical t value for confidence level `conf` (e.g. 0.95)
/// with `df` degrees of freedom.
pub fn t_critical(conf: f64, df: f64) -> f64 {
    t_quantile(1.0 - (1.0 - conf) / 2.0, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975_002_1).abs() < 1e-5);
        assert!((normal_cdf(-1.96) - 0.024_997_9).abs() < 1e-5);
        assert!((normal_cdf(3.0) - 0.998_650_1).abs() < 1e-5);
    }

    #[test]
    fn normal_quantile_round_trips() {
        for &p in &[0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-7, "p={p}");
        }
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        // Γ(0.5) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_matches_tables() {
        // t = 2.228, df = 10 → CDF = 0.975 (classic table value)
        assert!((t_cdf(2.228, 10.0) - 0.975).abs() < 1e-4);
        // df → ∞ approaches the normal distribution.
        assert!((t_cdf(1.96, 100_000.0) - normal_cdf(1.96)).abs() < 1e-4);
        assert!((t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn t_quantile_matches_tables() {
        // Classic two-sided 95% critical values.
        assert!((t_critical(0.95, 4.0) - 2.776).abs() < 1e-3);
        assert!((t_critical(0.95, 9.0) - 2.262).abs() < 1e-3);
        assert!((t_critical(0.95, 19.0) - 2.093).abs() < 1e-3);
        assert!((t_critical(0.99, 9.0) - 3.250).abs() < 1e-3);
        // Large df → z.
        assert!((t_critical(0.95, 1e6) - 1.96).abs() < 1e-2);
    }

    #[test]
    fn t_quantile_round_trips() {
        for &df in &[3.0, 10.0, 30.0] {
            for &p in &[0.6, 0.9, 0.975, 0.995] {
                let t = t_quantile(p, df);
                assert!((t_cdf(t, df) - p).abs() < 1e-8, "p={p} df={df}");
            }
        }
    }

    #[test]
    fn t_symmetry() {
        let df = 7.0;
        assert!((t_quantile(0.25, df) + t_quantile(0.75, df)).abs() < 1e-9);
    }

    #[test]
    fn beta_inc_bounds() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform distribution).
        assert!((beta_inc(1.0, 1.0, 0.3) - 0.3).abs() < 1e-10);
    }

    #[test]
    fn chi2_cdf_table_values() {
        // Classic 95th percentiles: chi2(1)=3.841, chi2(2)=5.991, chi2(5)=11.07.
        assert!((chi2_cdf(3.841, 1.0) - 0.95).abs() < 1e-3);
        assert!((chi2_cdf(5.991, 2.0) - 0.95).abs() < 1e-3);
        assert!((chi2_cdf(11.07, 5.0) - 0.95).abs() < 1e-3);
        assert_eq!(chi2_cdf(-1.0, 2.0), 0.0);
    }

    #[test]
    fn f_cdf_table_values() {
        // 95th percentiles: F(2,6)=5.143, F(3,10)=3.708.
        assert!((f_cdf(5.143, 2.0, 6.0) - 0.95).abs() < 1e-3);
        assert!((f_cdf(3.708, 3.0, 10.0) - 0.95).abs() < 1e-3);
    }

    #[test]
    fn gamma_inc_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 1..40 {
            let p = gamma_inc_lower(3.0, i as f64 * 0.5);
            assert!(p >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        assert!((gamma_inc_lower(3.0, 100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_sided_tail() {
        // P(|T| > 2.228) with df=10 is 0.05.
        assert!((t_sf_two_sided(2.228, 10.0) - 0.05).abs() < 2e-4);
    }
}
