//! Suite-level precision planning: invocation-budget allocation across a
//! campaign's cells.
//!
//! Where [`crate::sequential`] grows one benchmark's sample until its CI is
//! tight enough, the planner does the same for a whole grid at once, under
//! one global budget: a **pilot** round measures every cell at
//! `min_invocations`, each cell's steady-state noise is estimated
//! ([`crate::variance::decompose`] feeds the σ the allocator weighs), and
//! every subsequent round grants more invocations where the predicted CI is
//! still too wide — Neyman-proportional when the budget binds, need-based
//! when it does not — until every cell meets its target relative half-width
//! or nothing more can be granted.
//!
//! Everything here is **deterministic**: a plan is a pure function of the
//! cell estimates and the planner config. Estimates come from deterministic
//! measurements (invocation seeds are pure functions of the experiment
//! seed), integer apportionment breaks ties by cell index
//! (`rigor_stats::allocate`), and task ordering is total (widest CI first,
//! then index). A killed-and-resumed adaptive campaign therefore replays
//! the same per-cell refinement trajectory; see
//! [`crate::orchestrator::Campaign`] for the re-planning loop itself.

use rigor_stats::allocate::{clamped_allocation, invocations_for_target, predicted_rel_half_width};
use serde::{Deserialize, Serialize};

use crate::measurement::BenchmarkMeasurement;
use crate::sequential::{precision_of, MAX_DROP_FRAC};
use crate::steady::{common_steady_start, per_invocation_steady_means, SteadyStateDetector};
use crate::variance::decompose;

/// Precision goal and budget for an adaptive campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Target relative CI half-width per cell (0.02 = ±2%).
    pub target_rel_half_width: f64,
    /// Global invocation budget across the whole grid (counted as the sum
    /// of every cell's final sample size); `None` = unbounded.
    pub budget: Option<u64>,
    /// Pilot sample size — the floor no cell goes below.
    pub min_invocations: u32,
    /// Per-cell ceiling — the refinement cap for hopelessly noisy cells.
    pub max_invocations: u32,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        // Mirrors `SequentialPlan`: same target, floor and ceiling.
        PlannerConfig {
            target_rel_half_width: 0.02,
            budget: None,
            min_invocations: 5,
            max_invocations: 60,
        }
    }
}

impl PlannerConfig {
    /// Sets the precision target (builder style).
    pub fn with_target(mut self, target_rel_half_width: f64) -> PlannerConfig {
        self.target_rel_half_width = target_rel_half_width;
        self
    }

    /// Sets the global invocation budget (builder style).
    pub fn with_budget(mut self, budget: u64) -> PlannerConfig {
        self.budget = Some(budget);
        self
    }

    /// Sets the pilot floor (builder style).
    pub fn with_min_invocations(mut self, min_invocations: u32) -> PlannerConfig {
        self.min_invocations = min_invocations;
        self
    }

    /// Sets the per-cell ceiling (builder style).
    pub fn with_max_invocations(mut self, max_invocations: u32) -> PlannerConfig {
        self.max_invocations = max_invocations;
        self
    }

    /// The pilot sample size actually used: at least 2, or no CI could
    /// ever be computed.
    pub fn pilot(&self) -> u32 {
        self.min_invocations.max(2)
    }

    /// Checks the config is usable.
    ///
    /// # Errors
    ///
    /// A human-readable message for a target outside (0, 1), a ceiling
    /// below the floor, or a budget that cannot cover even one pilot.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.target_rel_half_width > 0.0 && self.target_rel_half_width < 1.0) {
            return Err(format!(
                "precision target must be in (0, 1), got {}",
                self.target_rel_half_width
            ));
        }
        if self.max_invocations < self.min_invocations {
            return Err(format!(
                "max invocations ({}) below min invocations ({})",
                self.max_invocations, self.min_invocations
            ));
        }
        if let Some(budget) = self.budget {
            if budget < u64::from(self.pilot()) {
                return Err(format!(
                    "budget ({budget}) cannot cover even one pilot of {} invocations",
                    self.pilot()
                ));
            }
        }
        Ok(())
    }

    /// The canonical one-line rendering hashed into a campaign fingerprint:
    /// two adaptive campaigns with different goals are different campaigns.
    pub fn describe(&self) -> String {
        format!(
            "target={};budget={};min={};max={}",
            self.target_rel_half_width,
            self.budget.map_or("none".to_string(), |b| b.to_string()),
            self.min_invocations,
            self.max_invocations,
        )
    }
}

/// What the planner knows about one cell after measuring it at some size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellEstimate {
    /// The cell's grid index.
    pub index: usize,
    /// Invocations in the measurement behind this estimate.
    pub invocations: u32,
    /// Steady-state mean estimate (0 when none is computable).
    pub mean: f64,
    /// Standard deviation of the per-invocation steady means — the σ the
    /// allocator weighs (√`between_var` of the variance decomposition).
    pub sigma: f64,
    /// Relative CI half-width at this size; `None` when no CI is
    /// computable (too few converged invocations).
    pub rel_half_width: Option<f64>,
}

impl CellEstimate {
    /// Distills a measurement into the planner's per-cell state.
    ///
    /// The CI comes from [`precision_of`] (per-invocation steady windows,
    /// bounded drop rate); σ comes from [`decompose`] over the common
    /// steady window, falling back to the spread of per-invocation steady
    /// means when the decomposition is unavailable.
    pub fn from_measurement(
        index: usize,
        m: &BenchmarkMeasurement,
        detector: &SteadyStateDetector,
        confidence: f64,
    ) -> CellEstimate {
        let (ci, rel) = precision_of(m, detector, confidence);
        let mean = ci.as_ref().map_or(0.0, |ci| ci.estimate);
        let steady_start =
            common_steady_start(m.invocations.iter().map(|r| &r.iteration_ns[..]), detector);
        let sigma = steady_start
            .and_then(|start| decompose(m, start))
            .map(|d| d.between_var.sqrt())
            .or_else(|| {
                let means = per_invocation_steady_means(m, detector, MAX_DROP_FRAC)?;
                Some(rigor_stats::descriptive::variance(&means).sqrt())
            })
            .filter(|s| s.is_finite())
            .unwrap_or(0.0);
        CellEstimate {
            index,
            invocations: m.n_invocations() as u32,
            mean,
            sigma,
            rel_half_width: rel,
        }
    }

    /// True when the cell's CI is known and within `target`.
    pub fn target_met(&self, target: f64) -> bool {
        self.rel_half_width.is_some_and(|rel| rel <= target)
    }

    /// The final sample size this cell is predicted to need for `target`,
    /// clamped to the planner's ceiling. A cell without a CI asks to double
    /// (more data is the only way to get an estimate).
    fn needed(&self, cfg: &PlannerConfig) -> u32 {
        let ceiling = u64::from(cfg.max_invocations);
        let n = u64::from(self.invocations);
        let needed = match self.rel_half_width {
            Some(rel) => invocations_for_target(n, rel, cfg.target_rel_half_width),
            None => n.saturating_mul(2),
        };
        needed.clamp(n, ceiling) as u32
    }
}

/// One unit of refinement work: re-measure a cell at a larger sample size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefineTask {
    /// The cell's grid index.
    pub index: usize,
    /// The sample size to measure the cell at (its new total, not a delta —
    /// invocation seeds are pure functions of the experiment seed, so
    /// re-measuring at n equals extending to n).
    pub invocations: u32,
    /// The cell's current relative half-width (∞ when no CI yet) — the
    /// priority key: widest first.
    pub current_rel: f64,
    /// The predicted relative half-width after this refinement.
    pub predicted_rel: f64,
}

/// One round's allocation decision over the still-unmet cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Which re-planning round this is (the pilot is round 0).
    pub round: u32,
    /// Refinement tasks, widest current CI first (index breaks ties) — the
    /// priority order the orchestrator drains.
    pub tasks: Vec<RefineTask>,
    /// Invocations already committed across the grid (every cell's current
    /// size, archived cells included).
    pub spent: u64,
    /// Additional invocations granted by this plan.
    pub planned: u64,
    /// Budget left after `spent` (`None` = unbounded).
    pub budget_remaining: Option<u64>,
    /// Cells whose estimate is not yet at target (whether or not they
    /// received a task).
    pub unmet: usize,
    /// True when unmet cells remain but nothing more can be granted —
    /// budget exhausted or every unmet cell at its ceiling.
    pub exhausted: bool,
}

/// Computes one round's allocation from the live cell estimates.
///
/// `spent_elsewhere` counts invocations committed outside `estimates`
/// (cells already archived at their final size). Two regimes:
///
/// * **need-based** — when the remaining budget covers every cell's
///   predicted need, each cell gets exactly what it asks for. Grants are
///   then independent across cells, which is what makes a resumed
///   campaign's per-cell trajectory identical to an uninterrupted one.
/// * **Neyman squeeze** — when the budget binds, the remaining invocations
///   are split σ-proportionally across unmet cells
///   ([`clamped_allocation`]), capped at each cell's own need.
pub fn compute_plan(
    estimates: &[CellEstimate],
    spent_elsewhere: u64,
    cfg: &PlannerConfig,
    round: u32,
) -> Plan {
    let spent = spent_elsewhere
        + estimates
            .iter()
            .map(|e| u64::from(e.invocations))
            .sum::<u64>();
    let budget_remaining = cfg.budget.map(|b| b.saturating_sub(spent));

    // Growable cells: unmet and below the ceiling.
    let target = cfg.target_rel_half_width;
    let growable: Vec<&CellEstimate> = estimates
        .iter()
        .filter(|e| !e.target_met(target) && e.invocations < cfg.max_invocations)
        .collect();
    let needs: Vec<u64> = growable
        .iter()
        .map(|e| u64::from(e.needed(cfg)) - u64::from(e.invocations))
        .collect();
    let total_need: u64 = needs.iter().sum();

    let grants: Vec<u64> = match budget_remaining {
        Some(remaining) if remaining < total_need => {
            // The budget binds: σ-proportional shares, capped at each
            // cell's own need (floor 0 — the pilot already ran).
            let sigmas: Vec<f64> = growable.iter().map(|e| e.sigma).collect();
            clamped_allocation(&sigmas, remaining, 0, &needs)
        }
        _ => needs.clone(),
    };

    let mut tasks: Vec<RefineTask> = growable
        .iter()
        .zip(&grants)
        .filter(|(_, &grant)| grant > 0)
        .map(|(e, &grant)| {
            let n_new = u64::from(e.invocations) + grant;
            let current = e.rel_half_width.unwrap_or(f64::INFINITY);
            RefineTask {
                index: e.index,
                invocations: n_new as u32,
                current_rel: current,
                predicted_rel: match e.rel_half_width {
                    Some(rel) => predicted_rel_half_width(rel, u64::from(e.invocations), n_new),
                    None => f64::INFINITY,
                },
            }
        })
        .collect();
    // Priority: shrink the widest CI first; the grid index is the
    // deterministic tie-break (total order → seed-reproducible schedule).
    tasks.sort_by(|a, b| {
        b.current_rel
            .total_cmp(&a.current_rel)
            .then(a.index.cmp(&b.index))
    });

    let unmet = estimates.iter().filter(|e| !e.target_met(target)).count();
    let planned: u64 = tasks
        .iter()
        .map(|t| {
            let before = growable
                .iter()
                .find(|e| e.index == t.index)
                .map_or(0, |e| u64::from(e.invocations));
            u64::from(t.invocations) - before
        })
        .sum();
    Plan {
        round,
        exhausted: unmet > 0 && tasks.is_empty(),
        tasks,
        spent,
        planned,
        budget_remaining,
        unmet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(index: usize, invocations: u32, sigma: f64, rel: Option<f64>) -> CellEstimate {
        CellEstimate {
            index,
            invocations,
            mean: 100.0,
            sigma,
            rel_half_width: rel,
        }
    }

    fn cfg() -> PlannerConfig {
        PlannerConfig::default()
            .with_target(0.02)
            .with_min_invocations(5)
            .with_max_invocations(60)
    }

    #[test]
    fn config_validation() {
        assert!(cfg().validate().is_ok());
        assert!(cfg().with_target(0.0).validate().is_err());
        assert!(cfg().with_target(1.0).validate().is_err());
        assert!(cfg().with_max_invocations(3).validate().is_err());
        assert!(cfg().with_budget(3).validate().is_err());
        assert!(cfg().with_budget(5).validate().is_ok());
        assert_eq!(cfg().with_min_invocations(1).pilot(), 2);
    }

    #[test]
    fn met_cells_get_no_tasks() {
        let estimates = vec![est(0, 5, 1.0, Some(0.01)), est(1, 5, 1.0, Some(0.015))];
        let plan = compute_plan(&estimates, 0, &cfg(), 1);
        assert!(plan.tasks.is_empty());
        assert_eq!(plan.unmet, 0);
        assert!(!plan.exhausted);
        assert_eq!(plan.spent, 10);
    }

    #[test]
    fn need_based_grants_when_budget_allows() {
        // 4% at n=5 → needs 20 total; 8% at n=5 → needs 80, clamped to 60.
        let estimates = vec![est(0, 5, 1.0, Some(0.04)), est(1, 5, 4.0, Some(0.08))];
        let plan = compute_plan(&estimates, 0, &cfg(), 1);
        assert_eq!(plan.tasks.len(), 2);
        // Widest CI first.
        assert_eq!(plan.tasks[0].index, 1);
        assert_eq!(plan.tasks[0].invocations, 60, "clamped at ceiling");
        assert_eq!(plan.tasks[1].invocations, 20);
        assert_eq!(plan.planned, 55 + 15);
        assert!(plan.tasks[1].predicted_rel <= 0.02 + 1e-12);
    }

    #[test]
    fn binding_budget_squeezes_sigma_proportionally() {
        // Both need 15 more, but only 9 remain (spent 10 of 19): the
        // σ-ratio 2:1 splits the 9 as 6:3.
        let estimates = vec![est(0, 5, 2.0, Some(0.04)), est(1, 5, 1.0, Some(0.04))];
        let plan = compute_plan(&estimates, 0, &cfg().with_budget(19), 1);
        assert_eq!(plan.budget_remaining, Some(9));
        assert_eq!(plan.planned, 9);
        let grants: Vec<(usize, u32)> = plan
            .tasks
            .iter()
            .map(|t| (t.index, t.invocations))
            .collect();
        assert!(grants.contains(&(0, 11)), "{grants:?}");
        assert!(grants.contains(&(1, 8)), "{grants:?}");
    }

    #[test]
    fn exhausted_budget_yields_no_tasks() {
        let estimates = vec![est(0, 10, 1.0, Some(0.04))];
        let plan = compute_plan(&estimates, 0, &cfg().with_budget(10), 2);
        assert!(plan.tasks.is_empty());
        assert_eq!(plan.unmet, 1);
        assert!(plan.exhausted);
        assert_eq!(plan.budget_remaining, Some(0));
    }

    #[test]
    fn ceiling_cells_count_unmet_but_get_nothing() {
        let estimates = vec![est(0, 60, 1.0, Some(0.04))];
        let plan = compute_plan(&estimates, 0, &cfg(), 3);
        assert!(plan.tasks.is_empty());
        assert_eq!(plan.unmet, 1);
        assert!(plan.exhausted);
    }

    #[test]
    fn no_ci_cells_double_and_lead_the_queue() {
        let estimates = vec![est(0, 5, 0.0, None), est(1, 5, 1.0, Some(0.04))];
        let plan = compute_plan(&estimates, 0, &cfg(), 1);
        assert_eq!(plan.tasks[0].index, 0, "no-CI cell is widest");
        assert_eq!(plan.tasks[0].invocations, 10, "doubles to earn a CI");
        assert!(plan.tasks[0].predicted_rel.is_infinite());
    }

    #[test]
    fn plans_are_deterministic_and_tie_break_by_index() {
        let estimates = vec![
            est(2, 5, 1.0, Some(0.04)),
            est(0, 5, 1.0, Some(0.04)),
            est(1, 5, 1.0, Some(0.04)),
        ];
        let a = compute_plan(&estimates, 0, &cfg().with_budget(21), 1);
        let b = compute_plan(&estimates, 0, &cfg().with_budget(21), 1);
        assert_eq!(a, b);
        let order: Vec<usize> = a.tasks.iter().map(|t| t.index).collect();
        assert_eq!(order, vec![0, 1, 2], "equal widths fall back to index");
    }

    #[test]
    fn spent_elsewhere_counts_against_the_budget() {
        let estimates = vec![est(0, 5, 1.0, Some(0.04))];
        // 40 already archived elsewhere + 5 live = 45 of 50: 5 remain,
        // need is 15 → squeezed to 5.
        let plan = compute_plan(&estimates, 40, &cfg().with_budget(50), 1);
        assert_eq!(plan.spent, 45);
        assert_eq!(plan.budget_remaining, Some(5));
        assert_eq!(plan.tasks.len(), 1);
        assert_eq!(plan.tasks[0].invocations, 10);
    }
}
