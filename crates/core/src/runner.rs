//! The experiment runner: drives VM invocations, collects measurements and
//! emits structured telemetry.
//!
//! [`Runner`] is the primary API:
//!
//! ```rust
//! use std::sync::Arc;
//! use rigor::{CollectingObserver, ExperimentConfig, Runner};
//! use rigor_workloads::{find, Size};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sieve = find("sieve").expect("in the suite");
//! let observer = Arc::new(CollectingObserver::new());
//! let m = Runner::new(ExperimentConfig::interp().with_invocations(2).with_iterations(3))?
//!     .observer(observer.clone())
//!     .measure(&sieve)?;
//! assert_eq!(m.n_invocations(), 2);
//! assert_eq!(observer.len(), 2 + 2 * 2 + 2 * 3);
//! # Ok(())
//! # }
//! ```
//!
//! `Runner::measure` is the cell-execution primitive of the campaign
//! orchestrator (`rigor::campaign`): it makes no top-of-stack assumptions,
//! so any number of runners can execute concurrently on library threads.
//!
//! # Fault tolerance
//!
//! Invocations that fail at runtime (panic, budget exhaustion, VM error)
//! are retried up to `max_retries` times with fresh derived seeds; an
//! invocation whose every attempt fails is *censored* — recorded in
//! [`BenchmarkMeasurement::censored`] with its error taxonomy — instead of
//! aborting the experiment. Only compile-class errors (the workload source
//! itself is broken, so no retry can help) still fail the whole
//! measurement. When the censored fraction exceeds
//! `quarantine_threshold`, the measurement is flagged quarantined.
//! Completed invocations can be streamed to a checkpoint journal
//! ([`Runner::journal`]) and replayed with [`Runner::resume`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};

use minipy::{invocation_seed, CompiledProgram, MpError, MpResult, RuntimeErrorKind, Session};
use rigor_workloads::Workload;

use crate::checkpoint::{Journal, JournalMeta, JournalWriter};
use crate::config::{ConfigError, ExperimentConfig};
use crate::fault::{FaultPlan, InjectedFault};
use crate::measurement::{BenchmarkMeasurement, CensoredInvocation, FailureKind, InvocationRecord};
use crate::telemetry::{ExperimentEvent, ExperimentObserver};

/// A cloneable event outlet handed to worker threads; a no-op when the
/// runner has no observers, so telemetry costs nothing unless asked for.
#[derive(Clone)]
struct EventSink(Option<Sender<ExperimentEvent>>);

impl EventSink {
    fn send(&self, event: ExperimentEvent) {
        if let Some(tx) = &self.0 {
            // The drain finishes only when every sender is dropped; a send
            // cannot fail while the experiment runs, but measurement must
            // proceed regardless either way.
            let _ = tx.send(event);
        }
    }
}

/// The seed for one attempt of one invocation. Attempt 0 is the canonical
/// per-invocation seed (identical to pre-retry behavior, so existing
/// experiments replay bit-for-bit); retries fold the attempt number into
/// the derivation so every attempt samples fresh nondeterminism.
fn attempt_seed(experiment_seed: u64, benchmark: &str, invocation: u32, attempt: u32) -> u64 {
    if attempt == 0 {
        invocation_seed(experiment_seed, benchmark, invocation)
    } else {
        invocation_seed(
            experiment_seed,
            &format!("{benchmark}#retry{attempt}"),
            invocation,
        )
    }
}

/// Runs one invocation attempt: fresh session from the frozen program,
/// setup, `iterations` timed runs, with an optional injected fault.
fn run_invocation(
    program: &CompiledProgram,
    benchmark: &str,
    invocation: u32,
    attempt: u32,
    config: &ExperimentConfig,
    sink: &EventSink,
    fault: InjectedFault,
) -> MpResult<InvocationRecord> {
    let seed = attempt_seed(config.experiment_seed, benchmark, invocation, attempt);
    sink.send(ExperimentEvent::InvocationStarted {
        benchmark: benchmark.to_string(),
        invocation,
        seed,
    });
    if fault == InjectedFault::Panic {
        panic!("injected fault: panic (invocation {invocation}, attempt {attempt})");
    }
    let mut vm_config = config.vm_config();
    if fault == InjectedFault::Timeout {
        // Trip the *real* deadline machinery rather than synthesizing an
        // error, so injection exercises the same path a divergent workload
        // takes.
        vm_config.time_budget_ns = Some(1.0);
    }
    let mut session = Session::start_from(program, seed, vm_config)?;
    if let InjectedFault::Slow { stall_ns } = fault {
        session.vm_mut().inject_stall(stall_ns);
    }
    let startup_ns = session.startup_ns();
    let before = session.vm().counters();
    let mut iteration_ns = Vec::with_capacity(config.iterations as usize);
    let mut iteration_counters = Vec::with_capacity(config.iterations as usize);
    let mut checksum = String::new();
    for i in 0..config.iterations {
        let r = session.run_iteration()?;
        let counters = r.vm_deltas().into();
        iteration_ns.push(r.virtual_ns);
        iteration_counters.push(counters);
        if i == 0 {
            checksum = session.render(r.value);
        }
        sink.send(ExperimentEvent::IterationFinished {
            benchmark: benchmark.to_string(),
            invocation,
            iteration: i,
            virtual_ns: r.virtual_ns,
            counters,
        });
    }
    let delta = session.vm().counters().delta_since(&before);
    Ok(InvocationRecord {
        invocation,
        seed,
        startup_ns,
        iteration_ns,
        gc_cycles: delta.gc_cycles,
        jit_compiles: delta.jit_compiles,
        deopts: delta.deopts,
        checksum,
        iteration_counters: Some(iteration_counters),
        attempts: attempt + 1,
    })
}

/// Runs `run_invocation`, converting a panic in the VM into a classified
/// internal error so one broken invocation cannot abort the whole process.
#[allow(clippy::too_many_arguments)]
fn run_invocation_guarded(
    program: &CompiledProgram,
    benchmark: &str,
    invocation: u32,
    attempt: u32,
    config: &ExperimentConfig,
    sink: &EventSink,
    fault: InjectedFault,
) -> MpResult<InvocationRecord> {
    catch_unwind(AssertUnwindSafe(|| {
        run_invocation(program, benchmark, invocation, attempt, config, sink, fault)
    }))
    .unwrap_or_else(|payload| {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            s.to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "unknown panic payload".to_string()
        };
        Err(MpError::runtime(
            RuntimeErrorKind::Internal,
            format!("invocation {invocation} panicked: {msg}"),
        ))
    })
}

/// Outcome of one invocation slot after retries.
enum Outcome {
    /// A measurement was produced (possibly after retries).
    Measured(InvocationRecord),
    /// Every attempt failed at runtime; the slot is censored.
    Censored(CensoredInvocation),
    /// A compile-class error: retrying cannot help, the experiment fails.
    Fatal(MpError),
}

/// Drives one invocation through the retry loop.
fn run_with_retries(
    program: &CompiledProgram,
    benchmark: &str,
    invocation: u32,
    config: &ExperimentConfig,
    sink: &EventSink,
    faults: Option<&FaultPlan>,
) -> Outcome {
    let attempts_allowed = config.max_retries.saturating_add(1);
    let mut attempt = 0;
    loop {
        let fault = faults
            .map(|p| p.decide(benchmark, invocation, attempt))
            .unwrap_or(InjectedFault::None);
        let result =
            run_invocation_guarded(program, benchmark, invocation, attempt, config, sink, fault);
        sink.send(ExperimentEvent::InvocationFinished {
            benchmark: benchmark.to_string(),
            invocation,
            startup_ns: result.as_ref().map(|r| r.startup_ns).unwrap_or(0.0),
            iterations: result
                .as_ref()
                .map(|r| r.iteration_ns.len() as u32)
                .unwrap_or(0),
            error: result.as_ref().err().map(|e| e.to_string()),
        });
        let err = match result {
            Ok(record) => return Outcome::Measured(record),
            Err(e) => e,
        };
        if err.runtime_kind().is_none() {
            // Lex/parse/compile errors: the source is broken for every
            // invocation; fail fast instead of retrying noise.
            return Outcome::Fatal(err);
        }
        let kind = FailureKind::classify(&err);
        if kind.is_budget_exhaustion() {
            sink.send(ExperimentEvent::InvocationTimedOut {
                benchmark: benchmark.to_string(),
                invocation,
                attempt,
                kind: kind.name().to_string(),
            });
        }
        attempt += 1;
        if attempt < attempts_allowed {
            sink.send(ExperimentEvent::InvocationRetried {
                benchmark: benchmark.to_string(),
                invocation,
                attempt,
                error: err.to_string(),
            });
        } else {
            return Outcome::Censored(CensoredInvocation {
                invocation,
                attempts: attempt,
                failure: kind,
                error: err.to_string(),
            });
        }
    }
}

/// Drives one experiment: `config.invocations` fresh sessions in parallel,
/// each timed for `config.iterations` iterations, with telemetry delivered
/// to any number of attached [`ExperimentObserver`]s.
///
/// Observers receive events via a channel drained on a dedicated thread, so
/// a slow observer never serializes the parallel invocations. A panicking
/// observer is caught, disabled for the rest of the experiment, and
/// reported once to stderr — it cannot kill the drain or the measurement.
pub struct Runner {
    config: ExperimentConfig,
    observers: Vec<Arc<dyn ExperimentObserver>>,
    fault_plan: Option<FaultPlan>,
    journal_path: Option<PathBuf>,
    resume_from: Option<Journal>,
}

// Manual: observers are opaque trait objects.
impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("config", &self.config)
            .field("observers", &self.observers.len())
            .field("journal_path", &self.journal_path)
            .finish_non_exhaustive()
    }
}

impl Runner {
    /// A runner with no observers.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the config violates a structural invariant
    /// (zero invocations/iterations/threads, confidence outside (0, 1),
    /// quarantine threshold outside [0, 1]) — caught here, before any VM
    /// runs.
    pub fn new(config: ExperimentConfig) -> Result<Runner, ConfigError> {
        config.validate()?;
        Ok(Runner {
            config,
            observers: Vec::new(),
            fault_plan: None,
            journal_path: None,
            resume_from: None,
        })
    }

    /// Attaches an observer (builder style); call repeatedly to fan out.
    pub fn observer(mut self, observer: Arc<dyn ExperimentObserver>) -> Runner {
        self.observers.push(observer);
        self
    }

    /// Injects faults from a deterministic plan (builder style) — used by
    /// tests and the CLI `self-test` to exercise the fault-tolerance paths.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Runner {
        self.fault_plan = Some(plan);
        self
    }

    /// Streams completed invocations to a checkpoint journal at `path`
    /// (builder style). The file is created fresh; when combined with
    /// [`Runner::resume`], replayed outcomes are re-journaled too, so the
    /// file always ends up complete.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Runner {
        self.journal_path = Some(path.into());
        self
    }

    /// Replays a loaded checkpoint journal (builder style): journaled
    /// invocations are taken as-is and only the missing ones run.
    pub fn resume(mut self, journal: Journal) -> Runner {
        self.resume_from = Some(journal);
        self
    }

    /// The runner's configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Measures a suite workload at the configured size preset.
    ///
    /// # Errors
    ///
    /// As [`Runner::measure_source`].
    pub fn measure(&self, workload: &Workload) -> MpResult<BenchmarkMeasurement> {
        self.measure_source(&workload.source(self.config.size), workload.name)
    }

    /// Measures a workload source: `invocations` fresh sessions (in
    /// parallel — they model independent OS processes), each timed for
    /// `iterations` iterations.
    ///
    /// # Errors
    ///
    /// Compile-class errors in the source (fail fast — no retry can fix a
    /// parse error), a resume journal that does not match this experiment,
    /// or a journal file that cannot be created. Runtime failures —
    /// panics, budget exhaustion, VM errors — do **not** error: they are
    /// retried and ultimately censored into the returned measurement.
    pub fn measure_source(&self, source: &str, benchmark: &str) -> MpResult<BenchmarkMeasurement> {
        let config = &self.config;
        let n = config.invocations as usize;
        let threads = config.threads.clamp(1, n.max(1));

        // Parse once, evaluate many: the workload is compiled a single time
        // and every invocation (and retry) instantiates a cheap VM over the
        // frozen program. Compile-class errors surface here — fail fast, a
        // retry cannot fix a parse error.
        let program = CompiledProgram::compile(source)?;

        let mut slots: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
        if let Some(journal) = &self.resume_from {
            journal
                .check_matches(config, benchmark)
                .map_err(|msg| MpError::runtime(RuntimeErrorKind::Value, msg))?;
            for (&inv, record) in &journal.records {
                if (inv as usize) < n {
                    slots[inv as usize] = Some(Outcome::Measured(record.clone()));
                }
            }
            for (&inv, censored) in &journal.censored {
                if (inv as usize) < n {
                    slots[inv as usize] = Some(Outcome::Censored(censored.clone()));
                }
            }
        }
        let replayed: Vec<bool> = slots.iter().map(|s| s.is_some()).collect();

        let writer = match &self.journal_path {
            Some(path) => Some(Mutex::new(open_journal(path, config, benchmark)?)),
            None => None,
        };

        let slots = Mutex::new(slots);
        let next = AtomicUsize::new(0);
        let mut quarantined = false;

        std::thread::scope(|scope| {
            // Telemetry drain: a dedicated thread fans events out to the
            // observers so `on_event` never runs on a timing thread. With no
            // observers there is no channel and no drain at all.
            let sink = if self.observers.is_empty() {
                EventSink(None)
            } else {
                let (tx, rx) = channel::<ExperimentEvent>();
                let observers = &self.observers;
                scope.spawn(move || {
                    let mut disabled = vec![false; observers.len()];
                    for event in rx {
                        for (idx, obs) in observers.iter().enumerate() {
                            if disabled[idx] {
                                continue;
                            }
                            let outcome = catch_unwind(AssertUnwindSafe(|| obs.on_event(&event)));
                            if outcome.is_err() {
                                // Disable the observer so the panic is
                                // reported exactly once and the drain (and
                                // the measurement) survive.
                                disabled[idx] = true;
                                eprintln!(
                                    "rigor: observer #{idx} panicked on `{}`; \
                                     disabling it for the rest of the experiment",
                                    event.name()
                                );
                            }
                        }
                    }
                });
                EventSink(Some(tx))
            };

            sink.send(ExperimentEvent::ExperimentStarted {
                benchmark: benchmark.to_string(),
                engine: config.engine.name().to_string(),
                invocations: config.invocations,
                iterations: config.iterations,
            });

            // Re-journal replayed outcomes first so a journaled resume ends
            // with a complete, self-contained file.
            if let Some(writer) = &writer {
                let slots_guard = slots.lock().expect("result slots poisoned");
                for (i, slot) in slots_guard.iter().enumerate() {
                    if let Some(outcome) = slot {
                        journal_outcome(writer, outcome, benchmark, i as u32, &sink);
                    }
                }
            }

            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let sink = sink.clone();
                    let slots = &slots;
                    let next = &next;
                    let replayed = &replayed;
                    let writer = &writer;
                    let faults = self.fault_plan.as_ref();
                    let program = &program;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        if replayed[i] {
                            continue;
                        }
                        let outcome =
                            run_with_retries(program, benchmark, i as u32, config, &sink, faults);
                        if let Some(writer) = writer {
                            journal_outcome(writer, &outcome, benchmark, i as u32, &sink);
                        }
                        slots.lock().expect("result slots poisoned")[i] = Some(outcome);
                    })
                })
                .collect();
            for w in workers {
                // A worker loop itself cannot panic (invocations are
                // guarded), but join defensively rather than unwinding
                // through the scope.
                let _ = w.join();
            }

            let failed = slots
                .lock()
                .expect("result slots poisoned")
                .iter()
                .filter(|s| matches!(s, Some(Outcome::Censored(_)) | Some(Outcome::Fatal(_))))
                .count() as u32;
            let censored = slots
                .lock()
                .expect("result slots poisoned")
                .iter()
                .filter(|s| matches!(s, Some(Outcome::Censored(_))))
                .count() as u32;
            quarantined = n > 0 && f64::from(censored) / n as f64 > config.quarantine_threshold;
            if quarantined {
                sink.send(ExperimentEvent::BenchmarkQuarantined {
                    benchmark: benchmark.to_string(),
                    censored,
                    invocations: config.invocations,
                });
            }
            sink.send(ExperimentEvent::ExperimentFinished {
                benchmark: benchmark.to_string(),
                engine: config.engine.name().to_string(),
                failed_invocations: failed,
            });
            // Dropping the last sender ends the drain loop; the scope then
            // joins the drain thread, so observers have seen every event
            // before measure_source returns.
            drop(sink);
        });

        let mut invocations = Vec::new();
        let mut censored = Vec::new();
        for slot in slots.into_inner().expect("result slots poisoned") {
            match slot.expect("every index visited") {
                Outcome::Measured(record) => invocations.push(record),
                Outcome::Censored(c) => censored.push(c),
                Outcome::Fatal(e) => return Err(e),
            }
        }
        Ok(BenchmarkMeasurement {
            benchmark: benchmark.to_string(),
            engine: config.engine.name().to_string(),
            invocations,
            censored,
            quarantined,
        })
    }
}

/// Creates the checkpoint journal writer, mapping I/O errors into the
/// crate's error type.
fn open_journal(
    path: &Path,
    config: &ExperimentConfig,
    benchmark: &str,
) -> MpResult<JournalWriter> {
    let meta = JournalMeta::for_experiment(config, benchmark);
    JournalWriter::create(path, &meta).map_err(|e| {
        MpError::runtime(
            RuntimeErrorKind::Value,
            format!("cannot create checkpoint journal {}: {e}", path.display()),
        )
    })
}

/// Journals one finished outcome; write failures are reported, not fatal —
/// losing a checkpoint must not lose the measurement.
fn journal_outcome(
    writer: &Mutex<JournalWriter>,
    outcome: &Outcome,
    benchmark: &str,
    invocation: u32,
    sink: &EventSink,
) {
    let mut writer = writer.lock().expect("journal writer poisoned");
    let written = match outcome {
        Outcome::Measured(record) => writer.append_record(record),
        Outcome::Censored(c) => writer.append_censored(c),
        Outcome::Fatal(_) => return,
    };
    match written {
        Ok(records) => sink.send(ExperimentEvent::CheckpointWritten {
            benchmark: benchmark.to_string(),
            invocation,
            records,
        }),
        Err(e) => eprintln!("rigor: checkpoint write failed (invocation {invocation}): {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::CollectingObserver;
    use minipy::EngineKind;
    use rigor_workloads::{find, Size};

    const DIVERGENT_SRC: &str = "def run():\n    while True:\n        pass\n";

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig::interp()
            .with_invocations(4)
            .with_iterations(5)
            .with_size(Size::Small)
            .with_seed(7)
    }

    /// A runner over a config the test knows is valid.
    fn runner(cfg: ExperimentConfig) -> Runner {
        Runner::new(cfg).expect("valid config")
    }

    fn measure(w: &rigor_workloads::Workload, cfg: &ExperimentConfig) -> BenchmarkMeasurement {
        runner(cfg.clone()).measure(w).expect("measure")
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let err = Runner::new(quick_config().with_invocations(0)).unwrap_err();
        assert_eq!(err, ConfigError::ZeroInvocations);
        assert!(Runner::new(quick_config().with_confidence(1.5)).is_err());
        assert!(Runner::new(quick_config().with_quarantine_threshold(-0.5)).is_err());
    }

    #[test]
    fn measurement_has_requested_shape() {
        let w = find("sieve").unwrap();
        let m = measure(&w, &quick_config());
        assert_eq!(m.n_invocations(), 4);
        assert_eq!(m.n_iterations(), 5);
        assert_eq!(m.benchmark, "sieve");
        assert_eq!(m.engine, "interp");
        assert!(m.invocations.iter().all(|r| r.startup_ns > 0.0));
        assert!(m.invocations.iter().all(|r| r.attempts == 1));
        assert!(m.checksums_consistent());
        assert!(m.censored.is_empty());
        assert!(!m.quarantined);
    }

    #[test]
    fn measurement_is_reproducible() {
        let w = find("str_keys").unwrap();
        let a = measure(&w, &quick_config());
        let b = measure(&w, &quick_config());
        for (ra, rb) in a.invocations.iter().zip(&b.invocations) {
            assert_eq!(ra.iteration_ns, rb.iteration_ns);
            assert_eq!(ra.seed, rb.seed);
        }
    }

    #[test]
    fn different_master_seed_changes_times() {
        let w = find("str_keys").unwrap();
        let a = measure(&w, &quick_config());
        let b = measure(&w, &quick_config().with_seed(8));
        assert_ne!(a.invocations[0].iteration_ns, b.invocations[0].iteration_ns);
    }

    #[test]
    fn parallel_matches_serial() {
        let w = find("leibniz").unwrap();
        let serial = measure(&w, &quick_config().with_threads(1));
        let parallel = measure(&w, &quick_config().with_threads(4));
        for (rs, rp) in serial.invocations.iter().zip(&parallel.invocations) {
            assert_eq!(rs.iteration_ns, rp.iteration_ns);
        }
    }

    #[test]
    fn jit_engine_records_compiles() {
        let w = find("leibniz").unwrap();
        let cfg = quick_config()
            .with_iterations(15)
            .with_engine(EngineKind::Jit(minipy::JitConfig::default()));
        let m = measure(&w, &cfg);
        assert_eq!(m.engine, "jit");
        assert!(
            m.invocations.iter().any(|r| r.jit_compiles > 0),
            "hot loop should have compiled"
        );
    }

    #[test]
    fn bad_source_propagates_error() {
        // Compile-class errors fail fast: no retry can fix a parse error.
        let cfg = quick_config();
        assert!(runner(cfg.clone())
            .measure_source("def broken(:\n", "broken")
            .is_err());
    }

    #[test]
    fn retry_seeds_differ_per_attempt() {
        let s0 = attempt_seed(7, "sieve", 3, 0);
        let s1 = attempt_seed(7, "sieve", 3, 1);
        let s2 = attempt_seed(7, "sieve", 3, 2);
        assert_eq!(s0, invocation_seed(7, "sieve", 3), "attempt 0 is canonical");
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
    }

    #[test]
    fn records_carry_per_iteration_counters() {
        let w = find("leibniz").unwrap();
        let cfg = quick_config()
            .with_iterations(15)
            .with_engine(EngineKind::Jit(minipy::JitConfig::default()));
        let m = measure(&w, &cfg);
        for r in &m.invocations {
            let counters = r.iteration_counters.as_ref().expect("runner records them");
            assert_eq!(counters.len(), r.iteration_ns.len());
            // Per-iteration counters sum to the invocation totals.
            assert_eq!(
                counters.iter().map(|c| c.jit_compiles).sum::<u64>(),
                r.jit_compiles
            );
            assert_eq!(
                counters.iter().map(|c| c.gc_cycles).sum::<u64>(),
                r.gc_cycles
            );
        }
    }

    #[test]
    fn observers_see_a_complete_stream() {
        let w = find("sieve").unwrap();
        let obs = Arc::new(CollectingObserver::new());
        let m = runner(quick_config())
            .observer(obs.clone())
            .measure(&w)
            .unwrap();
        assert_eq!(m.n_invocations(), 4);
        // 2 + 2N + N*M for a fully successful experiment.
        assert_eq!(obs.len(), 2 + 2 * 4 + 4 * 5);
    }

    #[test]
    fn runtime_failures_are_retried_then_censored() {
        let obs = Arc::new(CollectingObserver::new());
        let runner = runner(quick_config()).observer(obs.clone());
        // Runtime NameError during module setup: retried, then censored.
        let m = runner.measure_source("x = undefined\n", "broken").unwrap();
        assert!(m.invocations.is_empty());
        assert_eq!(m.censored.len(), 4);
        assert!(m.quarantined, "4/4 censored is past any sane threshold");
        for c in &m.censored {
            assert_eq!(c.attempts, 2, "default max_retries=1 means 2 attempts");
            assert_eq!(c.failure, FailureKind::VmError);
            assert!(c.error.contains("NameError"));
        }

        let events = obs.events();
        let finishes = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ExperimentEvent::InvocationFinished { error: Some(_), .. }
                )
            })
            .count();
        assert_eq!(finishes, 8, "4 invocations × 2 attempts, all failed");
        let retries = events
            .iter()
            .filter(|e| matches!(e, ExperimentEvent::InvocationRetried { .. }))
            .count();
        assert_eq!(retries, 4);
        assert!(events
            .iter()
            .any(|e| matches!(e, ExperimentEvent::BenchmarkQuarantined { censored: 4, .. })));
        match events.last().unwrap() {
            ExperimentEvent::ExperimentFinished {
                failed_invocations, ..
            } => assert_eq!(*failed_invocations, 4),
            other => panic!("stream must end with ExperimentFinished, got {other:?}"),
        }
    }

    #[test]
    fn divergent_workload_is_censored_not_hung() {
        let obs = Arc::new(CollectingObserver::new());
        let cfg = quick_config()
            .with_invocations(2)
            .with_deadline_ns(5.0e7)
            .with_max_retries(1);
        let m = runner(cfg)
            .observer(obs.clone())
            .measure_source(DIVERGENT_SRC, "divergent")
            .unwrap();
        assert!(m.invocations.is_empty());
        assert_eq!(m.censored.len(), 2);
        assert!(m.quarantined);
        for c in &m.censored {
            assert_eq!(c.failure, FailureKind::Timeout);
            assert_eq!(c.attempts, 2);
        }
        let timeouts = obs
            .events()
            .iter()
            .filter(|e| matches!(e, ExperimentEvent::InvocationTimedOut { .. }))
            .count();
        assert_eq!(timeouts, 4, "each of the 2×2 attempts trips the deadline");
    }

    #[test]
    fn fuel_budget_censors_with_fuel_taxonomy() {
        let cfg = quick_config()
            .with_invocations(1)
            .with_step_budget(50_000)
            .with_max_retries(0);
        let m = runner(cfg.clone())
            .measure_source(DIVERGENT_SRC, "divergent")
            .unwrap();
        assert_eq!(m.censored.len(), 1);
        assert_eq!(m.censored[0].failure, FailureKind::FuelExhausted);
        assert_eq!(m.censored[0].attempts, 1);
    }

    #[test]
    fn quarantine_threshold_is_respected() {
        // All invocations censored, but threshold 1.0 never quarantines.
        let cfg = quick_config()
            .with_invocations(2)
            .with_deadline_ns(5.0e7)
            .with_quarantine_threshold(1.0);
        let m = runner(cfg.clone())
            .measure_source(DIVERGENT_SRC, "divergent")
            .unwrap();
        assert_eq!(m.censored.len(), 2);
        assert!(!m.quarantined);
    }

    #[test]
    fn injected_panics_are_retried_and_censored() {
        let cfg = quick_config().with_max_retries(0);
        let w = find("sieve").unwrap();
        let m = runner(cfg)
            .fault_plan(FaultPlan::new(11).with_panic_rate(1.0))
            .measure(&w)
            .unwrap();
        assert!(m.invocations.is_empty());
        assert_eq!(m.censored.len(), 4);
        assert!(m.censored.iter().all(|c| c.failure == FailureKind::Panic));
    }

    #[test]
    fn retries_recover_from_transient_injected_faults() {
        // With a 50% panic rate and plenty of retries, every invocation
        // should eventually land a clean attempt (the plan's decisions are
        // independent across attempts).
        let cfg = quick_config().with_invocations(8).with_max_retries(6);
        let w = find("sieve").unwrap();
        let m = runner(cfg)
            .fault_plan(FaultPlan::new(13).with_panic_rate(0.5))
            .measure(&w)
            .unwrap();
        assert_eq!(m.n_invocations() + m.censored.len(), 8);
        assert!(
            m.invocations.iter().any(|r| r.attempts > 1),
            "a 50% fault rate over 8 invocations should force some retries"
        );
        // First-try successes must be bit-identical to an injection-free run.
        let clean = measure(&w, &quick_config().with_invocations(8));
        for r in m.invocations.iter().filter(|r| r.attempts == 1) {
            let reference = &clean.invocations[r.invocation as usize];
            assert_eq!(r.iteration_ns, reference.iteration_ns);
        }
    }

    #[test]
    fn panicking_observer_is_isolated_and_stream_survives() {
        struct Grenade;
        impl ExperimentObserver for Grenade {
            fn on_event(&self, _event: &ExperimentEvent) {
                panic!("observer bug");
            }
        }
        let collector = Arc::new(CollectingObserver::new());
        let w = find("sieve").unwrap();
        let m = runner(quick_config())
            .observer(Arc::new(Grenade))
            .observer(collector.clone())
            .measure(&w)
            .unwrap();
        assert_eq!(m.n_invocations(), 4, "measurement must survive the panic");
        // The healthy observer still saw the complete stream.
        assert_eq!(collector.len(), 2 + 2 * 4 + 4 * 5);
    }

    #[test]
    fn journal_replays_skip_completed_invocations() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rigor-runner-journal-{}.jsonl", std::process::id()));
        let w = find("sieve").unwrap();
        let cfg = quick_config();
        let full = runner(cfg.clone()).journal(&path).measure(&w).unwrap();

        // Truncate the journal to 2 completed invocations (meta + 2 lines),
        // as if the process died mid-experiment.
        let text = std::fs::read_to_string(&path).unwrap();
        let prefix: Vec<&str> = text.lines().take(3).collect();
        std::fs::write(&path, format!("{}\n", prefix.join("\n"))).unwrap();

        let journal = Journal::load(&path).unwrap();
        assert_eq!(journal.completed(), 2);
        let resumed = runner(cfg).resume(journal).measure(&w).unwrap();
        assert_eq!(resumed.n_invocations(), 4);
        for (a, b) in full.invocations.iter().zip(&resumed.invocations) {
            assert_eq!(a.iteration_ns, b.iteration_ns);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.checksum, b.checksum);
        }
        // Byte-identical exports: the resume acceptance criterion.
        assert_eq!(
            crate::export::to_json(&[full]).unwrap(),
            crate::export::to_json(&[resumed]).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_journal_is_rejected() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "rigor-runner-mismatch-{}.jsonl",
            std::process::id()
        ));
        let w = find("sieve").unwrap();
        runner(quick_config()).journal(&path).measure(&w).unwrap();
        let journal = Journal::load(&path).unwrap();
        // Different seed → the journaled records are not replayable.
        let r = runner(quick_config().with_seed(999))
            .resume(journal)
            .measure(&w);
        assert!(r.is_err());
        std::fs::remove_file(&path).ok();
    }
}
