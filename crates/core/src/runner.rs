//! The experiment runner: drives VM invocations, collects measurements and
//! emits structured telemetry.
//!
//! [`Runner`] is the primary API:
//!
//! ```rust
//! use std::sync::Arc;
//! use rigor::{CollectingObserver, ExperimentConfig, Runner};
//! use rigor_workloads::{find, Size};
//!
//! # fn main() -> minipy::MpResult<()> {
//! let sieve = find("sieve").expect("in the suite");
//! let observer = Arc::new(CollectingObserver::new());
//! let m = Runner::new(ExperimentConfig::interp().with_invocations(2).with_iterations(3))
//!     .observer(observer.clone())
//!     .measure(&sieve)?;
//! assert_eq!(m.n_invocations(), 2);
//! assert_eq!(observer.len(), 2 + 2 * 2 + 2 * 3);
//! # Ok(())
//! # }
//! ```
//!
//! The free functions [`measure_source`] / [`measure_workload`] are thin
//! wrappers over an observer-less `Runner` kept for callers that need no
//! telemetry.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};

use minipy::{invocation_seed, MpError, MpResult, RuntimeErrorKind, Session};
use rigor_workloads::Workload;

use crate::config::ExperimentConfig;
use crate::measurement::{BenchmarkMeasurement, InvocationRecord};
use crate::telemetry::{ExperimentEvent, ExperimentObserver};

/// A cloneable event outlet handed to worker threads; a no-op when the
/// runner has no observers, so telemetry costs nothing unless asked for.
#[derive(Clone)]
struct EventSink(Option<Sender<ExperimentEvent>>);

impl EventSink {
    fn send(&self, event: ExperimentEvent) {
        if let Some(tx) = &self.0 {
            // The drain hangs up only if an observer panicked; measurement
            // proceeds regardless.
            let _ = tx.send(event);
        }
    }
}

/// Runs one invocation: fresh session, setup, `iterations` timed runs.
fn run_invocation(
    source: &str,
    benchmark: &str,
    invocation: u32,
    config: &ExperimentConfig,
    sink: &EventSink,
) -> MpResult<InvocationRecord> {
    let seed = invocation_seed(config.experiment_seed, benchmark, invocation);
    sink.send(ExperimentEvent::InvocationStarted {
        benchmark: benchmark.to_string(),
        invocation,
        seed,
    });
    let mut session = Session::start(source, seed, config.vm_config())?;
    let startup_ns = session.startup_ns();
    let before = session.vm().counters();
    let mut iteration_ns = Vec::with_capacity(config.iterations as usize);
    let mut iteration_counters = Vec::with_capacity(config.iterations as usize);
    let mut checksum = String::new();
    for i in 0..config.iterations {
        let r = session.run_iteration()?;
        let counters = r.vm_deltas().into();
        iteration_ns.push(r.virtual_ns);
        iteration_counters.push(counters);
        if i == 0 {
            checksum = session.render(r.value);
        }
        sink.send(ExperimentEvent::IterationFinished {
            benchmark: benchmark.to_string(),
            invocation,
            iteration: i,
            virtual_ns: r.virtual_ns,
            counters,
        });
    }
    let delta = session.vm().counters().delta_since(&before);
    Ok(InvocationRecord {
        invocation,
        seed,
        startup_ns,
        iteration_ns,
        gc_cycles: delta.gc_cycles,
        jit_compiles: delta.jit_compiles,
        deopts: delta.deopts,
        checksum,
        iteration_counters: Some(iteration_counters),
    })
}

/// Runs `run_invocation`, converting a panic in the VM into a classified
/// internal error so one broken invocation cannot abort the whole process.
fn run_invocation_guarded(
    source: &str,
    benchmark: &str,
    invocation: u32,
    config: &ExperimentConfig,
    sink: &EventSink,
) -> MpResult<InvocationRecord> {
    catch_unwind(AssertUnwindSafe(|| {
        run_invocation(source, benchmark, invocation, config, sink)
    }))
    .unwrap_or_else(|payload| {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            s.to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "unknown panic payload".to_string()
        };
        Err(MpError::runtime(
            RuntimeErrorKind::Internal,
            format!("invocation {invocation} panicked: {msg}"),
        ))
    })
}

/// Drives one experiment: `config.invocations` fresh sessions in parallel,
/// each timed for `config.iterations` iterations, with telemetry delivered
/// to any number of attached [`ExperimentObserver`]s.
///
/// Observers receive events via a channel drained on a dedicated thread, so
/// a slow observer never serializes the parallel invocations.
pub struct Runner {
    config: ExperimentConfig,
    observers: Vec<Arc<dyn ExperimentObserver>>,
}

impl Runner {
    /// A runner with no observers.
    pub fn new(config: ExperimentConfig) -> Runner {
        Runner {
            config,
            observers: Vec::new(),
        }
    }

    /// Attaches an observer (builder style); call repeatedly to fan out.
    pub fn observer(mut self, observer: Arc<dyn ExperimentObserver>) -> Runner {
        self.observers.push(observer);
        self
    }

    /// The runner's configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Measures a suite workload at the configured size preset.
    ///
    /// # Errors
    ///
    /// As [`Runner::measure_source`].
    pub fn measure(&self, workload: &Workload) -> MpResult<BenchmarkMeasurement> {
        self.measure_source(&workload.source(self.config.size), workload.name)
    }

    /// Measures a workload source: `invocations` fresh sessions (in
    /// parallel — they model independent OS processes), each timed for
    /// `iterations` iterations.
    ///
    /// # Errors
    ///
    /// The first error any invocation raised (by invocation index). Worker
    /// panics surface as internal VM errors, not process aborts.
    pub fn measure_source(&self, source: &str, benchmark: &str) -> MpResult<BenchmarkMeasurement> {
        let config = &self.config;
        let n = config.invocations as usize;
        let threads = config.threads.clamp(1, n.max(1));
        let slots: Mutex<Vec<Option<MpResult<InvocationRecord>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            // Telemetry drain: a dedicated thread fans events out to the
            // observers so `on_event` never runs on a timing thread. With no
            // observers there is no channel and no drain at all.
            let sink = if self.observers.is_empty() {
                EventSink(None)
            } else {
                let (tx, rx) = channel::<ExperimentEvent>();
                let observers = &self.observers;
                scope.spawn(move || {
                    for event in rx {
                        for obs in observers {
                            obs.on_event(&event);
                        }
                    }
                });
                EventSink(Some(tx))
            };

            sink.send(ExperimentEvent::ExperimentStarted {
                benchmark: benchmark.to_string(),
                engine: config.engine.name().to_string(),
                invocations: config.invocations,
                iterations: config.iterations,
            });

            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let sink = sink.clone();
                    let slots = &slots;
                    let next = &next;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = run_invocation_guarded(source, benchmark, i as u32, config, &sink);
                        sink.send(ExperimentEvent::InvocationFinished {
                            benchmark: benchmark.to_string(),
                            invocation: i as u32,
                            startup_ns: r.as_ref().map(|rec| rec.startup_ns).unwrap_or(0.0),
                            iterations: r
                                .as_ref()
                                .map(|rec| rec.iteration_ns.len() as u32)
                                .unwrap_or(0),
                            error: r.as_ref().err().map(|e| e.to_string()),
                        });
                        slots.lock().expect("result slots poisoned")[i] = Some(r);
                    })
                })
                .collect();
            for w in workers {
                // A worker loop itself cannot panic (invocations are
                // guarded), but join defensively rather than unwinding
                // through the scope.
                let _ = w.join();
            }

            let failed = slots
                .lock()
                .expect("result slots poisoned")
                .iter()
                .filter(|s| matches!(s, Some(Err(_))))
                .count() as u32;
            sink.send(ExperimentEvent::ExperimentFinished {
                benchmark: benchmark.to_string(),
                engine: config.engine.name().to_string(),
                failed_invocations: failed,
            });
            // Dropping the last sender ends the drain loop; the scope then
            // joins the drain thread, so observers have seen every event
            // before measure_source returns.
            drop(sink);
        });

        let mut invocations = Vec::with_capacity(n);
        for slot in slots.into_inner().expect("result slots poisoned") {
            invocations.push(slot.expect("every index visited")?);
        }
        Ok(BenchmarkMeasurement {
            benchmark: benchmark.to_string(),
            engine: config.engine.name().to_string(),
            invocations,
        })
    }
}

/// Measures a workload source under `config` with no telemetry; see
/// [`Runner::measure_source`].
///
/// # Errors
///
/// The first error any invocation raised.
pub fn measure_source(
    source: &str,
    benchmark: &str,
    config: &ExperimentConfig,
) -> MpResult<BenchmarkMeasurement> {
    Runner::new(config.clone()).measure_source(source, benchmark)
}

/// Measures a suite workload at the configured size preset with no
/// telemetry; see [`Runner::measure`].
///
/// # Errors
///
/// As [`measure_source`].
pub fn measure_workload(
    workload: &Workload,
    config: &ExperimentConfig,
) -> MpResult<BenchmarkMeasurement> {
    Runner::new(config.clone()).measure(workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::CollectingObserver;
    use minipy::EngineKind;
    use rigor_workloads::{find, Size};

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig::interp()
            .with_invocations(4)
            .with_iterations(5)
            .with_size(Size::Small)
            .with_seed(7)
    }

    #[test]
    fn measurement_has_requested_shape() {
        let w = find("sieve").unwrap();
        let m = measure_workload(&w, &quick_config()).unwrap();
        assert_eq!(m.n_invocations(), 4);
        assert_eq!(m.n_iterations(), 5);
        assert_eq!(m.benchmark, "sieve");
        assert_eq!(m.engine, "interp");
        assert!(m.invocations.iter().all(|r| r.startup_ns > 0.0));
        assert!(m.checksums_consistent());
    }

    #[test]
    fn measurement_is_reproducible() {
        let w = find("str_keys").unwrap();
        let a = measure_workload(&w, &quick_config()).unwrap();
        let b = measure_workload(&w, &quick_config()).unwrap();
        for (ra, rb) in a.invocations.iter().zip(&b.invocations) {
            assert_eq!(ra.iteration_ns, rb.iteration_ns);
            assert_eq!(ra.seed, rb.seed);
        }
    }

    #[test]
    fn different_master_seed_changes_times() {
        let w = find("str_keys").unwrap();
        let a = measure_workload(&w, &quick_config()).unwrap();
        let b = measure_workload(&w, &quick_config().with_seed(8)).unwrap();
        assert_ne!(a.invocations[0].iteration_ns, b.invocations[0].iteration_ns);
    }

    #[test]
    fn parallel_matches_serial() {
        let w = find("leibniz").unwrap();
        let serial = measure_workload(&w, &quick_config().with_threads(1)).unwrap();
        let parallel = measure_workload(&w, &quick_config().with_threads(4)).unwrap();
        for (rs, rp) in serial.invocations.iter().zip(&parallel.invocations) {
            assert_eq!(rs.iteration_ns, rp.iteration_ns);
        }
    }

    #[test]
    fn jit_engine_records_compiles() {
        let w = find("leibniz").unwrap();
        let cfg = quick_config()
            .with_iterations(15)
            .with_engine(EngineKind::Jit(minipy::JitConfig::default()));
        let m = measure_workload(&w, &cfg).unwrap();
        assert_eq!(m.engine, "jit");
        assert!(
            m.invocations.iter().any(|r| r.jit_compiles > 0),
            "hot loop should have compiled"
        );
    }

    #[test]
    fn bad_source_propagates_error() {
        let cfg = quick_config();
        assert!(measure_source("def broken(:\n", "broken", &cfg).is_err());
    }

    #[test]
    fn records_carry_per_iteration_counters() {
        let w = find("leibniz").unwrap();
        let cfg = quick_config()
            .with_iterations(15)
            .with_engine(EngineKind::Jit(minipy::JitConfig::default()));
        let m = measure_workload(&w, &cfg).unwrap();
        for r in &m.invocations {
            let counters = r.iteration_counters.as_ref().expect("runner records them");
            assert_eq!(counters.len(), r.iteration_ns.len());
            // Per-iteration counters sum to the invocation totals.
            assert_eq!(
                counters.iter().map(|c| c.jit_compiles).sum::<u64>(),
                r.jit_compiles
            );
            assert_eq!(
                counters.iter().map(|c| c.gc_cycles).sum::<u64>(),
                r.gc_cycles
            );
        }
    }

    #[test]
    fn observers_see_a_complete_stream() {
        let w = find("sieve").unwrap();
        let obs = Arc::new(CollectingObserver::new());
        let m = Runner::new(quick_config())
            .observer(obs.clone())
            .measure(&w)
            .unwrap();
        assert_eq!(m.n_invocations(), 4);
        // 2 + 2N + N*M for a fully successful experiment.
        assert_eq!(obs.len(), 2 + 2 * 4 + 4 * 5);
    }

    #[test]
    fn failed_invocations_emit_error_events() {
        let obs = Arc::new(CollectingObserver::new());
        let runner = Runner::new(quick_config()).observer(obs.clone());
        assert!(runner.measure_source("x = undefined\n", "broken").is_err());
        let events = obs.events();
        let finishes: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                ExperimentEvent::InvocationFinished { error, .. } => Some(error),
                _ => None,
            })
            .collect();
        assert_eq!(finishes.len(), 4);
        assert!(finishes.iter().all(|e| e.is_some()));
        match events.last().unwrap() {
            ExperimentEvent::ExperimentFinished {
                failed_invocations, ..
            } => assert_eq!(*failed_invocations, 4),
            other => panic!("stream must end with ExperimentFinished, got {other:?}"),
        }
    }
}
