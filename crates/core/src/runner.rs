//! The experiment runner: drives VM invocations and collects measurements.

use std::sync::atomic::{AtomicUsize, Ordering};

use minipy::{invocation_seed, MpResult, Session};
use parking_lot::Mutex;
use rigor_workloads::Workload;

use crate::config::ExperimentConfig;
use crate::measurement::{BenchmarkMeasurement, InvocationRecord};

/// Runs one invocation: fresh session, setup, `iterations` timed runs.
fn run_invocation(
    source: &str,
    benchmark: &str,
    invocation: u32,
    config: &ExperimentConfig,
) -> MpResult<InvocationRecord> {
    let seed = invocation_seed(config.experiment_seed, benchmark, invocation);
    let mut session = Session::start(source, seed, config.vm_config())?;
    let startup_ns = session.startup_ns();
    let before = session.vm().counters();
    let mut iteration_ns = Vec::with_capacity(config.iterations as usize);
    let mut checksum = String::new();
    for i in 0..config.iterations {
        let r = session.run_iteration()?;
        iteration_ns.push(r.virtual_ns);
        if i == 0 {
            checksum = session.render(r.value);
        }
    }
    let delta = session.vm().counters().delta_since(&before);
    Ok(InvocationRecord {
        invocation,
        seed,
        startup_ns,
        iteration_ns,
        gc_cycles: delta.gc_cycles,
        jit_compiles: delta.jit_compiles,
        deopts: delta.deopts,
        checksum,
    })
}

/// Measures a workload source under `config`: `config.invocations` fresh
/// sessions, each timed for `config.iterations` iterations. Invocations run
/// in parallel (they model independent OS processes).
///
/// # Errors
///
/// The first error any invocation raised.
pub fn measure_source(
    source: &str,
    benchmark: &str,
    config: &ExperimentConfig,
) -> MpResult<BenchmarkMeasurement> {
    let n = config.invocations as usize;
    let results: Mutex<Vec<Option<MpResult<InvocationRecord>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let threads = config.threads.clamp(1, n.max(1));

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = run_invocation(source, benchmark, i as u32, config);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("invocation worker panicked");

    let mut invocations = Vec::with_capacity(n);
    for slot in results.into_inner() {
        invocations.push(slot.expect("every index visited")?);
    }
    Ok(BenchmarkMeasurement {
        benchmark: benchmark.to_string(),
        engine: config.engine.name().to_string(),
        invocations,
    })
}

/// Measures a suite workload at the configured size preset.
///
/// # Errors
///
/// As [`measure_source`].
pub fn measure_workload(
    workload: &Workload,
    config: &ExperimentConfig,
) -> MpResult<BenchmarkMeasurement> {
    measure_source(&workload.source(config.size), workload.name, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minipy::EngineKind;
    use rigor_workloads::{find, Size};

    fn quick_config() -> ExperimentConfig {
        ExperimentConfig::interp()
            .with_invocations(4)
            .with_iterations(5)
            .with_size(Size::Small)
            .with_seed(7)
    }

    #[test]
    fn measurement_has_requested_shape() {
        let w = find("sieve").unwrap();
        let m = measure_workload(&w, &quick_config()).unwrap();
        assert_eq!(m.n_invocations(), 4);
        assert_eq!(m.n_iterations(), 5);
        assert_eq!(m.benchmark, "sieve");
        assert_eq!(m.engine, "interp");
        assert!(m.invocations.iter().all(|r| r.startup_ns > 0.0));
        assert!(m.checksums_consistent());
    }

    #[test]
    fn measurement_is_reproducible() {
        let w = find("str_keys").unwrap();
        let a = measure_workload(&w, &quick_config()).unwrap();
        let b = measure_workload(&w, &quick_config()).unwrap();
        for (ra, rb) in a.invocations.iter().zip(&b.invocations) {
            assert_eq!(ra.iteration_ns, rb.iteration_ns);
            assert_eq!(ra.seed, rb.seed);
        }
    }

    #[test]
    fn different_master_seed_changes_times() {
        let w = find("str_keys").unwrap();
        let a = measure_workload(&w, &quick_config()).unwrap();
        let b = measure_workload(&w, &quick_config().with_seed(8)).unwrap();
        assert_ne!(a.invocations[0].iteration_ns, b.invocations[0].iteration_ns);
    }

    #[test]
    fn parallel_matches_serial() {
        let w = find("leibniz").unwrap();
        let mut cfg = quick_config();
        cfg.threads = 1;
        let serial = measure_workload(&w, &cfg).unwrap();
        cfg.threads = 4;
        let parallel = measure_workload(&w, &cfg).unwrap();
        for (rs, rp) in serial.invocations.iter().zip(&parallel.invocations) {
            assert_eq!(rs.iteration_ns, rp.iteration_ns);
        }
    }

    #[test]
    fn jit_engine_records_compiles() {
        let w = find("leibniz").unwrap();
        let mut cfg = quick_config().with_iterations(15);
        cfg.engine = EngineKind::Jit(minipy::JitConfig::default());
        let m = measure_workload(&w, &cfg).unwrap();
        assert_eq!(m.engine, "jit");
        assert!(
            m.invocations.iter().any(|r| r.jit_compiles > 0),
            "hot loop should have compiled"
        );
    }

    #[test]
    fn bad_source_propagates_error() {
        let cfg = quick_config();
        assert!(measure_source("def broken(:\n", "broken", &cfg).is_err());
    }
}
