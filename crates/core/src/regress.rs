//! Regression gating: compare the current run against a baseline drawn
//! from history, benchmark by benchmark, with multiple-comparison control.
//!
//! The gate reuses the rigorous machinery the rest of the crate is built
//! on — steady-state excision, per-invocation means, bootstrap speedup CIs,
//! Welch's t — and adds the one ingredient a *suite* gate needs that a
//! single comparison does not: corrected p-values ([`rigor_stats::fdr`]),
//! so a 20-benchmark suite does not false-alarm weekly. A benchmark only
//! fails the gate when it is significant **after** correction, slower, and
//! slower by more than the configured tolerance.
//!
//! Everything here is pure data-in/data-out over [`BenchmarkMeasurement`]
//! slices; selecting the baseline out of an on-disk archive lives in the
//! `rigor-store` crate, which depends on this one.

use rigor_stats::fdr;
use serde::json::JsonValue;
use serde::Serialize;

use crate::compare::{compare, SpeedupResult};
use crate::measurement::BenchmarkMeasurement;
use crate::steady::SteadyStateDetector;

/// Which multiple-comparison correction the gate applies across the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Correction {
    /// Benjamini–Hochberg: controls the false-discovery rate. The default —
    /// its power does not collapse as the suite grows.
    #[default]
    BenjaminiHochberg,
    /// Holm–Bonferroni: controls the family-wise error rate. Stricter;
    /// use when even one false rejection is unacceptable.
    HolmBonferroni,
}

impl Correction {
    /// Stable wire/CLI name: `"bh"` or `"holm"`.
    pub fn name(self) -> &'static str {
        match self {
            Correction::BenjaminiHochberg => "bh",
            Correction::HolmBonferroni => "holm",
        }
    }

    /// Parses a CLI spelling (`bh`, `benjamini-hochberg`, `fdr`, `holm`,
    /// `holm-bonferroni`, `fwer`).
    pub fn parse(s: &str) -> Option<Correction> {
        match s.to_ascii_lowercase().as_str() {
            "bh" | "benjamini-hochberg" | "fdr" => Some(Correction::BenjaminiHochberg),
            "holm" | "holm-bonferroni" | "fwer" => Some(Correction::HolmBonferroni),
            _ => None,
        }
    }

    /// Adjusted p-values for this correction, in input order.
    pub fn adjust(self, ps: &[f64]) -> Vec<f64> {
        match self {
            Correction::BenjaminiHochberg => fdr::bh_adjusted(ps),
            Correction::HolmBonferroni => fdr::holm_adjusted(ps),
        }
    }
}

impl std::fmt::Display for Correction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for Correction {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.name().to_string())
    }
}

/// Tuning of the regression gate.
#[derive(Debug, Clone, Serialize)]
pub struct GatePolicy {
    /// Confidence level for the per-benchmark speedup intervals.
    pub confidence: f64,
    /// Significance level applied to *corrected* p-values (the FDR level
    /// `q` under Benjamini–Hochberg, the FWER `α` under Holm).
    pub fdr_q: f64,
    /// Which correction to apply across the suite.
    pub correction: Correction,
    /// Slowdown fraction tolerated even when statistically significant
    /// (e.g. `0.02` lets a benchmark be up to 2% slower). A significant
    /// slowdown inside the tolerance passes, with a note.
    pub max_regression: f64,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy {
            confidence: 0.95,
            fdr_q: 0.05,
            correction: Correction::default(),
            max_regression: 0.0,
        }
    }
}

impl GatePolicy {
    /// Sets the CI confidence level (builder style).
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Sets the corrected significance level (builder style).
    pub fn with_fdr_q(mut self, q: f64) -> Self {
        self.fdr_q = q;
        self
    }

    /// Sets the correction procedure (builder style).
    pub fn with_correction(mut self, correction: Correction) -> Self {
        self.correction = correction;
        self
    }

    /// Sets the tolerated slowdown fraction (builder style).
    pub fn with_max_regression(mut self, frac: f64) -> Self {
        self.max_regression = frac;
        self
    }
}

/// Per-benchmark verdict of the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// No significant change (or a significant slowdown inside the
    /// tolerance).
    Pass,
    /// Significantly *faster* than the baseline.
    Improved,
    /// Significantly slower than the baseline by more than the tolerance:
    /// this is what makes the gate fail.
    Regressed,
    /// No rigorous verdict was possible (missing baseline, quarantined
    /// data, no steady state, too few invocations). Deliberately does
    /// **not** fail the gate — but is always surfaced, never hidden.
    Indeterminate,
}

impl GateStatus {
    /// Stable wire name (`"pass"`, `"improved"`, `"regressed"`,
    /// `"indeterminate"`).
    pub fn name(self) -> &'static str {
        match self {
            GateStatus::Pass => "pass",
            GateStatus::Improved => "improved",
            GateStatus::Regressed => "regressed",
            GateStatus::Indeterminate => "indeterminate",
        }
    }
}

impl Serialize for GateStatus {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.name().to_string())
    }
}

/// One benchmark's gate outcome.
#[derive(Debug, Clone, Serialize)]
pub struct BenchmarkGate {
    /// Benchmark name.
    pub benchmark: String,
    /// The verdict.
    pub status: GateStatus,
    /// The underlying rigorous comparison (baseline vs. current), when one
    /// was possible. Speedup > 1 means the current run is *faster*.
    pub result: Option<SpeedupResult>,
    /// The p-value after suite-wide correction (`None` when no test was
    /// possible).
    pub p_adjusted: Option<f64>,
    /// Human-readable context: why a verdict is indeterminate, or that a
    /// significant slowdown fell inside the tolerance.
    pub note: Option<String>,
}

impl BenchmarkGate {
    /// Relative time change of the current run vs. baseline
    /// (`cand_mean / base_mean − 1`; positive = slower), when comparable.
    pub fn change_frac(&self) -> Option<f64> {
        let r = self.result.as_ref()?;
        if r.base_mean_ns > 0.0 {
            Some(r.cand_mean_ns / r.base_mean_ns - 1.0)
        } else {
            None
        }
    }

    fn indeterminate(benchmark: &str, note: impl Into<String>) -> BenchmarkGate {
        BenchmarkGate {
            benchmark: benchmark.to_string(),
            status: GateStatus::Indeterminate,
            result: None,
            p_adjusted: None,
            note: Some(note.into()),
        }
    }
}

/// The whole suite's gate outcome.
#[derive(Debug, Clone, Serialize)]
pub struct GateReport {
    /// The policy the gate ran under.
    pub policy: GatePolicy,
    /// Per-benchmark verdicts, in input order.
    pub benchmarks: Vec<BenchmarkGate>,
}

impl GateReport {
    /// The benchmarks that regressed (what the exit code is made of).
    pub fn regressed(&self) -> Vec<&BenchmarkGate> {
        self.benchmarks
            .iter()
            .filter(|b| b.status == GateStatus::Regressed)
            .collect()
    }

    /// True when no benchmark regressed. Indeterminate verdicts do not
    /// fail the gate.
    pub fn passed(&self) -> bool {
        self.regressed().is_empty()
    }
}

/// Pools several runs' measurements into one per-benchmark sample: for each
/// benchmark name (in order of first appearance), the invocations of every
/// run are concatenated and reindexed, censored invocations accumulate, and
/// the pool is quarantined if any contributing run was. This is how a
/// `last-N` baseline widens its invocation sample beyond a single run.
pub fn pool_measurements(runs: &[&[BenchmarkMeasurement]]) -> Vec<BenchmarkMeasurement> {
    let mut pooled: Vec<BenchmarkMeasurement> = Vec::new();
    for run in runs {
        for m in *run {
            let slot = match pooled.iter_mut().find(|p| p.benchmark == m.benchmark) {
                Some(p) => p,
                None => {
                    pooled.push(BenchmarkMeasurement {
                        benchmark: m.benchmark.clone(),
                        engine: m.engine.clone(),
                        invocations: Vec::new(),
                        censored: Vec::new(),
                        quarantined: false,
                    });
                    pooled.last_mut().expect("just pushed")
                }
            };
            for r in &m.invocations {
                let mut r = r.clone();
                r.invocation = slot.invocations.len() as u32;
                slot.invocations.push(r);
            }
            for c in &m.censored {
                let mut c = c.clone();
                c.invocation = (slot.invocations.len() + slot.censored.len()) as u32;
                slot.censored.push(c);
            }
            slot.quarantined |= m.quarantined;
        }
    }
    pooled
}

/// On bit-identical deterministic runs every invocation mean is equal, the
/// Welch test degenerates (zero variance → no t statistic → NaN), and the
/// bootstrap CI collapses to a point. Resolve the NaN from the collapsed
/// interval: a point CI at 1.0 is the strongest possible "no change"
/// (p → 1), a point CI away from 1.0 the strongest possible "changed"
/// (p → 0).
fn effective_p(r: &SpeedupResult) -> f64 {
    if r.p_value.is_nan() {
        if r.speedup.excludes(1.0) {
            0.0
        } else {
            1.0
        }
    } else {
        r.p_value
    }
}

/// Runs the regression gate: `current` vs. `baseline`, benchmark by
/// benchmark, with suite-wide multiple-comparison correction.
///
/// Benchmarks are matched by name; engines may legitimately differ (that
/// is exactly what a "JIT accidentally disabled" regression looks like).
/// Benchmarks with no usable verdict come back [`GateStatus::Indeterminate`]
/// rather than silently vanishing, and do not fail the gate.
pub fn check_regressions(
    baseline: &[BenchmarkMeasurement],
    current: &[BenchmarkMeasurement],
    detector: &SteadyStateDetector,
    policy: &GatePolicy,
) -> GateReport {
    let mut gates: Vec<BenchmarkGate> = Vec::with_capacity(current.len());
    // Indices into `gates` that produced a testable p-value, with it.
    let mut testable: Vec<(usize, f64)> = Vec::new();

    for m in current {
        let Some(base) = baseline.iter().find(|b| b.benchmark == m.benchmark) else {
            gates.push(BenchmarkGate::indeterminate(
                &m.benchmark,
                "no baseline data for this benchmark",
            ));
            continue;
        };
        if base.quarantined || m.quarantined {
            let side = if base.quarantined {
                "baseline"
            } else {
                "current"
            };
            gates.push(BenchmarkGate::indeterminate(
                &m.benchmark,
                format!("{side} measurement is quarantined"),
            ));
            continue;
        }
        match compare(base, m, detector, policy.confidence) {
            Ok(result) => {
                testable.push((gates.len(), effective_p(&result)));
                gates.push(BenchmarkGate {
                    benchmark: m.benchmark.clone(),
                    status: GateStatus::Pass, // refined below
                    result: Some(result),
                    p_adjusted: None,
                    note: None,
                });
            }
            Err(e) => gates.push(BenchmarkGate::indeterminate(&m.benchmark, e.to_string())),
        }
    }

    let raw: Vec<f64> = testable.iter().map(|&(_, p)| p).collect();
    let adjusted = policy.correction.adjust(&raw);
    for (&(idx, _), adj) in testable.iter().zip(adjusted) {
        let gate = &mut gates[idx];
        gate.p_adjusted = Some(adj);
        let significant = adj <= policy.fdr_q;
        let change = gate.change_frac().unwrap_or(0.0);
        gate.status = if significant && change > policy.max_regression {
            GateStatus::Regressed
        } else if significant && change < 0.0 {
            GateStatus::Improved
        } else {
            if significant && change > 0.0 {
                gate.note = Some(format!(
                    "significant slowdown of {:.2}% is within the {:.2}% tolerance",
                    change * 100.0,
                    policy.max_regression * 100.0
                ));
            }
            GateStatus::Pass
        };
    }

    GateReport {
        policy: policy.clone(),
        benchmarks: gates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::InvocationRecord;

    /// Flat series at `level` with small per-invocation offsets (borrowed
    /// from the compare tests) so the statistics have variance to chew on.
    fn flat(
        name: &str,
        engine: &str,
        level: f64,
        n_inv: usize,
        n_iter: usize,
    ) -> BenchmarkMeasurement {
        let invocations = (0..n_inv)
            .map(|i| {
                let offset = 1.0 + (i as f64 - n_inv as f64 / 2.0) * 0.004;
                InvocationRecord {
                    invocation: i as u32,
                    seed: i as u64,
                    startup_ns: 0.0,
                    iteration_ns: (0..n_iter)
                        .map(|j| level * offset * (1.0 + (j % 3) as f64 * 0.001))
                        .collect(),
                    gc_cycles: 0,
                    jit_compiles: 0,
                    deopts: 0,
                    checksum: String::new(),
                    iteration_counters: None,
                    attempts: 1,
                }
            })
            .collect();
        BenchmarkMeasurement {
            benchmark: name.into(),
            engine: engine.into(),
            invocations,
            censored: Vec::new(),
            quarantined: false,
        }
    }

    fn detector() -> SteadyStateDetector {
        SteadyStateDetector::default()
    }

    #[test]
    fn unchanged_suite_passes() {
        let baseline = vec![
            flat("a", "interp", 100.0, 8, 20),
            flat("b", "interp", 50.0, 8, 20),
        ];
        let mut current = baseline.clone();
        for m in &mut current {
            for (i, r) in m.invocations.iter_mut().enumerate() {
                for t in &mut r.iteration_ns {
                    *t *= 1.0 + ((i * 7 % 5) as f64 - 2.0) * 0.002;
                }
            }
        }
        let report = check_regressions(&baseline, &current, &detector(), &GatePolicy::default());
        assert!(report.passed(), "{report:?}");
        assert!(report
            .benchmarks
            .iter()
            .all(|b| b.status == GateStatus::Pass));
        assert!(report.benchmarks.iter().all(|b| b.p_adjusted.is_some()));
    }

    #[test]
    fn clear_slowdown_regresses() {
        let baseline = vec![flat("a", "interp", 100.0, 8, 20)];
        let current = vec![flat("a", "interp", 130.0, 8, 20)];
        let report = check_regressions(&baseline, &current, &detector(), &GatePolicy::default());
        assert!(!report.passed());
        let gate = &report.benchmarks[0];
        assert_eq!(gate.status, GateStatus::Regressed);
        assert!(gate.change_frac().unwrap() > 0.25);
        assert!(gate.p_adjusted.unwrap() < 0.05);
        let r = gate.result.as_ref().unwrap();
        assert!(r.speedup.upper < 1.0, "{:?}", r.speedup);
    }

    #[test]
    fn clear_speedup_improves() {
        let baseline = vec![flat("a", "interp", 100.0, 8, 20)];
        let current = vec![flat("a", "jit", 60.0, 8, 20)];
        let report = check_regressions(&baseline, &current, &detector(), &GatePolicy::default());
        assert!(report.passed());
        assert_eq!(report.benchmarks[0].status, GateStatus::Improved);
    }

    #[test]
    fn tolerance_turns_a_small_regression_into_a_pass() {
        let baseline = vec![flat("a", "interp", 100.0, 8, 20)];
        let current = vec![flat("a", "interp", 102.0, 8, 20)];
        let strict = check_regressions(&baseline, &current, &detector(), &GatePolicy::default());
        assert_eq!(strict.benchmarks[0].status, GateStatus::Regressed);
        let tolerant = check_regressions(
            &baseline,
            &current,
            &detector(),
            &GatePolicy::default().with_max_regression(0.05),
        );
        assert_eq!(tolerant.benchmarks[0].status, GateStatus::Pass);
        assert!(tolerant.benchmarks[0]
            .note
            .as_ref()
            .unwrap()
            .contains("tolerance"));
    }

    #[test]
    fn missing_baseline_and_quarantine_are_indeterminate_not_failures() {
        let baseline = vec![flat("a", "interp", 100.0, 8, 20)];
        let mut quarantined = flat("a", "interp", 100.0, 8, 20);
        quarantined.quarantined = true;
        let current = vec![quarantined, flat("new", "interp", 10.0, 8, 20)];
        let report = check_regressions(&baseline, &current, &detector(), &GatePolicy::default());
        assert!(report.passed());
        assert_eq!(report.benchmarks.len(), 2);
        assert!(report
            .benchmarks
            .iter()
            .all(|b| b.status == GateStatus::Indeterminate));
        assert!(report.benchmarks[0]
            .note
            .as_ref()
            .unwrap()
            .contains("quarantined"));
        assert!(report.benchmarks[1]
            .note
            .as_ref()
            .unwrap()
            .contains("no baseline"));
    }

    /// All invocations literally identical (what a bit-for-bit
    /// deterministic engine produces): zero variance between invocations.
    fn constant(name: &str, level: f64) -> BenchmarkMeasurement {
        let mut m = flat(name, "interp", level, 4, 12);
        for r in &mut m.invocations {
            for t in &mut r.iteration_ns {
                *t = level;
            }
        }
        m
    }

    #[test]
    fn bit_identical_runs_pass_despite_degenerate_p() {
        // Zero variance on both sides: Welch yields NaN; the collapsed CI
        // at exactly 1.0 must read as "no change", not a rejection.
        let m = [constant("a", 100.0)];
        let report = check_regressions(&m, &m, &detector(), &GatePolicy::default());
        let gate = &report.benchmarks[0];
        assert_eq!(gate.status, GateStatus::Pass, "{gate:?}");
        assert!((gate.p_adjusted.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bit_identical_slowdown_still_regresses() {
        // Zero variance but a real level shift: the collapsed CI excludes
        // 1.0, which must read as the strongest possible rejection.
        let report = check_regressions(
            &[constant("a", 100.0)],
            &[constant("a", 130.0)],
            &detector(),
            &GatePolicy::default(),
        );
        let gate = &report.benchmarks[0];
        assert_eq!(gate.status, GateStatus::Regressed, "{gate:?}");
        assert!(gate.p_adjusted.unwrap() < 1e-12);
    }

    #[test]
    fn correction_is_applied_across_the_suite() {
        // 12 unchanged benchmarks plus one borderline wobble: the wobble's
        // raw p may dip under 0.05, but after BH correction across 13
        // tests it must not fail the gate alone unless it is truly strong.
        let mut baseline: Vec<BenchmarkMeasurement> = (0..12)
            .map(|i| flat(&format!("b{i}"), "interp", 100.0 + i as f64, 8, 20))
            .collect();
        let mut current = baseline.clone();
        for m in &mut current {
            for (i, r) in m.invocations.iter_mut().enumerate() {
                for t in &mut r.iteration_ns {
                    *t *= 1.0 + ((i * 11 % 7) as f64 - 3.0) * 0.001;
                }
            }
        }
        // One genuinely large regression must still be caught.
        baseline.push(flat("big", "interp", 100.0, 8, 20));
        current.push(flat("big", "interp", 140.0, 8, 20));
        let report = check_regressions(&baseline, &current, &detector(), &GatePolicy::default());
        let regressed = report.regressed();
        assert_eq!(regressed.len(), 1, "{report:?}");
        assert_eq!(regressed[0].benchmark, "big");
        // Holm agrees on the big one.
        let holm = check_regressions(
            &baseline,
            &current,
            &detector(),
            &GatePolicy::default().with_correction(Correction::HolmBonferroni),
        );
        assert!(holm.regressed().iter().any(|b| b.benchmark == "big"));
    }

    #[test]
    fn pooling_concatenates_and_reindexes() {
        let r1 = vec![flat("a", "interp", 100.0, 3, 5)];
        let mut r2 = vec![flat("a", "interp", 100.0, 2, 5)];
        r2[0].quarantined = true;
        let pooled = pool_measurements(&[&r1, &r2]);
        assert_eq!(pooled.len(), 1);
        assert_eq!(pooled[0].invocations.len(), 5);
        let idx: Vec<u32> = pooled[0].invocations.iter().map(|r| r.invocation).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
        assert!(pooled[0].quarantined);
    }

    #[test]
    fn correction_parsing() {
        assert_eq!(Correction::parse("bh"), Some(Correction::BenjaminiHochberg));
        assert_eq!(
            Correction::parse("FDR"),
            Some(Correction::BenjaminiHochberg)
        );
        assert_eq!(Correction::parse("holm"), Some(Correction::HolmBonferroni));
        assert_eq!(Correction::parse("fwer"), Some(Correction::HolmBonferroni));
        assert_eq!(Correction::parse("bonferroni?"), None);
        assert_eq!(Correction::BenjaminiHochberg.name(), "bh");
    }

    #[test]
    fn report_serializes_for_json_export() {
        let baseline = vec![flat("a", "interp", 100.0, 8, 20)];
        let current = vec![flat("a", "interp", 130.0, 8, 20)];
        let report = check_regressions(&baseline, &current, &detector(), &GatePolicy::default());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"regressed\""), "{json}");
        assert!(json.contains("\"p_adjusted\""));
        assert!(json.contains("\"correction\":\"bh\""));
    }
}
