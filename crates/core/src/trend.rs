//! Trend analysis: changepoint alerts over a benchmark's archived history.
//!
//! The regression gate ([`crate::regress`]) answers "is HEAD slower than a
//! chosen baseline?". This module answers the longitudinal question the
//! ROADMAP poses: *across the whole archived history, at which run did a
//! benchmark's level shift?* It lifts the binary-segmentation machinery of
//! [`rigor_stats::changepoint`] from intra-invocation iteration series to
//! the inter-run history (Barrett et al., OOPSLA'17, applied across runs),
//! attaches a bootstrap confidence interval to every segment level and to
//! every shift's magnitude (Georges et al., OOPSLA'07 style), and controls
//! the suite-wide false-alarm rate by correcting the shifts' p-values
//! across *benchmarks × changepoints* with [`rigor_stats::fdr`].
//!
//! Like the gate, everything here is pure data-in/data-out: a history is a
//! slice of [`TrendPoint`]s (one per archived run, in archive order).
//! Building those points out of the on-disk archive lives in `rigor-store`,
//! which depends on this crate.
//!
//! The [`synth`] submodule is the calibration harness: a seeded
//! synthetic-history generator (step changes, drift, heteroscedastic noise
//! and no-change nulls) used by the test suite to empirically bound the
//! detector's false-positive rate on null histories and its detection power
//! on known shifts.

use std::fmt;

use rigor_stats::changepoint::{segment, select_penalty_factor, SegmentConfig};
use rigor_stats::{
    bootstrap_mean_ci, bootstrap_ratio_ci, mean, welch_t_test, ConfidenceInterval,
    DEFAULT_RESAMPLES,
};
use serde::json::JsonValue;
use serde::Serialize;

use crate::measurement::BenchmarkMeasurement;
use crate::regress::Correction;
use crate::sequential::MAX_DROP_FRAC;
use crate::steady::{per_invocation_steady_means, SteadyStateDetector};

/// Default minimum number of runs per segment. Two runs at a new level are
/// the earliest point at which a shift is distinguishable from a single
/// outlier run.
pub const DEFAULT_MIN_SEGMENT: usize = 2;

/// Default bootstrap seed for trend CIs; fixed so reports are reproducible.
pub const DEFAULT_TREND_SEED: u64 = 0x7472656e64; // "trend"

/// How the segmentation penalty is chosen (`--penalty auto|bic|<float>`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Penalty {
    /// Stability sweep: the factor in the middle of the widest plateau of
    /// penalty values yielding the same segmentation
    /// ([`rigor_stats::changepoint::select_penalty_factor`]). The default.
    #[default]
    Auto,
    /// Plain BIC (penalty factor 1.0).
    Bic,
    /// An explicit penalty factor.
    Factor(f64),
}

impl Penalty {
    /// Parses a CLI spelling: `auto`, `bic`, or a positive float.
    pub fn parse(s: &str) -> Option<Penalty> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(Penalty::Auto),
            "bic" => Some(Penalty::Bic),
            other => other
                .parse::<f64>()
                .ok()
                .filter(|f| f.is_finite() && *f > 0.0)
                .map(Penalty::Factor),
        }
    }

    /// The concrete penalty factor to segment `values` with.
    pub fn resolve(self, values: &[f64], config: &SegmentConfig) -> f64 {
        match self {
            Penalty::Auto => select_penalty_factor(values, config),
            Penalty::Bic => 1.0,
            Penalty::Factor(f) => f,
        }
    }
}

impl fmt::Display for Penalty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Penalty::Auto => f.write_str("auto"),
            Penalty::Bic => f.write_str("bic"),
            Penalty::Factor(v) => write!(f, "{v}"),
        }
    }
}

impl Serialize for Penalty {
    fn to_value(&self) -> JsonValue {
        match self {
            Penalty::Auto => JsonValue::Str("auto".into()),
            Penalty::Bic => JsonValue::Str("bic".into()),
            Penalty::Factor(v) => v.to_value(),
        }
    }
}

/// One archived run of one benchmark, reduced to its steady-state sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Archive sequence number of the run.
    pub seq: u64,
    /// Content-addressed run id.
    pub run_id: String,
    /// Optional human label of the run.
    pub label: Option<String>,
    /// The run-level steady time: mean of `samples`.
    pub value: f64,
    /// Per-invocation steady means — the run's statistical sample.
    pub samples: Vec<f64>,
}

impl TrendPoint {
    /// Builds a point from raw per-invocation steady means. Returns `None`
    /// on an empty sample.
    pub fn new(seq: u64, run_id: String, label: Option<String>, samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let value = mean(&samples);
        Some(TrendPoint {
            seq,
            run_id,
            label,
            value,
            samples,
        })
    }

    /// Reduces an archived measurement to a point: warmup excised per
    /// invocation, per-invocation steady means as the sample. Quarantined
    /// measurements and runs with no usable steady state yield `None` —
    /// they drop out of the history rather than poisoning it.
    pub fn from_measurement(
        seq: u64,
        run_id: &str,
        label: Option<&str>,
        m: &BenchmarkMeasurement,
        detector: &SteadyStateDetector,
    ) -> Option<Self> {
        if m.quarantined {
            return None;
        }
        let samples = per_invocation_steady_means(m, detector, MAX_DROP_FRAC)?;
        TrendPoint::new(seq, run_id.to_string(), label.map(str::to_string), samples)
    }
}

/// Tuning of the trend analysis.
#[derive(Debug, Clone, Serialize)]
pub struct TrendConfig {
    /// Minimum runs per segment (`--min-segment`); also the "newly
    /// detected" window for shift-at-HEAD alerts.
    pub min_segment: usize,
    /// How the segmentation penalty is chosen (`--penalty`).
    pub penalty: Penalty,
    /// Confidence level of segment-level and magnitude CIs.
    pub confidence: f64,
    /// Significance level applied to *corrected* p-values.
    pub fdr_q: f64,
    /// Multiple-comparison correction across benchmarks × changepoints.
    pub correction: Correction,
    /// Bootstrap resamples for the CIs.
    pub resamples: usize,
    /// Bootstrap seed; fixed by default so reports are reproducible.
    pub seed: u64,
    /// Hard cap on segments per benchmark.
    pub max_segments: usize,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            min_segment: DEFAULT_MIN_SEGMENT,
            penalty: Penalty::default(),
            confidence: 0.95,
            fdr_q: 0.05,
            correction: Correction::default(),
            resamples: DEFAULT_RESAMPLES,
            seed: DEFAULT_TREND_SEED,
            max_segments: 16,
        }
    }
}

impl TrendConfig {
    /// Sets the minimum runs per segment (builder style).
    pub fn with_min_segment(mut self, min: usize) -> Self {
        self.min_segment = min;
        self
    }

    /// Sets the penalty selection (builder style).
    pub fn with_penalty(mut self, penalty: Penalty) -> Self {
        self.penalty = penalty;
        self
    }

    /// Sets the CI confidence level (builder style).
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Sets the corrected significance level (builder style).
    pub fn with_fdr_q(mut self, q: f64) -> Self {
        self.fdr_q = q;
        self
    }

    /// Sets the correction procedure (builder style).
    pub fn with_correction(mut self, correction: Correction) -> Self {
        self.correction = correction;
        self
    }

    /// Sets the bootstrap seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Direction of a level shift, in *time* terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftDirection {
    /// The new level is slower (larger times) — the alarming direction.
    Slower,
    /// The new level is faster.
    Faster,
}

impl ShiftDirection {
    /// Stable wire name (`"slower"` / `"faster"`).
    pub fn name(self) -> &'static str {
        match self {
            ShiftDirection::Slower => "slower",
            ShiftDirection::Faster => "faster",
        }
    }
}

impl fmt::Display for ShiftDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for ShiftDirection {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.name().to_string())
    }
}

/// A benchmark's overall trend verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendStatus {
    /// One level across the whole history (no significant shift).
    Stable,
    /// At least one statistically significant level shift.
    Shifted,
    /// Too few archived runs to segment (fewer than `2 × min_segment`).
    InsufficientData,
}

impl TrendStatus {
    /// Stable wire name (`"stable"` / `"shifted"` / `"insufficient-data"`).
    pub fn name(self) -> &'static str {
        match self {
            TrendStatus::Stable => "stable",
            TrendStatus::Shifted => "shifted",
            TrendStatus::InsufficientData => "insufficient-data",
        }
    }
}

impl Serialize for TrendStatus {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.name().to_string())
    }
}

/// One constant-level stretch of a benchmark's history.
#[derive(Debug, Clone, Serialize)]
pub struct TrendSegment {
    /// First run index of the segment (into the analyzed history).
    pub start: usize,
    /// One past the last run index.
    pub end: usize,
    /// Archive sequence number of the segment's first run.
    pub first_seq: u64,
    /// Archive sequence number of the segment's last run.
    pub last_seq: u64,
    /// Number of runs in the segment.
    pub runs: usize,
    /// Level estimate: mean over the segment's pooled invocation samples.
    pub mean: f64,
    /// Bootstrap CI on the level (`None` when the pooled sample is
    /// degenerate).
    pub ci: Option<ConfidenceInterval>,
}

/// One detected level shift.
#[derive(Debug, Clone, Serialize)]
pub struct Changepoint {
    /// Run index (into the analyzed history) where the new level starts.
    pub index: usize,
    /// Archive sequence number of that run.
    pub seq: u64,
    /// Content-addressed id of that run — the run that shifted.
    pub run_id: String,
    /// Whether the new level is slower or faster.
    pub direction: ShiftDirection,
    /// Level before the shift (pooled mean of the preceding segment).
    pub before_mean: f64,
    /// Level after the shift (pooled mean of the following segment).
    pub after_mean: f64,
    /// Bootstrap CI on the magnitude, as the time ratio `after / before`
    /// (> 1 = slower).
    pub magnitude: Option<ConfidenceInterval>,
    /// Raw Welch p-value of the shift (degenerate zero-variance cases are
    /// resolved from the collapsed magnitude CI, as in the gate).
    pub p_raw: f64,
    /// The p-value after correction across benchmarks × changepoints.
    pub p_adjusted: Option<f64>,
    /// True when `p_adjusted ≤ fdr_q`.
    pub significant: bool,
    /// True when this shift starts the final segment and that segment is
    /// still within `min_segment` runs of HEAD — i.e. the shift has only
    /// just become detectable. This is what `rigor trend` alerts on.
    pub at_head: bool,
}

/// One benchmark's trend over its archived history.
#[derive(Debug, Clone, Serialize)]
pub struct BenchmarkTrend {
    /// Benchmark name.
    pub benchmark: String,
    /// Number of usable archived runs analyzed.
    pub runs: usize,
    /// The verdict.
    pub status: TrendStatus,
    /// The resolved segmentation penalty factor (`None` when the history
    /// was too short to analyze).
    pub penalty_factor: Option<f64>,
    /// Constant-level stretches, in history order.
    pub segments: Vec<TrendSegment>,
    /// Detected shifts between adjacent segments, in history order.
    pub changepoints: Vec<Changepoint>,
    /// Human-readable context (why data was insufficient).
    pub note: Option<String>,
}

impl BenchmarkTrend {
    /// The significant newly-detected shift at HEAD, if any — what turns
    /// into an alert (and exit code 1).
    pub fn alert(&self) -> Option<&Changepoint> {
        self.changepoints
            .iter()
            .find(|c| c.significant && c.at_head)
    }

    /// All significant shifts, old or new.
    pub fn significant_shifts(&self) -> Vec<&Changepoint> {
        self.changepoints.iter().filter(|c| c.significant).collect()
    }
}

/// The whole suite's trend report.
#[derive(Debug, Clone, Serialize)]
pub struct TrendReport {
    /// The configuration the analysis ran under.
    pub config: TrendConfig,
    /// Per-benchmark trends, in input order.
    pub benchmarks: Vec<BenchmarkTrend>,
}

impl TrendReport {
    /// Benchmarks with a significant newly-detected shift at HEAD — the
    /// alerts `rigor trend` exits 1 on.
    pub fn alerts(&self) -> Vec<&BenchmarkTrend> {
        self.benchmarks
            .iter()
            .filter(|b| b.alert().is_some())
            .collect()
    }

    /// Total number of significant shifts across the suite.
    pub fn significant_count(&self) -> usize {
        self.benchmarks
            .iter()
            .map(|b| b.significant_shifts().len())
            .sum()
    }

    /// Total number of detected changepoints (significant or not).
    pub fn changepoint_count(&self) -> usize {
        self.benchmarks.iter().map(|b| b.changepoints.len()).sum()
    }
}

/// Deterministic per-(benchmark, slot) bootstrap seed (FNV-1a over the
/// benchmark name, mixed with the base seed and a slot tag) so every CI in
/// a report is reproducible yet decorrelated.
fn derive_seed(base: u64, benchmark: &str, tag: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base;
    for b in benchmark.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= tag;
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

/// Analyzes one benchmark's history; p-values are raw until the caller
/// corrects them suite-wide.
fn analyze_one(benchmark: &str, points: &[TrendPoint], config: &TrendConfig) -> BenchmarkTrend {
    let min_seg = config.min_segment.max(1);
    let n = points.len();
    if n < 2 * min_seg {
        return BenchmarkTrend {
            benchmark: benchmark.to_string(),
            runs: n,
            status: TrendStatus::InsufficientData,
            penalty_factor: None,
            segments: Vec::new(),
            changepoints: Vec::new(),
            note: Some(format!(
                "insufficient data: {n} usable run(s) archived, trend analysis \
                 needs at least {} (2 × min-segment {min_seg})",
                2 * min_seg
            )),
        };
    }

    let values: Vec<f64> = points.iter().map(|p| p.value).collect();
    let seg_config = SegmentConfig {
        min_segment_len: min_seg,
        penalty_factor: 1.0,
        max_segments: config.max_segments,
    };
    let factor = config.penalty.resolve(&values, &seg_config);
    let segs = segment(
        &values,
        &SegmentConfig {
            penalty_factor: factor,
            ..seg_config
        },
    );

    // Pool every run's invocation samples per segment: the segment level
    // and all shift statistics are computed over invocations, not run
    // means, so wide runs weigh in proportionally.
    let pooled: Vec<Vec<f64>> = segs
        .iter()
        .map(|s| {
            points[s.start..s.end]
                .iter()
                .flat_map(|p| p.samples.iter().copied())
                .collect()
        })
        .collect();

    let segments: Vec<TrendSegment> = segs
        .iter()
        .zip(&pooled)
        .enumerate()
        .map(|(i, (s, sample))| TrendSegment {
            start: s.start,
            end: s.end,
            first_seq: points[s.start].seq,
            last_seq: points[s.end - 1].seq,
            runs: s.end - s.start,
            mean: mean(sample),
            ci: bootstrap_mean_ci(
                sample,
                config.confidence,
                config.resamples,
                derive_seed(config.seed, benchmark, 2 * i as u64),
            ),
        })
        .collect();

    let changepoints: Vec<Changepoint> = (1..segments.len())
        .map(|i| {
            let (before, after) = (&pooled[i - 1], &pooled[i]);
            let (before_mean, after_mean) = (segments[i - 1].mean, segments[i].mean);
            let index = segments[i].start;
            let magnitude = bootstrap_ratio_ci(
                after,
                before,
                config.confidence,
                config.resamples,
                derive_seed(config.seed, benchmark, 2 * i as u64 + 1),
            );
            // Bit-identical deterministic runs have zero variance: Welch
            // degenerates; resolve the p from the collapsed magnitude CI
            // exactly as the regression gate does.
            let p_raw = match welch_t_test(before, after) {
                Some(t) if !t.p_value.is_nan() => t.p_value,
                _ => match &magnitude {
                    Some(ci) if ci.excludes(1.0) => 0.0,
                    _ => 1.0,
                },
            };
            Changepoint {
                index,
                seq: points[index].seq,
                run_id: points[index].run_id.clone(),
                direction: if after_mean > before_mean {
                    ShiftDirection::Slower
                } else {
                    ShiftDirection::Faster
                },
                before_mean,
                after_mean,
                magnitude,
                p_raw,
                p_adjusted: None,
                significant: false,
                at_head: i == segments.len() - 1 && n - index <= min_seg,
            }
        })
        .collect();

    BenchmarkTrend {
        benchmark: benchmark.to_string(),
        runs: n,
        status: TrendStatus::Stable, // refined after correction
        penalty_factor: Some(factor),
        segments,
        changepoints,
        note: None,
    }
}

/// Analyzes every benchmark's history and corrects significance across the
/// whole family of *benchmarks × changepoints* — each detected shift is one
/// hypothesis test, and a 20-benchmark archive scanned nightly would
/// false-alarm weekly without the correction.
pub fn analyze_trends(
    histories: &[(String, Vec<TrendPoint>)],
    config: &TrendConfig,
) -> TrendReport {
    let mut benchmarks: Vec<BenchmarkTrend> = histories
        .iter()
        .map(|(name, points)| analyze_one(name, points, config))
        .collect();

    let mut slots: Vec<(usize, usize)> = Vec::new();
    let mut raw: Vec<f64> = Vec::new();
    for (bi, b) in benchmarks.iter().enumerate() {
        for (ci, c) in b.changepoints.iter().enumerate() {
            slots.push((bi, ci));
            raw.push(c.p_raw);
        }
    }
    let adjusted = config.correction.adjust(&raw);
    for ((bi, ci), adj) in slots.into_iter().zip(adjusted) {
        let cp = &mut benchmarks[bi].changepoints[ci];
        cp.p_adjusted = Some(adj);
        cp.significant = adj <= config.fdr_q;
    }
    for b in &mut benchmarks {
        if b.status != TrendStatus::InsufficientData {
            b.status = if b.changepoints.iter().any(|c| c.significant) {
                TrendStatus::Shifted
            } else {
                TrendStatus::Stable
            };
        }
    }

    TrendReport {
        config: config.clone(),
        benchmarks,
    }
}

/// Analyzes a single benchmark's history (correction degenerates to the
/// single-benchmark family).
pub fn analyze_trend(
    benchmark: &str,
    points: &[TrendPoint],
    config: &TrendConfig,
) -> BenchmarkTrend {
    analyze_trends(&[(benchmark.to_string(), points.to_vec())], config)
        .benchmarks
        .pop()
        .expect("one history in, one trend out")
}

/// Calibration harness: seeded synthetic histories with known ground truth.
///
/// The test suite uses these to *measure* the detector instead of trusting
/// it: the empirical false-positive rate over hundreds of null histories
/// must stay at or below the configured FDR level, and a known injected
/// step must be found at (±1 run) the injected index.
pub mod synth {
    use super::*;

    /// Ground-truth shape of a synthetic history.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Shape {
        /// No change: one level end to end.
        Null,
        /// A step: runs `at..` shift to `level × (1 + frac)`.
        Step {
            /// Run index where the new level starts.
            at: usize,
            /// Relative level change (positive = slower).
            frac: f64,
        },
        /// A linear drift from `level` to `level × (1 + total_frac)`.
        Drift {
            /// Total relative change across the whole history.
            total_frac: f64,
        },
    }

    /// A reproducible synthetic history generator.
    #[derive(Debug, Clone)]
    pub struct SynthHistory {
        /// Number of runs.
        pub runs: usize,
        /// Invocation samples per run.
        pub samples_per_run: usize,
        /// Base level (ns).
        pub level: f64,
        /// Per-sample noise standard deviation as a fraction of the level.
        pub rel_noise: f64,
        /// When true, the noise scale varies from run to run (0.5×–1.5×),
        /// modelling machines whose variance is itself unstable.
        pub heteroscedastic: bool,
        /// Ground-truth shape.
        pub shape: Shape,
        /// Generator seed.
        pub seed: u64,
    }

    impl Default for SynthHistory {
        fn default() -> Self {
            SynthHistory {
                runs: 30,
                samples_per_run: 5,
                level: 1000.0,
                rel_noise: 0.01,
                heteroscedastic: false,
                shape: Shape::Null,
                seed: 1,
            }
        }
    }

    /// splitmix64: tiny, seedable, and plenty for synthetic noise.
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn uniform(state: &mut u64) -> f64 {
        (next(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    impl SynthHistory {
        /// Sets the shape (builder style).
        pub fn with_shape(mut self, shape: Shape) -> Self {
            self.shape = shape;
            self
        }

        /// Sets the seed (builder style).
        pub fn with_seed(mut self, seed: u64) -> Self {
            self.seed = seed;
            self
        }

        /// The noise standard deviation of a *run value* (the mean of
        /// `samples_per_run` samples) — what "a 3σ step" is measured in.
        pub fn value_sigma(&self) -> f64 {
            self.level * self.rel_noise / (self.samples_per_run as f64).sqrt()
        }

        /// Generates the history, deterministically from the seed.
        pub fn generate(&self) -> Vec<TrendPoint> {
            let mut state = self.seed.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ 0x6368_616e_6765; // "change"
            (0..self.runs)
                .map(|r| {
                    let shape_level = match self.shape {
                        Shape::Null => self.level,
                        Shape::Step { at, frac } => {
                            if r >= at {
                                self.level * (1.0 + frac)
                            } else {
                                self.level
                            }
                        }
                        Shape::Drift { total_frac } => {
                            let t = r as f64 / (self.runs.max(2) - 1) as f64;
                            self.level * (1.0 + total_frac * t)
                        }
                    };
                    let scale = if self.heteroscedastic {
                        self.rel_noise * (0.5 + uniform(&mut state))
                    } else {
                        self.rel_noise
                    };
                    // Uniform noise of standard deviation `scale × level`:
                    // half-width a = σ·√3.
                    let a = scale * self.level * 3f64.sqrt();
                    let samples: Vec<f64> = (0..self.samples_per_run)
                        .map(|_| shape_level + (2.0 * uniform(&mut state) - 1.0) * a)
                        .collect();
                    let run_id = format!("{:016x}{:016x}", next(&mut state), r as u64);
                    TrendPoint::new(r as u64, run_id, None, samples).expect("non-empty sample")
                })
                .collect()
        }
    }

    /// Fraction of seeded null replications that raise any significant
    /// changepoint — the empirical false-positive rate of the detector
    /// under `config`. Replication `i` uses seed `base.seed + i`.
    pub fn null_alert_rate(base: &SynthHistory, replications: usize, config: &TrendConfig) -> f64 {
        let mut alerts = 0usize;
        for i in 0..replications {
            let points = base
                .clone()
                .with_shape(Shape::Null)
                .with_seed(base.seed.wrapping_add(i as u64))
                .generate();
            let trend = analyze_trend("null", &points, config);
            if !trend.significant_shifts().is_empty() {
                alerts += 1;
            }
        }
        alerts as f64 / replications.max(1) as f64
    }

    /// Index of the most significant detected shift (smallest adjusted
    /// p-value), if any. Binary segmentation can surface secondary
    /// within-noise splits next to a large true step, so localization is
    /// judged against the dominant shift, not whichever comes first.
    pub fn detected_shift_index(history: &SynthHistory, config: &TrendConfig) -> Option<usize> {
        let points = history.generate();
        let trend = analyze_trend("synthetic", &points, config);
        trend
            .significant_shifts()
            .iter()
            .min_by(|a, b| {
                let pa = a.p_adjusted.unwrap_or(a.p_raw);
                let pb = b.p_adjusted.unwrap_or(b.p_raw);
                pa.total_cmp(&pb)
            })
            .map(|c| c.index)
    }
}

#[cfg(test)]
mod tests {
    use super::synth::{Shape, SynthHistory};
    use super::*;

    fn history(levels: &[(f64, usize)], samples: usize, jitter: f64) -> Vec<TrendPoint> {
        let mut points = Vec::new();
        let mut seq = 0u64;
        for &(level, runs) in levels {
            for r in 0..runs {
                let s: Vec<f64> = (0..samples)
                    .map(|j| level * (1.0 + ((j + r) % 3) as f64 * jitter))
                    .collect();
                points.push(TrendPoint::new(seq, format!("run{seq:027}aaaaa"), None, s).unwrap());
                seq += 1;
            }
        }
        points
    }

    #[test]
    fn stable_history_has_one_segment_and_no_alerts() {
        let points = history(&[(100.0, 10)], 5, 0.002);
        let trend = analyze_trend("bench", &points, &TrendConfig::default());
        assert_eq!(trend.status, TrendStatus::Stable);
        assert_eq!(trend.segments.len(), 1);
        assert!(trend.changepoints.is_empty());
        assert!(trend.alert().is_none());
        assert_eq!(trend.segments[0].runs, 10);
        assert!(trend.segments[0].ci.is_some());
    }

    #[test]
    fn step_history_names_the_shifting_run() {
        let points = history(&[(100.0, 6), (130.0, 4)], 5, 0.002);
        let trend = analyze_trend("bench", &points, &TrendConfig::default());
        assert_eq!(trend.status, TrendStatus::Shifted, "{trend:?}");
        assert_eq!(trend.segments.len(), 2);
        let cp = &trend.changepoints[0];
        assert_eq!(cp.index, 6);
        assert_eq!(cp.seq, 6);
        assert_eq!(cp.run_id, points[6].run_id);
        assert_eq!(cp.direction, ShiftDirection::Slower);
        assert!(cp.significant);
        assert!(cp.p_adjusted.unwrap() <= 0.05);
        let magnitude = cp.magnitude.as_ref().unwrap();
        assert!(
            magnitude.lower > 1.2 && magnitude.upper < 1.4,
            "{magnitude:?}"
        );
        // Shift four runs before HEAD with min_segment 2: old news, no alert.
        assert!(!cp.at_head);
        assert!(trend.alert().is_none());
    }

    #[test]
    fn shift_at_head_raises_an_alert() {
        let points = history(&[(100.0, 6), (130.0, 2)], 5, 0.002);
        let trend = analyze_trend("bench", &points, &TrendConfig::default());
        let cp = trend.alert().expect("significant shift at HEAD");
        assert_eq!(cp.index, 6);
        assert!(cp.at_head);
        assert_eq!(cp.direction, ShiftDirection::Slower);
    }

    #[test]
    fn speedups_shift_faster_but_also_alert() {
        let points = history(&[(100.0, 6), (70.0, 2)], 5, 0.002);
        let trend = analyze_trend("bench", &points, &TrendConfig::default());
        let cp = trend.alert().expect("faster is still a level shift");
        assert_eq!(cp.direction, ShiftDirection::Faster);
        assert!(cp.magnitude.as_ref().unwrap().upper < 1.0);
    }

    #[test]
    fn short_history_is_insufficient_not_a_panic() {
        for n in 0..4 {
            let points = history(&[(100.0, n)], 4, 0.002);
            let trend = analyze_trend("bench", &points, &TrendConfig::default());
            assert_eq!(trend.status, TrendStatus::InsufficientData, "n = {n}");
            assert!(trend.segments.is_empty());
            assert!(trend.changepoints.is_empty());
            assert!(trend.note.as_ref().unwrap().contains("insufficient data"));
        }
        // Exactly 2 × min_segment runs is enough.
        let points = history(&[(100.0, 4)], 4, 0.002);
        let trend = analyze_trend("bench", &points, &TrendConfig::default());
        assert_eq!(trend.status, TrendStatus::Stable);
    }

    #[test]
    fn zero_min_segment_is_clamped() {
        let points = history(&[(100.0, 2)], 4, 0.002);
        let cfg = TrendConfig::default().with_min_segment(0);
        let trend = analyze_trend("bench", &points, &cfg);
        // min_segment clamps to 1, so 2 runs are analyzable.
        assert_ne!(trend.status, TrendStatus::InsufficientData);
    }

    #[test]
    fn bit_identical_runs_with_a_shift_still_resolve() {
        // Zero within- and between-run variance: Welch degenerates, and the
        // collapsed magnitude CI must resolve the p-value, as in the gate.
        let points = history(&[(100.0, 4), (130.0, 2)], 4, 0.0);
        let trend = analyze_trend("bench", &points, &TrendConfig::default());
        let cp = trend.alert().expect("degenerate shift still alerts");
        assert_eq!(cp.p_raw, 0.0);
        assert!(cp.significant);
    }

    #[test]
    fn fdr_is_corrected_across_benchmarks() {
        // One real shift among several stable benchmarks: the correction
        // spans the whole family, so p_adjusted ≥ p_raw for the shift.
        let mut histories: Vec<(String, Vec<TrendPoint>)> = (0..4)
            .map(|i| {
                (
                    format!("flat{i}"),
                    history(&[(100.0 + i as f64, 8)], 5, 0.002),
                )
            })
            .collect();
        histories.push((
            "shifty".into(),
            history(&[(100.0, 6), (140.0, 2)], 5, 0.002),
        ));
        let report = analyze_trends(&histories, &TrendConfig::default());
        assert_eq!(report.benchmarks.len(), 5);
        let alerts = report.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].benchmark, "shifty");
        let cp = alerts[0].alert().unwrap();
        assert!(cp.p_adjusted.unwrap() >= cp.p_raw);
        assert_eq!(report.significant_count(), 1);
    }

    #[test]
    fn quarantined_and_unsteady_runs_drop_out() {
        let m = BenchmarkMeasurement {
            benchmark: "b".into(),
            engine: "interp".into(),
            invocations: Vec::new(),
            censored: Vec::new(),
            quarantined: true,
        };
        let det = SteadyStateDetector::default();
        assert!(TrendPoint::from_measurement(0, "id", None, &m, &det).is_none());
    }

    #[test]
    fn penalty_parses_and_displays() {
        assert_eq!(Penalty::parse("auto"), Some(Penalty::Auto));
        assert_eq!(Penalty::parse("AUTO"), Some(Penalty::Auto));
        assert_eq!(Penalty::parse("bic"), Some(Penalty::Bic));
        assert_eq!(Penalty::parse("2.5"), Some(Penalty::Factor(2.5)));
        assert_eq!(Penalty::parse("bogus"), None);
        assert_eq!(Penalty::parse("-1"), None);
        assert_eq!(Penalty::parse("0"), None);
        assert_eq!(Penalty::parse("nan"), None);
        assert_eq!(Penalty::Auto.to_string(), "auto");
        assert_eq!(Penalty::Factor(2.5).to_string(), "2.5");
    }

    #[test]
    fn report_serializes_for_json_export() {
        let histories = vec![(
            "bench".to_string(),
            history(&[(100.0, 6), (130.0, 2)], 5, 0.002),
        )];
        let report = analyze_trends(&histories, &TrendConfig::default());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"benchmark\":\"bench\""), "{json}");
        assert!(json.contains("\"changepoints\""));
        assert!(json.contains("\"p_adjusted\""));
        assert!(json.contains("\"at_head\":true"));
        assert!(json.contains("\"penalty\":\"auto\""));
        assert!(json.contains("\"direction\":\"slower\""));
    }

    #[test]
    fn synthetic_null_histories_rarely_alert() {
        // A quick in-crate sanity bound; the full 200-replication
        // calibration lives in the integration suite.
        let rate = synth::null_alert_rate(&SynthHistory::default(), 40, &TrendConfig::default());
        assert!(rate <= 0.05, "empirical FPR {rate} over 40 null histories");
    }

    #[test]
    fn synthetic_step_is_located() {
        let base = SynthHistory::default();
        let step = 3.0 * base.value_sigma() / base.level;
        let h = base
            .with_shape(Shape::Step { at: 20, frac: step })
            .with_seed(7);
        let found = synth::detected_shift_index(&h, &TrendConfig::default());
        let idx = found.expect("3σ step detected") as i64;
        assert!((idx - 20).abs() <= 1, "located at {idx}");
    }

    #[test]
    fn synthetic_generator_is_deterministic() {
        let h = SynthHistory::default().with_seed(42);
        let a = h.generate();
        let b = h.generate();
        assert_eq!(a, b);
        let c = SynthHistory::default().with_seed(43).generate();
        assert_ne!(a[0].samples, c[0].samples);
        assert_eq!(a.len(), 30);
        assert_eq!(a[0].samples.len(), 5);
        assert_eq!(a[0].run_id.len(), 32);
    }

    #[test]
    fn drift_and_heteroscedastic_shapes_generate() {
        let drift = SynthHistory::default()
            .with_shape(Shape::Drift { total_frac: 0.2 })
            .generate();
        assert!(drift.last().unwrap().value > drift.first().unwrap().value);
        let hetero = SynthHistory {
            heteroscedastic: true,
            ..SynthHistory::default()
        };
        let pts = hetero.generate();
        assert_eq!(pts.len(), 30);
    }
}
