//! Steady-state detection.
//!
//! Two detectors, mirroring the literature:
//!
//! * **CoV window** (Georges et al., OOPSLA'07): steady state begins at the
//!   first iteration from which a window of `k` iterations has coefficient of
//!   variation below a threshold.
//! * **Changepoint** (Barrett et al., OOPSLA'17): segment the series into
//!   mean-shift segments; steady state is the final segment, provided it
//!   covers enough of the series tail.

use rigor_stats::changepoint::{merge_equivalent, segment, SegmentConfig};
use rigor_stats::descriptive::cov;
use serde::{Deserialize, Serialize};

/// Relative tolerance under which adjacent changepoint segments count as the
/// same performance level (see [`rigor_stats::changepoint::merge_equivalent`]).
pub const SEGMENT_MERGE_TOL: f64 = 0.02;

/// Outcome of steady-state detection on one iteration series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SteadyState {
    /// Steady from this iteration index (inclusive).
    Reached {
        /// First steady iteration.
        start: usize,
    },
    /// The series never settles (within this detector's terms).
    NotReached,
}

impl SteadyState {
    /// The steady start, if reached.
    pub fn start(&self) -> Option<usize> {
        match self {
            SteadyState::Reached { start } => Some(*start),
            SteadyState::NotReached => None,
        }
    }
}

/// A steady-state detection strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SteadyStateDetector {
    /// Georges-style sliding window: steady when `window` consecutive
    /// iterations have CoV below `threshold`.
    CovWindow {
        /// Window length in iterations.
        window: usize,
        /// CoV threshold (0.02 = 2% is the conventional setting).
        threshold: f64,
    },
    /// Changepoint segmentation: steady = start of the final segment when it
    /// covers at least `min_tail_frac` of the series.
    Changepoint {
        /// Segmentation parameters.
        config: SegmentConfig,
        /// Minimum fraction of the series the final segment must cover.
        min_tail_frac: f64,
    },
    /// Tail-reference detection, robust to spike mixtures: the tail of the
    /// series defines the steady level (median/MAD of the last quarter);
    /// steady state begins after the initial run of iterations that sit
    /// outside the tail's tolerance band, provided the remainder is
    /// stationary (its halves agree and no long out-of-band run remains).
    ///
    /// This is the methodology's recommended detector: unlike mean-shift
    /// segmentation it is untroubled by bimodal GC/jitter spike mixtures,
    /// and unlike median filters it still catches single-iteration warmup.
    RobustTail {
        /// Relative tolerance band around the tail median (0.02 = 2%).
        rel_tol: f64,
        /// Tolerance band also includes `mad_k` tail MADs (whichever wider).
        mad_k: f64,
        /// Steady state must begin within this fraction of the series.
        max_start_frac: f64,
    },
}

impl Default for SteadyStateDetector {
    fn default() -> Self {
        // The robust tail-reference detector is the methodology's
        // recommended default; the others are kept for comparison.
        SteadyStateDetector::robust_tail()
    }
}

impl SteadyStateDetector {
    /// The conventional CoV-window detector (window 5, threshold 2%).
    pub fn cov_window() -> Self {
        SteadyStateDetector::CovWindow {
            window: 5,
            threshold: 0.02,
        }
    }

    /// The changepoint detector with default segmentation and a 25% tail
    /// requirement.
    pub fn changepoint() -> Self {
        SteadyStateDetector::Changepoint {
            config: SegmentConfig::default(),
            min_tail_frac: 0.25,
        }
    }

    /// The robust tail-reference detector with conventional parameters.
    /// The 3% band treats sub-noise-floor level shifts (e.g. a tiny loop
    /// compiling late and shaving ~2%) as the same performance level;
    /// Ablation A3 sweeps this choice.
    pub fn robust_tail() -> Self {
        SteadyStateDetector::RobustTail {
            rel_tol: 0.03,
            mad_k: 5.0,
            max_start_frac: 0.7,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SteadyStateDetector::CovWindow { .. } => "cov-window",
            SteadyStateDetector::Changepoint { .. } => "changepoint",
            SteadyStateDetector::RobustTail { .. } => "robust-tail",
        }
    }

    /// Detects steady state in a per-iteration timing series.
    ///
    /// ```
    /// use rigor::{SteadyState, SteadyStateDetector};
    ///
    /// // A JIT-like series: one slow compile iteration, then steady.
    /// let mut series = vec![900.0];
    /// series.extend(vec![240.0; 30]);
    /// let detector = SteadyStateDetector::default();
    /// assert_eq!(detector.detect(&series), SteadyState::Reached { start: 1 });
    /// ```
    pub fn detect(&self, times: &[f64]) -> SteadyState {
        match self {
            SteadyStateDetector::CovWindow { window, threshold } => {
                detect_cov_window(times, *window, *threshold)
            }
            SteadyStateDetector::Changepoint {
                config,
                min_tail_frac,
            } => detect_changepoint(times, config, *min_tail_frac),
            SteadyStateDetector::RobustTail {
                rel_tol,
                mad_k,
                max_start_frac,
            } => detect_robust_tail(times, *rel_tol, *mad_k, *max_start_frac),
        }
    }
}

/// Computes the robust tail profile of a series: the reference level
/// (median of the last quarter) and the tolerance band around it
/// (`mad_k` tail MADs, floored at `rel_tol` of the reference).
pub fn tail_profile(times: &[f64], rel_tol: f64, mad_k: f64) -> (f64, f64) {
    let n = times.len();
    let tail = &times[n - (n / 4).max(4.min(n))..];
    let reference = rigor_stats::median(tail);
    let band = (mad_k * rigor_stats::mad(tail)).max(rel_tol * reference.abs());
    (reference, band)
}

fn detect_robust_tail(times: &[f64], rel_tol: f64, mad_k: f64, max_start_frac: f64) -> SteadyState {
    let n = times.len();
    if n < 8 {
        return SteadyState::NotReached;
    }
    // Reference level and scale from the last quarter: the part of the series
    // least contaminated by warmup.
    let (reference, band) = tail_profile(times, rel_tol, mad_k);
    let out_of_band = |x: f64| (x - reference).abs() > band;

    // Steady state begins after the initial consecutive out-of-band run —
    // this catches even a single slow compile iteration, which smoothing
    // detectors erase.
    let start = times.iter().position(|&x| !out_of_band(x)).unwrap_or(n);
    if (start as f64) > max_start_frac * n as f64 {
        return SteadyState::NotReached;
    }
    let rest = &times[start..];

    // Stationarity of the remainder, part 1: its halves must sit at the same
    // level (catches end-of-series drift). The comparison scale comes from
    // lag-1 differences, not the raw tail MAD — a drifting tail inflates its
    // own MAD and would otherwise mask the drift.
    let diffs: Vec<f64> = rest.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
    let sigma_d = rigor_stats::median(&diffs) / (0.6745 * std::f64::consts::SQRT_2);
    let halves_band = (mad_k * sigma_d).max(rel_tol * reference.abs());
    let (a, b) = rest.split_at(rest.len() / 2);
    if (rigor_stats::median(a) - rigor_stats::median(b)).abs() > halves_band {
        return SteadyState::NotReached;
    }
    // Part 2: no sustained out-of-band run (isolated GC/jitter spikes are
    // fine; multi-iteration phases at another level are not).
    let max_run = 3usize.max(rest.len() / 8);
    let mut run = 0usize;
    for &x in rest {
        if out_of_band(x) {
            run += 1;
            if run > max_run {
                return SteadyState::NotReached;
            }
        } else {
            run = 0;
        }
    }
    SteadyState::Reached { start }
}

fn detect_cov_window(times: &[f64], window: usize, threshold: f64) -> SteadyState {
    if times.len() < window || window < 2 {
        return SteadyState::NotReached;
    }
    for start in 0..=(times.len() - window) {
        let w = &times[start..start + window];
        let c = cov(w);
        if c.is_finite() && c < threshold {
            return SteadyState::Reached { start };
        }
    }
    SteadyState::NotReached
}

fn detect_changepoint(times: &[f64], config: &SegmentConfig, min_tail_frac: f64) -> SteadyState {
    if times.is_empty() {
        return SteadyState::NotReached;
    }
    // Outlier handling first (Barrett et al.): GC pauses and OS-jitter tails
    // puncture the series; left in, they fragment the segmentation and no
    // tail segment ever spans the required fraction.
    let cleaned = rigor_stats::despike(times, 8.0);
    // Collapse sub-tolerance mean shifts: a 1% wobble between "segments" is
    // noise for steady-state purposes, not a phase change.
    let segs = merge_equivalent(&segment(&cleaned, config), SEGMENT_MERGE_TOL);
    let last = match segs.last() {
        Some(s) => s,
        None => return SteadyState::NotReached,
    };
    if (last.len() as f64) < min_tail_frac * times.len() as f64 {
        return SteadyState::NotReached;
    }
    SteadyState::Reached { start: last.start }
}

/// Detects steady state per invocation and returns, for each series, the
/// detected start (or `None`). The conventional experiment then takes the
/// maximum start across invocations (conservative alignment).
pub fn detect_all<'a, I>(series: I, detector: &SteadyStateDetector) -> Vec<Option<usize>>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    series
        .into_iter()
        .map(|s| detector.detect(s).start())
        .collect()
}

/// Per-invocation steady-state means: each converged invocation contributes
/// the mean of its own steady window; non-converged invocations are dropped.
/// Returns `None` when more than `max_drop_frac` of invocations failed to
/// converge (the measurement as a whole is then untrustworthy).
///
/// This is the sample the sequential-sampling procedure feeds into CIs: with
/// many invocations, insisting that *every* one converges (as
/// [`common_steady_start`] does) becomes ever harder to satisfy, while a
/// bounded exclusion rate keeps the estimate honest and reported.
pub fn per_invocation_steady_means(
    measurement: &crate::measurement::BenchmarkMeasurement,
    detector: &SteadyStateDetector,
    max_drop_frac: f64,
) -> Option<Vec<f64>> {
    let total = measurement.n_invocations();
    if total == 0 {
        return None;
    }
    let mut means = Vec::with_capacity(total);
    for record in &measurement.invocations {
        if let SteadyState::Reached { start } = detector.detect(&record.iteration_ns) {
            let tail = &record.iteration_ns[start..];
            if !tail.is_empty() {
                means.push(tail.iter().sum::<f64>() / tail.len() as f64);
            }
        }
    }
    let dropped = total - means.len();
    if (dropped as f64) > max_drop_frac * total as f64 || means.len() < 2 {
        return None;
    }
    Some(means)
}

/// The conservative common steady start across invocations: the maximum of
/// per-invocation starts. `None` if any invocation never reached steady
/// state.
pub fn common_steady_start<'a, I>(series: I, detector: &SteadyStateDetector) -> Option<usize>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let starts = detect_all(series, detector);
    if starts.is_empty() {
        return None;
    }
    starts
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .map(|v| v.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warmup_series() -> Vec<f64> {
        // 10 slow iterations then 40 fast ones with small deterministic jitter.
        let mut xs = Vec::new();
        for i in 0..10 {
            xs.push(50.0 + (i % 3) as f64 * 0.2);
        }
        for i in 0..40 {
            xs.push(10.0 + (i % 3) as f64 * 0.05);
        }
        xs
    }

    #[test]
    fn cov_window_finds_flat_tail() {
        let xs = warmup_series();
        match SteadyStateDetector::cov_window().detect(&xs) {
            SteadyState::Reached { start } => {
                // The warmup phase itself is low-CoV here, so the detector may
                // fire early — but never after the transition.
                assert!(start <= 10, "start = {start}");
            }
            SteadyState::NotReached => panic!("should reach steady state"),
        }
    }

    #[test]
    fn cov_window_rejects_noisy_series() {
        // Alternating 10/30: CoV of any window is huge.
        let xs: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 10.0 } else { 30.0 })
            .collect();
        assert_eq!(
            SteadyStateDetector::cov_window().detect(&xs),
            SteadyState::NotReached
        );
    }

    #[test]
    fn changepoint_detector_skips_warmup() {
        let xs = warmup_series();
        match SteadyStateDetector::changepoint().detect(&xs) {
            SteadyState::Reached { start } => {
                assert!((start as i64 - 10).abs() <= 2, "start = {start}");
            }
            SteadyState::NotReached => panic!("should reach steady state"),
        }
    }

    #[test]
    fn changepoint_detector_rejects_short_tail() {
        // Mean keeps shifting; the last level covers only ~10% of the series.
        let mut xs = Vec::new();
        for level in 0..9 {
            for i in 0..10 {
                xs.push(100.0 - level as f64 * 10.0 + (i % 3) as f64 * 0.1);
            }
        }
        xs.extend((0..8).map(|i| 5.0 + (i % 3) as f64 * 0.1));
        let det = SteadyStateDetector::Changepoint {
            config: SegmentConfig::default(),
            min_tail_frac: 0.25,
        };
        assert_eq!(det.detect(&xs), SteadyState::NotReached);
    }

    #[test]
    fn flat_series_is_steady_from_zero() {
        let xs: Vec<f64> = (0..30).map(|i| 10.0 + (i % 4) as f64 * 0.02).collect();
        assert_eq!(
            SteadyStateDetector::changepoint().detect(&xs),
            SteadyState::Reached { start: 0 }
        );
        assert_eq!(
            SteadyStateDetector::cov_window().detect(&xs),
            SteadyState::Reached { start: 0 }
        );
    }

    #[test]
    fn common_start_is_conservative() {
        let a = warmup_series();
        let flat: Vec<f64> = (0..50).map(|i| 10.0 + (i % 3) as f64 * 0.05).collect();
        let det = SteadyStateDetector::changepoint();
        let common = common_steady_start([a.as_slice(), flat.as_slice()], &det).unwrap();
        assert!(common >= 8, "must take the later start, got {common}");
    }

    #[test]
    fn common_start_none_when_any_fails() {
        let noisy: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 10.0 } else { 30.0 })
            .collect();
        let flat: Vec<f64> = (0..40).map(|_| 10.0).collect();
        let det = SteadyStateDetector::cov_window();
        assert_eq!(
            common_steady_start([noisy.as_slice(), flat.as_slice()], &det),
            None
        );
    }

    #[test]
    fn degenerate_inputs() {
        let det = SteadyStateDetector::cov_window();
        assert_eq!(det.detect(&[]), SteadyState::NotReached);
        assert_eq!(det.detect(&[1.0, 2.0]), SteadyState::NotReached);
        assert_eq!(
            SteadyStateDetector::robust_tail().detect(&[1.0, 2.0]),
            SteadyState::NotReached
        );
    }

    #[test]
    fn robust_tail_catches_single_iteration_warmup() {
        let mut xs = vec![971.0];
        xs.extend((0..39).map(|i| 240.0 + (i % 3) as f64 * 0.5));
        assert_eq!(
            SteadyStateDetector::robust_tail().detect(&xs),
            SteadyState::Reached { start: 1 }
        );
    }

    #[test]
    fn robust_tail_tolerates_periodic_gc_spikes() {
        // Flat at 955 with a 6% spike every 3rd iteration: a stationary
        // mixture, steady from iteration 0.
        let xs: Vec<f64> = (0..40)
            .map(|i| if i % 3 == 2 { 1014.0 } else { 955.0 })
            .collect();
        assert_eq!(
            SteadyStateDetector::robust_tail().detect(&xs),
            SteadyState::Reached { start: 0 }
        );
    }

    #[test]
    fn robust_tail_excises_multi_iteration_warmup() {
        let mut xs = vec![3101.0, 1171.0, 989.0];
        xs.extend((0..37).map(|i| 743.0 + (i % 4) as f64 * 0.4));
        match SteadyStateDetector::robust_tail().detect(&xs) {
            SteadyState::Reached { start } => assert_eq!(start, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn robust_tail_rejects_end_drift() {
        // Settles, then drifts up near the end — halves disagree.
        let mut xs: Vec<f64> = (0..20).map(|_| 100.0).collect();
        xs.extend((0..20).map(|i| 100.0 + i as f64 * 2.0));
        assert_eq!(
            SteadyStateDetector::robust_tail().detect(&xs),
            SteadyState::NotReached
        );
    }

    #[test]
    fn robust_tail_rejects_sustained_mid_phase() {
        // A 10-iteration excursion to another level mid-series.
        let mut xs: Vec<f64> = (0..15).map(|_| 100.0).collect();
        xs.extend((0..10).map(|_| 160.0));
        xs.extend((0..15).map(|_| 100.0));
        assert_eq!(
            SteadyStateDetector::robust_tail().detect(&xs),
            SteadyState::NotReached
        );
    }

    #[test]
    fn robust_tail_rejects_endless_warmup() {
        // Monotone decreasing the whole way: never reaches the tail level
        // until past the max-start fraction.
        let xs: Vec<f64> = (0..40).map(|i| 400.0 - i as f64 * 9.0).collect();
        assert_eq!(
            SteadyStateDetector::robust_tail().detect(&xs),
            SteadyState::NotReached
        );
    }
}
