//! Warmup classification (the Barrett et al. taxonomy, adapted).
//!
//! Each per-invocation iteration series is classified by the shape of its
//! changepoint segmentation; a benchmark-level classification aggregates the
//! per-invocation verdicts (an *inconsistent* benchmark warms up in some
//! invocations and not others — itself a methodology hazard).

use rigor_stats::changepoint::{merge_equivalent, segment, Segment, SegmentConfig};
use serde::{Deserialize, Serialize};

use crate::steady::{tail_profile, SteadyState, SteadyStateDetector};

/// The shape of one invocation's iteration series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WarmupClass {
    /// One stable level throughout (the interpreter ideal).
    Flat,
    /// Starts slow, settles at a faster stable level (the JIT ideal).
    Warmup,
    /// Ends slower than it started (leaks, cache pollution, deopt spirals).
    Slowdown,
    /// Never settles: the final level covers too little of the series or the
    /// segment means keep crossing.
    NoSteadyState,
}

impl WarmupClass {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            WarmupClass::Flat => "flat",
            WarmupClass::Warmup => "warmup",
            WarmupClass::Slowdown => "slowdown",
            WarmupClass::NoSteadyState => "no-steady-state",
        }
    }
}

/// Parameters of the classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmupClassifier {
    /// Segmentation parameters (used by the segment-based path).
    pub segment_config: SegmentConfig,
    /// Relative tolerance for "same level" comparisons (0.01 = 1%).
    pub tolerance: f64,
    /// Minimum fraction of the series the final segment must cover to count
    /// as a steady tail.
    pub min_tail_frac: f64,
    /// Detector whose steady verdict drives the classification.
    pub detector: SteadyStateDetector,
}

impl Default for WarmupClassifier {
    fn default() -> Self {
        WarmupClassifier {
            segment_config: SegmentConfig::default(),
            tolerance: 0.01,
            min_tail_frac: 0.25,
            detector: SteadyStateDetector::robust_tail(),
        }
    }
}

impl WarmupClassifier {
    /// Classifies one iteration series via the configured steady-state
    /// detector plus a prefix-shape analysis:
    ///
    /// * steady not reached → [`WarmupClass::NoSteadyState`];
    /// * steady from iteration 0 → [`WarmupClass::Flat`];
    /// * a slower prefix → [`WarmupClass::Warmup`]; a faster prefix →
    ///   [`WarmupClass::Slowdown`];
    /// * a prefix that *sustained* a level better than the final one means
    ///   the series regressed from its best state →
    ///   [`WarmupClass::NoSteadyState`].
    ///
    /// ```
    /// use rigor::{WarmupClass, WarmupClassifier};
    ///
    /// let classifier = WarmupClassifier::default();
    /// let mut jit_like = vec![900.0, 450.0];
    /// jit_like.extend(vec![240.0; 30]);
    /// assert_eq!(classifier.classify(&jit_like), WarmupClass::Warmup);
    /// assert_eq!(classifier.classify(&vec![240.0; 32]), WarmupClass::Flat);
    /// ```
    pub fn classify(&self, times: &[f64]) -> WarmupClass {
        let start = match self.detector.detect(times) {
            SteadyState::NotReached => return WarmupClass::NoSteadyState,
            SteadyState::Reached { start } => start,
        };
        if start == 0 {
            return WarmupClass::Flat;
        }
        let (reference, band) = tail_profile(times, self.tolerance.max(0.01), 5.0);
        let prefix = &times[..start];
        // A prefix that sustained phases both above AND below the steady
        // level (started slow, dipped to a better level, then regressed)
        // never converged to its best state. A prefix that is entirely
        // below is an ordinary slowdown; entirely above is warmup.
        let longest_run = |pred: &dyn Fn(f64) -> bool| -> usize {
            let mut best = 0usize;
            let mut run = 0usize;
            for &x in prefix {
                if pred(x) {
                    run += 1;
                    best = best.max(run);
                } else {
                    run = 0;
                }
            }
            best
        };
        let above = longest_run(&|x| x > reference + band);
        let below = longest_run(&|x| x < reference - band);
        if above > 3 && below > 3 {
            return WarmupClass::NoSteadyState;
        }
        let prefix_level = rigor_stats::median(prefix);
        if prefix_level > reference * (1.0 + self.tolerance) {
            WarmupClass::Warmup
        } else if prefix_level < reference * (1.0 - self.tolerance) {
            WarmupClass::Slowdown
        } else {
            WarmupClass::Flat
        }
    }

    /// Classifies via changepoint segmentation (the alternative path, kept
    /// for detector-comparison experiments).
    pub fn classify_by_segments(&self, times: &[f64]) -> WarmupClass {
        let cleaned = rigor_stats::despike(times, 8.0);
        let segs = merge_equivalent(
            &segment(&cleaned, &self.segment_config),
            crate::steady::SEGMENT_MERGE_TOL,
        );
        self.classify_segments(&segs, times.len())
    }

    /// Classifies from precomputed segments (exposed for the experiments that
    /// also want the segment structure itself).
    pub fn classify_segments(&self, segs: &[Segment], series_len: usize) -> WarmupClass {
        if segs.len() <= 1 {
            return WarmupClass::Flat;
        }
        let last = segs.last().expect("non-empty");
        if (last.len() as f64) < self.min_tail_frac * series_len as f64 {
            return WarmupClass::NoSteadyState;
        }
        let first = segs.first().expect("non-empty");
        let tol = self.tolerance;
        // The final level must also be the *best* level (within tolerance);
        // a series that dips fast then regresses has no steady state in the
        // "converged to its good state" sense.
        let min_mean = segs.iter().map(|s| s.mean).fold(f64::INFINITY, f64::min);
        if last.mean > min_mean * (1.0 + 4.0 * tol) && last.mean > first.mean * (1.0 + tol) {
            return WarmupClass::Slowdown;
        }
        if last.mean > min_mean * (1.0 + 4.0 * tol) {
            return WarmupClass::NoSteadyState;
        }
        if last.mean < first.mean * (1.0 - tol) {
            WarmupClass::Warmup
        } else if last.mean > first.mean * (1.0 + tol) {
            WarmupClass::Slowdown
        } else {
            WarmupClass::Flat
        }
    }
}

/// Benchmark-level aggregation of per-invocation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BenchmarkWarmupClass {
    /// All invocations agree on one class.
    Consistent(WarmupClass),
    /// Invocations disagree (reported with the modal class).
    Inconsistent(WarmupClass),
}

impl BenchmarkWarmupClass {
    /// Short label for tables.
    pub fn label(self) -> String {
        match self {
            BenchmarkWarmupClass::Consistent(c) => c.label().to_string(),
            BenchmarkWarmupClass::Inconsistent(c) => format!("inconsistent({})", c.label()),
        }
    }
}

/// Aggregates per-invocation classes into a benchmark verdict.
pub fn aggregate_classes(classes: &[WarmupClass]) -> Option<BenchmarkWarmupClass> {
    let first = *classes.first()?;
    if classes.iter().all(|c| *c == first) {
        return Some(BenchmarkWarmupClass::Consistent(first));
    }
    // Modal class.
    let mut counts: Vec<(WarmupClass, usize)> = Vec::new();
    for &c in classes {
        match counts.iter_mut().find(|(k, _)| *k == c) {
            Some((_, n)) => *n += 1,
            None => counts.push((c, 1)),
        }
    }
    counts.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    Some(BenchmarkWarmupClass::Inconsistent(counts[0].0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(level: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 33) as f64 / (1u64 << 31) as f64;
                level * (1.0 + (u - 0.5) * 0.01)
            })
            .collect()
    }

    #[test]
    fn flat_series() {
        let c = WarmupClassifier::default();
        assert_eq!(c.classify(&noisy(10.0, 60, 1)), WarmupClass::Flat);
    }

    #[test]
    fn warmup_series() {
        let mut xs = noisy(50.0, 15, 2);
        xs.extend(noisy(10.0, 45, 3));
        let c = WarmupClassifier::default();
        assert_eq!(c.classify(&xs), WarmupClass::Warmup);
    }

    #[test]
    fn slowdown_series() {
        let mut xs = noisy(10.0, 30, 4);
        xs.extend(noisy(14.0, 30, 5));
        let c = WarmupClassifier::default();
        assert_eq!(c.classify(&xs), WarmupClass::Slowdown);
    }

    #[test]
    fn no_steady_state_short_tail() {
        // Staircase that keeps shifting until the very end.
        let mut xs = Vec::new();
        for level in 0..8 {
            xs.extend(noisy(80.0 - level as f64 * 8.0, 10, 6 + level));
        }
        xs.extend(noisy(10.0, 8, 20));
        let c = WarmupClassifier::default();
        assert_eq!(c.classify(&xs), WarmupClass::NoSteadyState);
    }

    #[test]
    fn regressing_dip_is_not_steady() {
        // Fast middle phase, ends slower than its best but faster than start:
        // converged to a worse-than-best level → NoSteadyState.
        let mut xs = noisy(20.0, 25, 7);
        xs.extend(noisy(8.0, 25, 8));
        xs.extend(noisy(12.0, 25, 9));
        let c = WarmupClassifier::default();
        assert_eq!(c.classify(&xs), WarmupClass::NoSteadyState);
    }

    #[test]
    fn aggregation_consistent_and_modal() {
        use WarmupClass::*;
        assert_eq!(
            aggregate_classes(&[Warmup, Warmup, Warmup]),
            Some(BenchmarkWarmupClass::Consistent(Warmup))
        );
        assert_eq!(
            aggregate_classes(&[Warmup, Flat, Warmup]),
            Some(BenchmarkWarmupClass::Inconsistent(Warmup))
        );
        assert_eq!(aggregate_classes(&[]), None);
    }

    #[test]
    fn labels() {
        assert_eq!(WarmupClass::NoSteadyState.label(), "no-steady-state");
        assert_eq!(
            BenchmarkWarmupClass::Inconsistent(WarmupClass::Flat).label(),
            "inconsistent(flat)"
        );
    }
}
