//! Measurement export: CSV (long format) and JSON, both machine-readable
//! in round trip — [`from_json`] / [`from_csv`] parse what [`to_json`] /
//! [`to_csv`] write, and JSON carries a `schema_version` so archived
//! records stay readable as the format evolves.

use serde::json::{get_field, DeError, JsonValue};
use serde::{Deserialize, Serialize};

use crate::measurement::{
    BenchmarkMeasurement, CensoredInvocation, FailureKind, InvocationRecord, IterationCounters,
};

/// Version of the measurement export schema written by [`to_json`].
///
/// History:
/// * **v0** — a bare JSON array of measurements, no envelope (what the
///   repo wrote before the results archive existed). [`from_json`] still
///   reads it.
/// * **v1** — `{"schema_version": 1, "measurements": [...]}`.
pub const SCHEMA_VERSION: u32 = 1;

/// The CSV header [`to_csv`] writes and [`from_csv`] requires.
pub const CSV_HEADER: &str =
    "benchmark,engine,invocation,seed,iteration,virtual_ns,gc_cycles,jit_compiles,deopts,attempts,status";

/// Serializes measurements to a long-format CSV: one row per iteration,
/// plus one row per censored invocation.
///
/// Columns:
/// `benchmark,engine,invocation,seed,iteration,virtual_ns,gc_cycles,jit_compiles,deopts,attempts,status`.
/// The three counter columns are empty for records without per-iteration
/// counters (e.g. measurements exported before they were recorded).
///
/// `status` carries the error taxonomy: `measured` for first-try successes,
/// `retried` for invocations that succeeded after retries, and
/// `censored:<kind>` (e.g. `censored:timeout`) for invocations that
/// exhausted their retries — censored rows have empty seed, iteration,
/// timing and counter columns, so downstream analysis sees the gap instead
/// of a silently missing sample.
pub fn to_csv(measurements: &[BenchmarkMeasurement]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for m in measurements {
        for r in &m.invocations {
            let status = if r.attempts > 1 {
                "retried"
            } else {
                "measured"
            };
            for (i, t) in r.iteration_ns.iter().enumerate() {
                let counters = r
                    .iteration_counters
                    .as_ref()
                    .and_then(|c| c.get(i))
                    .map(|c| format!("{},{},{}", c.gc_cycles, c.jit_compiles, c.deopts))
                    .unwrap_or_else(|| ",,".into());
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{}\n",
                    m.benchmark, m.engine, r.invocation, r.seed, i, t, counters, r.attempts, status
                ));
            }
        }
        for c in &m.censored {
            out.push_str(&format!(
                "{},{},{},,,,,,,{},censored:{}\n",
                m.benchmark,
                m.engine,
                c.invocation,
                c.attempts,
                c.failure.name()
            ));
        }
    }
    out
}

/// A CSV line that could not be parsed back into measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number (0 for file-level problems).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl CsvError {
    fn new(line: usize, message: impl Into<String>) -> CsvError {
        CsvError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "bad measurement CSV: {}", self.message)
        } else {
            write!(
                f,
                "bad measurement CSV (line {}): {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for CsvError {}

fn parse_col<T: std::str::FromStr>(line: usize, field: &str, name: &str) -> Result<T, CsvError> {
    field
        .parse()
        .map_err(|_| CsvError::new(line, format!("bad {name} value `{field}`")))
}

/// Parses measurements back from the long-format CSV [`to_csv`] writes.
///
/// The CSV is the *iteration-level* view, so fields that only exist in
/// JSON are reconstructed conservatively: `startup_ns` is 0, checksums are
/// empty, per-invocation counter totals are summed from the per-iteration
/// columns (0 when those are empty), censored rows keep their failure kind
/// but lose the original error message, and no benchmark is marked
/// quarantined. Timings, seeds, attempts and the censoring structure —
/// everything the statistics consume — survive exactly, and
/// `to_csv(&from_csv(csv)?)` reproduces `csv` byte-for-byte.
///
/// # Errors
///
/// A wrong header, a wrong column count, an unparsable field, or
/// non-contiguous iteration indices within an invocation.
pub fn from_csv(csv: &str) -> Result<Vec<BenchmarkMeasurement>, CsvError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| CsvError::new(0, "empty input"))?;
    if header.trim_end() != CSV_HEADER {
        return Err(CsvError::new(1, format!("unexpected header `{header}`")));
    }
    let n_cols = CSV_HEADER.split(',').count();

    let mut out: Vec<BenchmarkMeasurement> = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != n_cols {
            return Err(CsvError::new(
                lineno,
                format!("expected {n_cols} columns, found {}", cols.len()),
            ));
        }
        let (benchmark, engine) = (cols[0], cols[1]);
        let m = match out
            .iter_mut()
            .find(|m| m.benchmark == benchmark && m.engine == engine)
        {
            Some(m) => m,
            None => {
                out.push(BenchmarkMeasurement {
                    benchmark: benchmark.to_string(),
                    engine: engine.to_string(),
                    invocations: Vec::new(),
                    censored: Vec::new(),
                    quarantined: false,
                });
                out.last_mut().expect("just pushed")
            }
        };
        let invocation: u32 = parse_col(lineno, cols[2], "invocation")?;
        let attempts: u32 = parse_col(lineno, cols[9], "attempts")?;
        let status = cols[10];

        if let Some(kind) = status.strip_prefix("censored:") {
            let failure = FailureKind::from_name(kind)
                .ok_or_else(|| CsvError::new(lineno, format!("unknown failure kind `{kind}`")))?;
            m.censored.push(CensoredInvocation {
                invocation,
                attempts,
                failure,
                error: String::new(),
            });
            continue;
        }
        if status != "measured" && status != "retried" {
            return Err(CsvError::new(lineno, format!("unknown status `{status}`")));
        }

        let seed: u64 = parse_col(lineno, cols[3], "seed")?;
        let iteration: usize = parse_col(lineno, cols[4], "iteration")?;
        let virtual_ns: f64 = parse_col(lineno, cols[5], "virtual_ns")?;
        let counters = match (cols[6], cols[7], cols[8]) {
            ("", "", "") => None,
            (gc, jit, de) => Some(IterationCounters {
                gc_cycles: parse_col(lineno, gc, "gc_cycles")?,
                jit_compiles: parse_col(lineno, jit, "jit_compiles")?,
                deopts: parse_col(lineno, de, "deopts")?,
            }),
        };

        let r = match m
            .invocations
            .iter_mut()
            .find(|r| r.invocation == invocation)
        {
            Some(r) => r,
            None => {
                m.invocations.push(InvocationRecord {
                    invocation,
                    seed,
                    startup_ns: 0.0,
                    iteration_ns: Vec::new(),
                    gc_cycles: 0,
                    jit_compiles: 0,
                    deopts: 0,
                    checksum: String::new(),
                    iteration_counters: Some(Vec::new()),
                    attempts,
                });
                m.invocations.last_mut().expect("just pushed")
            }
        };
        if iteration != r.iteration_ns.len() {
            return Err(CsvError::new(
                lineno,
                format!(
                    "invocation {invocation} iteration {iteration} out of order \
                     (expected {})",
                    r.iteration_ns.len()
                ),
            ));
        }
        r.iteration_ns.push(virtual_ns);
        let mixed = || {
            CsvError::new(
                lineno,
                format!("invocation {invocation} mixes empty and non-empty counter columns"),
            )
        };
        match counters {
            Some(c) => match &mut r.iteration_counters {
                Some(have) => {
                    have.push(c);
                    r.gc_cycles += c.gc_cycles;
                    r.jit_compiles += c.jit_compiles;
                    r.deopts += c.deopts;
                }
                None => return Err(mixed()),
            },
            // A counter-less iteration means the whole invocation was
            // recorded without counters (to_csv never mixes within one).
            None => {
                if r.iteration_counters.as_ref().is_some_and(|v| !v.is_empty()) {
                    return Err(mixed());
                }
                r.iteration_counters = None;
            }
        }
    }
    Ok(out)
}

// `schema_version` envelope, serialized manually so field order is fixed.
struct Envelope<'a>(&'a [BenchmarkMeasurement]);

impl Serialize for Envelope<'_> {
    fn to_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("schema_version".into(), SCHEMA_VERSION.to_value()),
            ("measurements".into(), self.0.to_value()),
        ])
    }
}

// `from_str` needs a `Deserialize` target; keep the raw value so the
// envelope can be shape-dispatched (v0 array vs. versioned object).
struct RawValue(JsonValue);

impl Deserialize for RawValue {
    fn from_value(v: &JsonValue) -> Result<RawValue, DeError> {
        Ok(RawValue(v.clone()))
    }
}

/// Serializes measurements to pretty JSON under a `schema_version`
/// envelope (see [`SCHEMA_VERSION`]).
///
/// # Errors
///
/// Never in practice (the types are plain data); surfaces serde errors.
pub fn to_json(measurements: &[BenchmarkMeasurement]) -> serde_json::Result<String> {
    serde_json::to_string_pretty(&Envelope(measurements))
}

/// Parses measurements back from JSON.
///
/// Accepts the current envelope, and — for compatibility with exports
/// written before versioning existed (v0) — a bare array of measurements
/// or an envelope without a `schema_version` field.
///
/// # Errors
///
/// Malformed JSON, or a `schema_version` newer than this build understands.
pub fn from_json(json: &str) -> serde_json::Result<Vec<BenchmarkMeasurement>> {
    let RawValue(v) = serde_json::from_str(json)?;
    if let JsonValue::Array(_) = v {
        // v0: a bare array, no envelope.
        return Deserialize::from_value(&v).map_err(serde_json::Error::from);
    }
    let version = get_field::<Option<u32>>(&v, "schema_version")
        .map_err(serde_json::Error::from)?
        .unwrap_or(0);
    if version > SCHEMA_VERSION {
        return Err(serde_json::Error::from(DeError::new(format!(
            "measurement export has schema_version {version}, but this build \
             only understands versions up to {SCHEMA_VERSION}"
        ))));
    }
    get_field(&v, "measurements").map_err(serde_json::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{
        CensoredInvocation, FailureKind, InvocationRecord, IterationCounters,
    };

    fn sample() -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: "sieve".into(),
            engine: "interp".into(),
            invocations: vec![InvocationRecord {
                invocation: 0,
                seed: 42,
                startup_ns: 10.0,
                iteration_ns: vec![1.5, 2.5],
                gc_cycles: 1,
                jit_compiles: 0,
                deopts: 0,
                checksum: "95".into(),
                iteration_counters: Some(vec![
                    IterationCounters {
                        gc_cycles: 1,
                        jit_compiles: 0,
                        deopts: 0,
                    },
                    IterationCounters::default(),
                ]),
                attempts: 1,
            }],
            censored: Vec::new(),
            quarantined: false,
        }
    }

    #[test]
    fn csv_has_one_row_per_iteration() {
        let csv = to_csv(&[sample()]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 iterations
        assert_eq!(
            lines[0],
            "benchmark,engine,invocation,seed,iteration,virtual_ns,gc_cycles,jit_compiles,deopts,attempts,status"
        );
        assert_eq!(lines[1], "sieve,interp,0,42,0,1.5,1,0,0,1,measured");
        assert_eq!(lines[2], "sieve,interp,0,42,1,2.5,0,0,0,1,measured");
    }

    #[test]
    fn csv_leaves_counter_columns_empty_without_them() {
        let mut m = sample();
        m.invocations[0].iteration_counters = None;
        let csv = to_csv(&[m]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[1], "sieve,interp,0,42,0,1.5,,,,1,measured");
    }

    #[test]
    fn csv_marks_retried_and_censored_invocations() {
        let mut m = sample();
        m.invocations[0].attempts = 2;
        m.censored.push(CensoredInvocation {
            invocation: 1,
            attempts: 3,
            failure: FailureKind::Timeout,
            error: "TimeoutError: deadline passed".into(),
        });
        let csv = to_csv(&[m]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 iterations + 1 censored
        assert_eq!(lines[1], "sieve,interp,0,42,0,1.5,1,0,0,2,retried");
        assert_eq!(lines[3], "sieve,interp,1,,,,,,,3,censored:timeout");
        // Every row has the same column count as the header.
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn csv_roundtrips_byte_for_byte() {
        let mut with_faults = sample();
        with_faults.invocations[0].attempts = 2;
        with_faults.censored.push(CensoredInvocation {
            invocation: 1,
            attempts: 3,
            failure: FailureKind::FuelExhausted,
            error: "fuel gone".into(),
        });
        let mut no_counters = sample();
        no_counters.benchmark = "nbody".into();
        no_counters.invocations[0].iteration_counters = None;
        let csv = to_csv(&[with_faults, no_counters]);
        let parsed = from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(to_csv(&parsed), csv);
    }

    #[test]
    fn from_csv_reconstructs_structure() {
        let mut m = sample();
        m.censored.push(CensoredInvocation {
            invocation: 1,
            attempts: 2,
            failure: FailureKind::Panic,
            error: "boom".into(),
        });
        let parsed = from_csv(&to_csv(&[m])).unwrap();
        assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        assert_eq!(p.benchmark, "sieve");
        assert_eq!(p.invocations.len(), 1);
        assert_eq!(p.invocations[0].iteration_ns, vec![1.5, 2.5]);
        assert_eq!(p.invocations[0].seed, 42);
        assert_eq!(p.invocations[0].gc_cycles, 1); // summed from counters
        assert_eq!(p.censored.len(), 1);
        assert_eq!(p.censored[0].failure, FailureKind::Panic);
        assert_eq!(p.censored[0].error, ""); // lossy: message lives in JSON
        assert_eq!(p.n_requested(), 2);
    }

    #[test]
    fn from_csv_rejects_malformed_input() {
        assert!(from_csv("").is_err());
        assert!(from_csv("wrong,header\n").is_err());
        let short_row = format!("{CSV_HEADER}\nsieve,interp,0\n");
        assert!(from_csv(&short_row).is_err());
        let bad_time = format!("{CSV_HEADER}\nsieve,interp,0,42,0,fast,,,,1,measured\n");
        assert!(from_csv(&bad_time).is_err());
        let bad_status = format!("{CSV_HEADER}\nsieve,interp,0,42,0,1.5,,,,1,wat\n");
        assert!(from_csv(&bad_status).is_err());
        let bad_kind = format!("{CSV_HEADER}\nsieve,interp,0,,,,,,,1,censored:gremlins\n");
        assert!(from_csv(&bad_kind).is_err());
        // Iterations must be contiguous within an invocation.
        let gap = format!("{CSV_HEADER}\nsieve,interp,0,42,1,1.5,,,,1,measured\n");
        assert!(from_csv(&gap).is_err());
    }

    #[test]
    fn json_roundtrips_iteration_counters() {
        let ms = vec![sample()];
        let json = to_json(&ms).unwrap();
        let back = from_json(&json).unwrap();
        let counters = back[0].invocations[0].iteration_counters.as_ref().unwrap();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].gc_cycles, 1);
        assert_eq!(counters[1], IterationCounters::default());
    }

    #[test]
    fn json_without_counters_field_still_parses() {
        // Simulates JSON exported before `iteration_counters` existed.
        let mut ms = vec![sample()];
        ms[0].invocations[0].iteration_counters = None;
        let json = to_json(&ms).unwrap();
        assert!(!json.contains("iteration_counters"));
        let back = from_json(&json).unwrap();
        assert!(back[0].invocations[0].iteration_counters.is_none());
    }

    #[test]
    fn json_roundtrip() {
        let ms = vec![sample()];
        let json = to_json(&ms).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].benchmark, "sieve");
        assert_eq!(back[0].invocations[0].iteration_ns, vec![1.5, 2.5]);
    }

    #[test]
    fn json_carries_the_schema_version() {
        let json = to_json(&[sample()]).unwrap();
        assert!(json.starts_with("{"));
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"measurements\""));
    }

    #[test]
    fn v0_exports_still_parse() {
        // A bare array — what `to_json` wrote before the envelope existed.
        let v0 = serde_json::to_string_pretty(&vec![sample()]).unwrap();
        assert!(v0.starts_with("["));
        let back = from_json(&v0).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].benchmark, "sieve");
        // An envelope without the field is treated as v0 too.
        let unversioned = "{\"measurements\":[]}";
        assert!(from_json(unversioned).unwrap().is_empty());
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let json = "{\"schema_version\":99,\"measurements\":[]}";
        let err = from_json(json).unwrap_err();
        assert!(err.to_string().contains("schema_version 99"), "{err}");
    }

    #[test]
    fn json_roundtrips_censoring_metadata() {
        let mut ms = vec![sample()];
        ms[0].quarantined = true;
        ms[0].censored.push(CensoredInvocation {
            invocation: 1,
            attempts: 2,
            failure: FailureKind::Panic,
            error: "worker panicked".into(),
        });
        let json = to_json(&ms).unwrap();
        let back = from_json(&json).unwrap();
        assert!(back[0].quarantined);
        assert_eq!(back[0].censored, ms[0].censored);
    }
}
