//! Measurement export: CSV (long format) and JSON.

use crate::measurement::BenchmarkMeasurement;

/// Serializes measurements to a long-format CSV: one row per iteration.
///
/// Columns: `benchmark,engine,invocation,seed,iteration,virtual_ns`.
pub fn to_csv(measurements: &[BenchmarkMeasurement]) -> String {
    let mut out = String::from("benchmark,engine,invocation,seed,iteration,virtual_ns\n");
    for m in measurements {
        for r in &m.invocations {
            for (i, t) in r.iteration_ns.iter().enumerate() {
                out.push_str(&format!(
                    "{},{},{},{},{},{}\n",
                    m.benchmark, m.engine, r.invocation, r.seed, i, t
                ));
            }
        }
    }
    out
}

/// Serializes measurements to pretty JSON.
///
/// # Errors
///
/// Never in practice (the types are plain data); surfaces serde errors.
pub fn to_json(measurements: &[BenchmarkMeasurement]) -> serde_json::Result<String> {
    serde_json::to_string_pretty(measurements)
}

/// Parses measurements back from JSON.
///
/// # Errors
///
/// Malformed JSON.
pub fn from_json(json: &str) -> serde_json::Result<Vec<BenchmarkMeasurement>> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::InvocationRecord;

    fn sample() -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: "sieve".into(),
            engine: "interp".into(),
            invocations: vec![InvocationRecord {
                invocation: 0,
                seed: 42,
                startup_ns: 10.0,
                iteration_ns: vec![1.5, 2.5],
                gc_cycles: 1,
                jit_compiles: 0,
                deopts: 0,
                checksum: "95".into(),
            }],
        }
    }

    #[test]
    fn csv_has_one_row_per_iteration() {
        let csv = to_csv(&[sample()]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 iterations
        assert_eq!(
            lines[0],
            "benchmark,engine,invocation,seed,iteration,virtual_ns"
        );
        assert!(lines[1].starts_with("sieve,interp,0,42,0,1.5"));
    }

    #[test]
    fn json_roundtrip() {
        let ms = vec![sample()];
        let json = to_json(&ms).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].benchmark, "sieve");
        assert_eq!(back[0].invocations[0].iteration_ns, vec![1.5, 2.5]);
    }
}
