//! Measurement export: CSV (long format) and JSON.

use crate::measurement::BenchmarkMeasurement;

/// Serializes measurements to a long-format CSV: one row per iteration,
/// plus one row per censored invocation.
///
/// Columns:
/// `benchmark,engine,invocation,seed,iteration,virtual_ns,gc_cycles,jit_compiles,deopts,attempts,status`.
/// The three counter columns are empty for records without per-iteration
/// counters (e.g. measurements exported before they were recorded).
///
/// `status` carries the error taxonomy: `measured` for first-try successes,
/// `retried` for invocations that succeeded after retries, and
/// `censored:<kind>` (e.g. `censored:timeout`) for invocations that
/// exhausted their retries — censored rows have empty seed, iteration,
/// timing and counter columns, so downstream analysis sees the gap instead
/// of a silently missing sample.
pub fn to_csv(measurements: &[BenchmarkMeasurement]) -> String {
    let mut out = String::from(
        "benchmark,engine,invocation,seed,iteration,virtual_ns,gc_cycles,jit_compiles,deopts,attempts,status\n",
    );
    for m in measurements {
        for r in &m.invocations {
            let status = if r.attempts > 1 {
                "retried"
            } else {
                "measured"
            };
            for (i, t) in r.iteration_ns.iter().enumerate() {
                let counters = r
                    .iteration_counters
                    .as_ref()
                    .and_then(|c| c.get(i))
                    .map(|c| format!("{},{},{}", c.gc_cycles, c.jit_compiles, c.deopts))
                    .unwrap_or_else(|| ",,".into());
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{}\n",
                    m.benchmark, m.engine, r.invocation, r.seed, i, t, counters, r.attempts, status
                ));
            }
        }
        for c in &m.censored {
            out.push_str(&format!(
                "{},{},{},,,,,,,{},censored:{}\n",
                m.benchmark,
                m.engine,
                c.invocation,
                c.attempts,
                c.failure.name()
            ));
        }
    }
    out
}

/// Serializes measurements to pretty JSON.
///
/// # Errors
///
/// Never in practice (the types are plain data); surfaces serde errors.
pub fn to_json(measurements: &[BenchmarkMeasurement]) -> serde_json::Result<String> {
    serde_json::to_string_pretty(measurements)
}

/// Parses measurements back from JSON.
///
/// # Errors
///
/// Malformed JSON.
pub fn from_json(json: &str) -> serde_json::Result<Vec<BenchmarkMeasurement>> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{
        CensoredInvocation, FailureKind, InvocationRecord, IterationCounters,
    };

    fn sample() -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: "sieve".into(),
            engine: "interp".into(),
            invocations: vec![InvocationRecord {
                invocation: 0,
                seed: 42,
                startup_ns: 10.0,
                iteration_ns: vec![1.5, 2.5],
                gc_cycles: 1,
                jit_compiles: 0,
                deopts: 0,
                checksum: "95".into(),
                iteration_counters: Some(vec![
                    IterationCounters {
                        gc_cycles: 1,
                        jit_compiles: 0,
                        deopts: 0,
                    },
                    IterationCounters::default(),
                ]),
                attempts: 1,
            }],
            censored: Vec::new(),
            quarantined: false,
        }
    }

    #[test]
    fn csv_has_one_row_per_iteration() {
        let csv = to_csv(&[sample()]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 iterations
        assert_eq!(
            lines[0],
            "benchmark,engine,invocation,seed,iteration,virtual_ns,gc_cycles,jit_compiles,deopts,attempts,status"
        );
        assert_eq!(lines[1], "sieve,interp,0,42,0,1.5,1,0,0,1,measured");
        assert_eq!(lines[2], "sieve,interp,0,42,1,2.5,0,0,0,1,measured");
    }

    #[test]
    fn csv_leaves_counter_columns_empty_without_them() {
        let mut m = sample();
        m.invocations[0].iteration_counters = None;
        let csv = to_csv(&[m]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[1], "sieve,interp,0,42,0,1.5,,,,1,measured");
    }

    #[test]
    fn csv_marks_retried_and_censored_invocations() {
        let mut m = sample();
        m.invocations[0].attempts = 2;
        m.censored.push(CensoredInvocation {
            invocation: 1,
            attempts: 3,
            failure: FailureKind::Timeout,
            error: "TimeoutError: deadline passed".into(),
        });
        let csv = to_csv(&[m]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 iterations + 1 censored
        assert_eq!(lines[1], "sieve,interp,0,42,0,1.5,1,0,0,2,retried");
        assert_eq!(lines[3], "sieve,interp,1,,,,,,,3,censored:timeout");
        // Every row has the same column count as the header.
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn json_roundtrips_iteration_counters() {
        let ms = vec![sample()];
        let json = to_json(&ms).unwrap();
        let back = from_json(&json).unwrap();
        let counters = back[0].invocations[0].iteration_counters.as_ref().unwrap();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].gc_cycles, 1);
        assert_eq!(counters[1], IterationCounters::default());
    }

    #[test]
    fn json_without_counters_field_still_parses() {
        // Simulates JSON exported before `iteration_counters` existed.
        let mut ms = vec![sample()];
        ms[0].invocations[0].iteration_counters = None;
        let json = to_json(&ms).unwrap();
        assert!(!json.contains("iteration_counters"));
        let back = from_json(&json).unwrap();
        assert!(back[0].invocations[0].iteration_counters.is_none());
    }

    #[test]
    fn json_roundtrip() {
        let ms = vec![sample()];
        let json = to_json(&ms).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].benchmark, "sieve");
        assert_eq!(back[0].invocations[0].iteration_ns, vec![1.5, 2.5]);
    }

    #[test]
    fn json_roundtrips_censoring_metadata() {
        let mut ms = vec![sample()];
        ms[0].quarantined = true;
        ms[0].censored.push(CensoredInvocation {
            invocation: 1,
            attempts: 2,
            failure: FailureKind::Panic,
            error: "worker panicked".into(),
        });
        let json = to_json(&ms).unwrap();
        let back = from_json(&json).unwrap();
        assert!(back[0].quarantined);
        assert_eq!(back[0].censored, ms[0].censored);
    }
}
