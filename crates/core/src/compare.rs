//! Rigorous performance comparison: speedups with confidence intervals.
//!
//! The comparison unit is the **per-invocation steady-state mean**: warmup is
//! excised per invocation via a steady-state detector, each invocation
//! contributes one number, and intervals are computed over those numbers.
//! Suite-level summaries use the geometric mean of per-benchmark speedups
//! with a bootstrap interval.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rigor_stats::bootstrap::bootstrap_ratio_ci;
use rigor_stats::ci::ConfidenceInterval;
use rigor_stats::descriptive::{geomean, mean};
use rigor_stats::effect::cohens_d;
use rigor_stats::htest::welch_t_test;
use serde::{Deserialize, Serialize};

use crate::measurement::BenchmarkMeasurement;
use crate::steady::{common_steady_start, SteadyStateDetector};

/// Rigorous comparison of one benchmark across two engines/configurations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Speedup of the candidate over the baseline: `mean_base / mean_cand`
    /// (>1 means the candidate is faster), with its CI.
    pub speedup: ConfidenceInterval,
    /// Steady-state iteration used for the baseline (max across invocations).
    pub base_steady_start: usize,
    /// Steady-state iteration used for the candidate.
    pub cand_steady_start: usize,
    /// Mean steady-state time of the baseline, ns.
    pub base_mean_ns: f64,
    /// Mean steady-state time of the candidate, ns.
    pub cand_mean_ns: f64,
    /// Whether the speedup CI excludes 1.0 (a significant difference).
    pub significant: bool,
    /// Welch t-test p-value on the steady means.
    pub p_value: f64,
    /// Cohen's d on the steady means.
    pub effect_size: f64,
}

/// How a comparison failed to produce a rigorous verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareError {
    /// A steady-state start could not be found for every invocation.
    NoSteadyState {
        /// Which side failed ("baseline" / "candidate").
        side: String,
    },
    /// Not enough invocations for interval estimation.
    TooFewInvocations,
    /// The two measurements are for different benchmarks.
    BenchmarkMismatch,
}

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompareError::NoSteadyState { side } => {
                write!(f, "no steady state reached on the {side} side")
            }
            CompareError::TooFewInvocations => write!(f, "need at least 2 invocations per side"),
            CompareError::BenchmarkMismatch => {
                write!(f, "measurements are of different benchmarks")
            }
        }
    }
}

impl std::error::Error for CompareError {}

/// Compares `baseline` against `candidate` rigorously.
///
/// # Errors
///
/// [`CompareError`] when steady state is unreachable or samples are too small
/// — the honest outcome the paper insists on reporting instead of a number.
pub fn compare(
    baseline: &BenchmarkMeasurement,
    candidate: &BenchmarkMeasurement,
    detector: &SteadyStateDetector,
    confidence: f64,
) -> Result<SpeedupResult, CompareError> {
    if baseline.benchmark != candidate.benchmark {
        return Err(CompareError::BenchmarkMismatch);
    }
    let base_start =
        common_steady_start(baseline.series(), detector).ok_or(CompareError::NoSteadyState {
            side: "baseline".into(),
        })?;
    let cand_start =
        common_steady_start(candidate.series(), detector).ok_or(CompareError::NoSteadyState {
            side: "candidate".into(),
        })?;
    let base_means = baseline.tail_means(base_start);
    let cand_means = candidate.tail_means(cand_start);
    if base_means.len() < 2 || cand_means.len() < 2 {
        return Err(CompareError::TooFewInvocations);
    }
    let seed = 0x5eed ^ baseline.benchmark.len() as u64;
    let speedup = bootstrap_ratio_ci(&base_means, &cand_means, confidence, 2_000, seed)
        .ok_or(CompareError::TooFewInvocations)?;
    let t = welch_t_test(&base_means, &cand_means);
    Ok(SpeedupResult {
        benchmark: baseline.benchmark.clone(),
        significant: speedup.excludes(1.0),
        base_steady_start: base_start,
        cand_steady_start: cand_start,
        base_mean_ns: mean(&base_means),
        cand_mean_ns: mean(&cand_means),
        p_value: t.map(|r| r.p_value).unwrap_or(f64::NAN),
        effect_size: cohens_d(&base_means, &cand_means),
        speedup,
    })
}

/// Suite-level summary: per-benchmark speedups plus the geometric-mean
/// speedup with a bootstrap CI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteComparison {
    /// Per-benchmark results (benchmarks that failed to converge are absent;
    /// see `failures`).
    pub per_benchmark: Vec<SpeedupResult>,
    /// Benchmarks excluded from the summary and why.
    pub failures: Vec<(String, CompareError)>,
    /// Geometric-mean speedup with CI (over the converged benchmarks).
    pub geomean: Option<ConfidenceInterval>,
}

/// Compares a whole suite of (baseline, candidate) measurement pairs.
pub fn compare_suite(
    pairs: &[(BenchmarkMeasurement, BenchmarkMeasurement)],
    detector: &SteadyStateDetector,
    confidence: f64,
) -> SuiteComparison {
    let mut per_benchmark = Vec::new();
    let mut failures = Vec::new();
    let mut mean_pairs: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    for (base, cand) in pairs {
        match compare(base, cand, detector, confidence) {
            Ok(result) => {
                mean_pairs.push((
                    base.tail_means(result.base_steady_start),
                    cand.tail_means(result.cand_steady_start),
                ));
                per_benchmark.push(result);
            }
            Err(e) => failures.push((base.benchmark.clone(), e)),
        }
    }
    let geomean = geomean_speedup_ci(&mean_pairs, confidence, 0xFEED);
    SuiteComparison {
        per_benchmark,
        failures,
        geomean,
    }
}

/// Bootstrap CI on the geometric-mean speedup: resample each benchmark's
/// invocation means (both sides) with replacement, recompute every ratio and
/// their geomean.
fn geomean_speedup_ci(
    mean_pairs: &[(Vec<f64>, Vec<f64>)],
    confidence: f64,
    seed: u64,
) -> Option<ConfidenceInterval> {
    if mean_pairs.is_empty() {
        return None;
    }
    let point: Vec<f64> = mean_pairs.iter().map(|(b, c)| mean(b) / mean(c)).collect();
    let estimate = geomean(&point);
    let mut rng = StdRng::seed_from_u64(seed);
    const RESAMPLES: usize = 2_000;
    let mut samples = Vec::with_capacity(RESAMPLES);
    for _ in 0..RESAMPLES {
        let mut ratios = Vec::with_capacity(mean_pairs.len());
        for (b, c) in mean_pairs {
            let rb: f64 = (0..b.len())
                .map(|_| b[rng.gen_range(0..b.len())])
                .sum::<f64>()
                / b.len() as f64;
            let rc: f64 = (0..c.len())
                .map(|_| c[rng.gen_range(0..c.len())])
                .sum::<f64>()
                / c.len() as f64;
            if rc > 0.0 {
                ratios.push(rb / rc);
            }
        }
        let g = geomean(&ratios);
        if g.is_finite() {
            samples.push(g);
        }
    }
    Some(ConfidenceInterval {
        estimate,
        lower: rigor_stats::quantile(&samples, (1.0 - confidence) / 2.0),
        upper: rigor_stats::quantile(&samples, 1.0 - (1.0 - confidence) / 2.0),
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::InvocationRecord;

    fn measurement(name: &str, engine: &str, series: Vec<Vec<f64>>) -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: name.into(),
            engine: engine.into(),
            invocations: series
                .into_iter()
                .enumerate()
                .map(|(i, iteration_ns)| InvocationRecord {
                    invocation: i as u32,
                    seed: i as u64,
                    startup_ns: 0.0,
                    iteration_ns,
                    gc_cycles: 0,
                    jit_compiles: 0,
                    deopts: 0,
                    checksum: String::new(),
                    iteration_counters: None,
                    attempts: 1,
                })
                .collect(),
            censored: Vec::new(),
            quarantined: false,
        }
    }

    /// Flat series at `level` with per-invocation offsets.
    fn flat(
        name: &str,
        engine: &str,
        level: f64,
        n_inv: usize,
        n_iter: usize,
    ) -> BenchmarkMeasurement {
        let series = (0..n_inv)
            .map(|i| {
                let offset = 1.0 + (i as f64 - n_inv as f64 / 2.0) * 0.004;
                (0..n_iter)
                    .map(|j| level * offset * (1.0 + (j % 3) as f64 * 0.001))
                    .collect()
            })
            .collect();
        measurement(name, engine, series)
    }

    #[test]
    fn clear_speedup_is_detected() {
        let base = flat("b", "interp", 100.0, 8, 20);
        let cand = flat("b", "jit", 20.0, 8, 20);
        let r = compare(&base, &cand, &SteadyStateDetector::default(), 0.95).unwrap();
        assert!(r.significant);
        assert!((r.speedup.estimate - 5.0).abs() < 0.2, "{:?}", r.speedup);
        assert!(r.speedup.excludes(1.0));
        assert!(r.p_value < 0.01);
        assert!(r.effect_size > 2.0);
    }

    #[test]
    fn no_difference_is_not_significant() {
        let base = flat("b", "interp", 100.0, 8, 20);
        let mut cand = flat("b", "jit", 100.0, 8, 20);
        // Re-seed the offsets so the two sides aren't literally identical.
        for (i, r) in cand.invocations.iter_mut().enumerate() {
            for t in &mut r.iteration_ns {
                *t *= 1.0 + ((i * 7 % 5) as f64 - 2.0) * 0.002;
            }
        }
        let r = compare(&base, &cand, &SteadyStateDetector::default(), 0.95).unwrap();
        assert!(!r.significant, "{:?}", r.speedup);
        assert!(r.speedup.contains(1.0));
    }

    #[test]
    fn warmup_is_excised_with_changepoint_detector() {
        // Candidate has hefty warmup; including it would understate speedup.
        let base = flat("b", "interp", 100.0, 6, 30);
        let series = (0..6)
            .map(|i| {
                let offset = 1.0 + i as f64 * 0.003;
                let mut v: Vec<f64> = (0..8).map(|_| 200.0 * offset).collect();
                v.extend((0..22).map(|j| 10.0 * offset * (1.0 + (j % 3) as f64 * 0.001)));
                v
            })
            .collect();
        let cand = measurement("b", "jit", series);
        let r = compare(&base, &cand, &SteadyStateDetector::changepoint(), 0.95).unwrap();
        assert!(
            r.cand_steady_start >= 6,
            "steady start {}",
            r.cand_steady_start
        );
        assert!((r.speedup.estimate - 10.0).abs() < 1.0, "{:?}", r.speedup);
    }

    #[test]
    fn mismatched_benchmarks_error() {
        let a = flat("a", "interp", 10.0, 4, 10);
        let b = flat("b", "jit", 10.0, 4, 10);
        assert_eq!(
            compare(&a, &b, &SteadyStateDetector::default(), 0.95).unwrap_err(),
            CompareError::BenchmarkMismatch
        );
    }

    #[test]
    fn no_steady_state_is_an_error_not_a_number() {
        let base = flat("b", "interp", 100.0, 4, 30);
        // Candidate oscillates wildly forever.
        let series = (0..4)
            .map(|i| {
                (0..30)
                    .map(|j| if (i + j) % 2 == 0 { 10.0 } else { 200.0 })
                    .collect()
            })
            .collect();
        let cand = measurement("b", "jit", series);
        let err = compare(&base, &cand, &SteadyStateDetector::cov_window(), 0.95).unwrap_err();
        assert!(matches!(err, CompareError::NoSteadyState { .. }));
    }

    #[test]
    fn suite_geomean_combines_benchmarks() {
        let pairs = vec![
            (
                flat("a", "interp", 100.0, 6, 15),
                flat("a", "jit", 25.0, 6, 15),
            ), // 4x
            (
                flat("b", "interp", 100.0, 6, 15),
                flat("b", "jit", 100.0, 6, 15),
            ), // 1x
        ];
        let s = compare_suite(&pairs, &SteadyStateDetector::default(), 0.95);
        assert_eq!(s.per_benchmark.len(), 2);
        assert!(s.failures.is_empty());
        let g = s.geomean.unwrap();
        assert!((g.estimate - 2.0).abs() < 0.1, "{g:?}"); // sqrt(4·1)
    }

    #[test]
    fn suite_reports_failures_separately() {
        let noisy = measurement(
            "c",
            "jit",
            (0..4)
                .map(|i| {
                    (0..30)
                        .map(|j| if (i + j) % 2 == 0 { 10.0 } else { 200.0 })
                        .collect()
                })
                .collect(),
        );
        let pairs = vec![
            (
                flat("a", "interp", 100.0, 6, 15),
                flat("a", "jit", 50.0, 6, 15),
            ),
            (flat("c", "interp", 100.0, 4, 30), noisy),
        ];
        let s = compare_suite(&pairs, &SteadyStateDetector::cov_window(), 0.95);
        assert_eq!(s.per_benchmark.len(), 1);
        assert_eq!(s.failures.len(), 1);
        assert_eq!(s.failures[0].0, "c");
    }
}
