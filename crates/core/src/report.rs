//! Plain-text table rendering for experiment reports.

/// A simple aligned-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title rendered above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Table {
        self.title = Some(title.into());
        self
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        return "-".into();
    }
    if ns >= 1.0e9 {
        format!("{:.2} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.2} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.2} µs", ns / 1.0e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Formats a ratio CI as `x.xx [lo, hi]`.
pub fn fmt_ci(ci: &rigor_stats::ConfidenceInterval) -> String {
    format!("{:.2}x [{:.2}, {:.2}]", ci.estimate, ci.lower, ci.upper)
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    if frac.is_finite() {
        format!("{:.1}%", frac * 100.0)
    } else {
        "-".into()
    }
}

/// Renders a sparkline of a series using Unicode block characters — the
/// closest a terminal gets to a warmup-curve figure.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BLOCKS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["name", "value"]).with_title("demo");
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        assert!(s.starts_with("demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + sep + 2 rows
        assert_eq!(lines.len(), 5);
        // Every data line has the same width.
        assert_eq!(lines[3].len(), lines[4].len());
        assert!(lines[2].contains("+"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains("x"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3.2e9), "3.20 s");
        assert_eq!(fmt_ns(f64::NAN), "-");
    }

    #[test]
    fn ci_and_pct_formatting() {
        let ci = rigor_stats::ConfidenceInterval {
            estimate: 4.5,
            lower: 4.2,
            upper: 4.8,
            confidence: 0.95,
        };
        assert_eq!(fmt_ci(&ci), "4.50x [4.20, 4.80]");
        assert_eq!(fmt_pct(0.251), "25.1%");
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.chars().count(), 4);
        let first = s.chars().next().unwrap();
        let last = s.chars().last().unwrap();
        assert_eq!(first, '▁');
        assert_eq!(last, '█');
        assert_eq!(sparkline(&[]), "");
    }
}
