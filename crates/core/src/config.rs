//! Experiment configuration.

use minipy::{CostModel, EngineKind, JitConfig, NoiseConfig};
use rigor_workloads::Size;

/// Design of one benchmarking experiment, in the paper's vocabulary:
/// `invocations` fresh VM processes, each running `iterations` in-process
/// repetitions of the workload's `run()` function.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of fresh VM invocations (statistical samples).
    pub invocations: u32,
    /// In-process iterations per invocation.
    pub iterations: u32,
    /// Confidence level for all intervals (e.g. 0.95).
    pub confidence: f64,
    /// Master seed; every invocation seed is derived from it, the benchmark
    /// name and the invocation index, so experiments replay exactly.
    pub experiment_seed: u64,
    /// Which engine to run.
    pub engine: EngineKind,
    /// Which nondeterminism sources are active.
    pub noise: NoiseConfig,
    /// Virtual-time cost model.
    pub cost: CostModel,
    /// Workload size preset.
    pub size: Size,
    /// Worker threads for parallel invocations (invocations are independent
    /// processes in the paper, so parallelism is semantics-preserving).
    pub threads: usize,
    /// Pins the VM's GC allocation threshold (for ablation studies);
    /// `None` keeps the adaptive default.
    pub gc_threshold_override: Option<u64>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            invocations: 10,
            iterations: 30,
            confidence: 0.95,
            experiment_seed: 0xC0FFEE,
            engine: EngineKind::Interp,
            noise: NoiseConfig::default(),
            cost: CostModel::default(),
            size: Size::Default,
            threads: 4,
            gc_threshold_override: None,
        }
    }
}

impl ExperimentConfig {
    /// Default config on the interpreter engine.
    pub fn interp() -> Self {
        ExperimentConfig::default()
    }

    /// Default config on the JIT engine.
    pub fn jit() -> Self {
        ExperimentConfig {
            engine: EngineKind::Jit(JitConfig::default()),
            ..Default::default()
        }
    }

    /// Sets the invocation count (builder style).
    pub fn with_invocations(mut self, n: u32) -> Self {
        self.invocations = n;
        self
    }

    /// Sets the iteration count (builder style).
    pub fn with_iterations(mut self, n: u32) -> Self {
        self.iterations = n;
        self
    }

    /// Sets the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.experiment_seed = seed;
        self
    }

    /// Sets the workload size preset (builder style).
    pub fn with_size(mut self, size: Size) -> Self {
        self.size = size;
        self
    }

    /// Sets the noise configuration (builder style).
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the engine (builder style).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the confidence level for all intervals (builder style).
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Sets the worker-thread count for parallel invocations (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builds the per-invocation VM configuration.
    pub fn vm_config(&self) -> minipy::VmConfig {
        let mut cfg = minipy::VmConfig {
            engine: self.engine,
            noise: self.noise,
            cost: self.cost.clone(),
            gc_threshold: self.gc_threshold_override,
            ..minipy::VmConfig::default()
        };
        cfg.capture_output = false;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = ExperimentConfig::jit()
            .with_invocations(3)
            .with_iterations(7)
            .with_seed(9)
            .with_confidence(0.99)
            .with_threads(2);
        assert_eq!(c.invocations, 3);
        assert_eq!(c.iterations, 7);
        assert_eq!(c.experiment_seed, 9);
        assert!((c.confidence - 0.99).abs() < 1e-12);
        assert_eq!(c.threads, 2);
        assert!(matches!(c.engine, EngineKind::Jit(_)));
        let c = c.with_engine(EngineKind::Interp);
        assert!(matches!(c.engine, EngineKind::Interp));
    }

    #[test]
    fn vm_config_propagates_engine_and_noise() {
        let mut c = ExperimentConfig::interp();
        c.noise.os_jitter = false;
        let vm = c.vm_config();
        assert_eq!(vm.engine, EngineKind::Interp);
        assert!(!vm.noise.os_jitter);
        assert!(!vm.capture_output);
    }
}
