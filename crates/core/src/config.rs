//! Experiment configuration.

use std::fmt;

use minipy::{CostModel, EngineKind, JitConfig, NoiseConfig};
use rigor_workloads::Size;

/// A structurally invalid [`ExperimentConfig`], caught before any VM runs.
///
/// Produced by [`ExperimentConfig::validate`]; [`crate::Runner::new`] and the
/// CLI argument parser both reject configs up front with this error so a bad
/// design fails fast instead of mid-experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `invocations == 0`: an experiment with no samples.
    ZeroInvocations,
    /// `iterations == 0`: invocations that never run the workload.
    ZeroIterations,
    /// Confidence level outside the open interval (0, 1).
    Confidence(f64),
    /// Quarantine threshold outside the closed interval [0, 1].
    QuarantineThreshold(f64),
    /// `threads == 0`: no workers to run invocations on.
    ZeroThreads,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroInvocations => {
                write!(f, "invocations must be at least 1")
            }
            ConfigError::ZeroIterations => {
                write!(f, "iterations must be at least 1")
            }
            ConfigError::Confidence(c) => {
                write!(f, "confidence must be inside (0, 1), got {c}")
            }
            ConfigError::QuarantineThreshold(t) => {
                write!(f, "quarantine threshold must be inside [0, 1], got {t}")
            }
            ConfigError::ZeroThreads => write!(f, "threads must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Design of one benchmarking experiment, in the paper's vocabulary:
/// `invocations` fresh VM processes, each running `iterations` in-process
/// repetitions of the workload's `run()` function.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of fresh VM invocations (statistical samples).
    pub invocations: u32,
    /// In-process iterations per invocation.
    pub iterations: u32,
    /// Confidence level for all intervals (e.g. 0.95).
    pub confidence: f64,
    /// Master seed; every invocation seed is derived from it, the benchmark
    /// name and the invocation index, so experiments replay exactly.
    pub experiment_seed: u64,
    /// Which engine to run.
    pub engine: EngineKind,
    /// Which nondeterminism sources are active.
    pub noise: NoiseConfig,
    /// Virtual-time cost model.
    pub cost: CostModel,
    /// Workload size preset.
    pub size: Size,
    /// Worker threads for parallel invocations (invocations are independent
    /// processes in the paper, so parallelism is semantics-preserving).
    pub threads: usize,
    /// Pins the VM's GC allocation threshold (for ablation studies);
    /// `None` keeps the adaptive default.
    pub gc_threshold_override: Option<u64>,
    /// Per-invocation virtual-time deadline, ns: a divergent workload is
    /// stopped with a typed `Timeout` once its VM clock passes this.
    /// `None` disables the deadline.
    pub deadline_ns: Option<f64>,
    /// Per-invocation opcode (fuel) budget: execution aborts with a typed
    /// `FuelExhausted` after this many opcodes. `None` disables the budget.
    pub step_budget: Option<u64>,
    /// Retry attempts after a failed invocation (panic, timeout, VM error)
    /// before it is censored. Each retry uses a fresh derived seed. 0
    /// disables retries.
    pub max_retries: u32,
    /// Quarantine the benchmark when the censored fraction of its requested
    /// invocations *exceeds* this threshold (0.0 = any censoring
    /// quarantines; 1.0 = never quarantine).
    pub quarantine_threshold: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            invocations: 10,
            iterations: 30,
            confidence: 0.95,
            experiment_seed: 0xC0FFEE,
            engine: EngineKind::Interp,
            noise: NoiseConfig::default(),
            cost: CostModel::default(),
            size: Size::Default,
            threads: 4,
            gc_threshold_override: None,
            deadline_ns: None,
            step_budget: None,
            max_retries: 1,
            quarantine_threshold: 0.5,
        }
    }
}

impl ExperimentConfig {
    /// Default config on the interpreter engine.
    pub fn interp() -> Self {
        ExperimentConfig::default()
    }

    /// Default config on the JIT engine.
    pub fn jit() -> Self {
        ExperimentConfig {
            engine: EngineKind::Jit(JitConfig::default()),
            ..Default::default()
        }
    }

    /// Sets the invocation count (builder style).
    pub fn with_invocations(mut self, n: u32) -> Self {
        self.invocations = n;
        self
    }

    /// Sets the iteration count (builder style).
    pub fn with_iterations(mut self, n: u32) -> Self {
        self.iterations = n;
        self
    }

    /// Sets the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.experiment_seed = seed;
        self
    }

    /// Sets the workload size preset (builder style).
    pub fn with_size(mut self, size: Size) -> Self {
        self.size = size;
        self
    }

    /// Sets the noise configuration (builder style).
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the engine (builder style).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the confidence level for all intervals (builder style).
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Sets the worker-thread count for parallel invocations (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the per-invocation virtual-time deadline, ns (builder style).
    pub fn with_deadline_ns(mut self, deadline_ns: f64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Sets the per-invocation opcode budget (builder style).
    pub fn with_step_budget(mut self, steps: u64) -> Self {
        self.step_budget = Some(steps);
        self
    }

    /// Sets the retry count for failed invocations (builder style).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the quarantine threshold on the censored fraction (builder
    /// style).
    pub fn with_quarantine_threshold(mut self, threshold: f64) -> Self {
        self.quarantine_threshold = threshold;
        self
    }

    /// Checks the config's structural invariants.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for zero invocations/iterations/threads, a confidence
    /// level outside (0, 1), or a quarantine threshold outside [0, 1].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.invocations == 0 {
            return Err(ConfigError::ZeroInvocations);
        }
        if self.iterations == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(ConfigError::Confidence(self.confidence));
        }
        if !(self.quarantine_threshold >= 0.0 && self.quarantine_threshold <= 1.0) {
            return Err(ConfigError::QuarantineThreshold(self.quarantine_threshold));
        }
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        Ok(())
    }

    /// Builds the per-invocation VM configuration.
    pub fn vm_config(&self) -> minipy::VmConfig {
        let mut cfg = minipy::VmConfig {
            engine: self.engine,
            noise: self.noise,
            cost: self.cost.clone(),
            gc_threshold: self.gc_threshold_override,
            time_budget_ns: self.deadline_ns,
            step_budget: self.step_budget,
            ..minipy::VmConfig::default()
        };
        cfg.capture_output = false;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = ExperimentConfig::jit()
            .with_invocations(3)
            .with_iterations(7)
            .with_seed(9)
            .with_confidence(0.99)
            .with_threads(2);
        assert_eq!(c.invocations, 3);
        assert_eq!(c.iterations, 7);
        assert_eq!(c.experiment_seed, 9);
        assert!((c.confidence - 0.99).abs() < 1e-12);
        assert_eq!(c.threads, 2);
        assert!(matches!(c.engine, EngineKind::Jit(_)));
        let c = c.with_engine(EngineKind::Interp);
        assert!(matches!(c.engine, EngineKind::Interp));
    }

    #[test]
    fn vm_config_propagates_engine_and_noise() {
        let mut c = ExperimentConfig::interp();
        c.noise.os_jitter = false;
        let vm = c.vm_config();
        assert_eq!(vm.engine, EngineKind::Interp);
        assert!(!vm.noise.os_jitter);
        assert!(!vm.capture_output);
    }

    #[test]
    fn fault_tolerance_defaults_and_builders() {
        let c = ExperimentConfig::default();
        assert_eq!(c.deadline_ns, None);
        assert_eq!(c.step_budget, None);
        assert_eq!(c.max_retries, 1);
        assert!((c.quarantine_threshold - 0.5).abs() < 1e-12);
        let c = c
            .with_deadline_ns(5.0e9)
            .with_step_budget(1_000_000)
            .with_max_retries(3)
            .with_quarantine_threshold(0.25);
        assert_eq!(c.deadline_ns, Some(5.0e9));
        assert_eq!(c.step_budget, Some(1_000_000));
        assert_eq!(c.max_retries, 3);
        assert!((c.quarantine_threshold - 0.25).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_each_invariant() {
        assert_eq!(ExperimentConfig::default().validate(), Ok(()));
        assert_eq!(ExperimentConfig::jit().validate(), Ok(()));
        assert_eq!(
            ExperimentConfig::interp().with_invocations(0).validate(),
            Err(ConfigError::ZeroInvocations)
        );
        assert_eq!(
            ExperimentConfig::interp().with_iterations(0).validate(),
            Err(ConfigError::ZeroIterations)
        );
        for bad in [0.0, 1.0, -0.2, 1.5, f64::NAN] {
            assert!(matches!(
                ExperimentConfig::interp().with_confidence(bad).validate(),
                Err(ConfigError::Confidence(_))
            ));
        }
        for bad in [-0.1, 1.1, f64::NAN] {
            assert!(matches!(
                ExperimentConfig::interp()
                    .with_quarantine_threshold(bad)
                    .validate(),
                Err(ConfigError::QuarantineThreshold(_))
            ));
        }
        assert_eq!(
            ExperimentConfig::interp().with_threads(0).validate(),
            Err(ConfigError::ZeroThreads)
        );
        // Boundary values that are legal.
        assert_eq!(
            ExperimentConfig::interp()
                .with_quarantine_threshold(0.0)
                .validate(),
            Ok(())
        );
        assert_eq!(
            ExperimentConfig::interp()
                .with_quarantine_threshold(1.0)
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn vm_config_propagates_budgets() {
        let c = ExperimentConfig::interp()
            .with_deadline_ns(1.0e8)
            .with_step_budget(42);
        let vm = c.vm_config();
        assert_eq!(vm.time_budget_ns, Some(1.0e8));
        assert_eq!(vm.step_budget, Some(42));
    }
}
