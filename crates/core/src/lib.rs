//! # rigor — a rigorous benchmarking and performance-analysis methodology
//! # for Python-like workloads
//!
//! This crate is the primary contribution of the workspace: the methodology
//! of Crapé & Eeckhout (IISWC 2020) reconstructed as a Rust library, running
//! against the [`minipy`] simulated-Python substrate.
//!
//! The pipeline:
//!
//! 1. **Measure** — [`Runner::measure`] runs N fresh VM *invocations* ×
//!    M in-process *iterations* and records every per-iteration virtual time.
//! 2. **Detect steady state** — [`SteadyStateDetector`] excises warmup per
//!    invocation (CoV-window à la Georges et al., or changepoint à la
//!    Barrett et al.); [`WarmupClassifier`] names the series shape.
//! 3. **Analyze** — [`compare`] produces speedups with confidence intervals
//!    over per-invocation steady means; [`decompose`] splits variance into
//!    intra- vs inter-invocation components; [`run_until_precise`] samples
//!    sequentially until a precision target is met.
//! 4. **Audit the shortcuts** — [`NaiveScheme`] emulates the usual
//!    methodological shortcuts so experiments can quantify how wrong they go.
//!
//! 5. **Observe** — [`Runner`] accepts [`ExperimentObserver`]s that stream
//!    typed [`ExperimentEvent`]s (live progress, JSONL traces, collectors)
//!    while an experiment runs; see the [`telemetry`] module.
//! 6. **Survive faults** — invocations run under virtual-time deadlines and
//!    step budgets, failures are retried with fresh seeds and censored into
//!    the measurement's error taxonomy (see [`FailureKind`]), high-failure
//!    benchmarks are quarantined, and completed invocations stream to a
//!    [`checkpoint`] journal that [`Runner::resume`] replays bit-for-bit.
//!    The [`fault`] module injects deterministic faults to test all of it.
//! 7. **Gate** — [`check_regressions`] compares the current run against a
//!    baseline drawn from history (see the `rigor-store` archive crate),
//!    controlling the suite-wide false-alarm rate with the corrections in
//!    `rigor_stats::fdr`.
//! 8. **Watch trends** — [`analyze_trends`] segments each benchmark's whole
//!    archived history into level shifts ([`trend`]), with bootstrap CIs on
//!    every segment and shift magnitude and corrected significance across
//!    benchmarks × changepoints, alerting when HEAD just shifted.
//! 9. **Orchestrate fleets** — a [`CampaignSpec`] names an explicit cell
//!    grid (benchmarks × engines × config variants × seeds) that
//!    [`Campaign`] executes on a work-stealing worker pool, streaming every
//!    completed [`Cell`] into a [`CellSink`] (the `rigor-store` archive)
//!    and a per-cell journal, so a killed campaign resumes exactly at its
//!    first incomplete cell; see the [`campaign`] and [`orchestrator`]
//!    modules.
//!
//! ```rust
//! use rigor::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sieve = find("sieve").expect("in the suite");
//! let small = |cfg: ExperimentConfig| {
//!     cfg.with_invocations(4).with_iterations(20).with_size(Size::Small)
//! };
//! let interp = Runner::new(small(ExperimentConfig::interp()))?.measure(&sieve)?;
//! let jit = Runner::new(small(ExperimentConfig::jit()))?.measure(&sieve)?;
//! let result = compare(&interp, &jit, &SteadyStateDetector::default(), 0.95)?;
//! println!("sieve speedup: {:.2}x", result.speedup.estimate);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod checkpoint;
pub mod compare;
pub mod config;
pub mod export;
pub mod fault;
pub mod measurement;
pub mod naive;
pub mod orchestrator;
pub mod planner;
pub mod regress;
pub mod report;
pub mod runner;
pub mod sequential;
pub mod steady;
pub mod telemetry;
pub mod trend;
pub mod variance;
pub mod verify;
pub mod warmup;

pub use campaign::{
    ArrivalProcess, CampaignError, CampaignJournal, CampaignJournalMeta, CampaignJournalWriter,
    CampaignSpec, Cell, CellDone, CellId, CellPrecision, CellReceipt, CellSink, ConfigVariant,
    MemorySink,
};
pub use checkpoint::{Journal, JournalMeta, JournalWriter};
pub use compare::{compare, compare_suite, CompareError, SpeedupResult, SuiteComparison};
pub use config::{ConfigError, ExperimentConfig};
pub use export::{from_csv, from_json, to_csv, to_json, SCHEMA_VERSION};
pub use fault::{FaultPlan, InjectedFault, NetFault, NetFaultPlan};
pub use measurement::{
    BenchmarkMeasurement, CensoredInvocation, FailureKind, InvocationRecord, IterationCounters,
};
pub use naive::{
    all_schemes, evaluate_scheme, verdict_from_ci, verdict_from_point, NaiveEvaluation,
    NaiveScheme, Verdict,
};
pub use orchestrator::{Campaign, CampaignReport};
pub use planner::{compute_plan, CellEstimate, Plan, PlannerConfig, RefineTask};
pub use regress::{
    check_regressions, pool_measurements, BenchmarkGate, Correction, GatePolicy, GateReport,
    GateStatus,
};
pub use report::{fmt_ci, fmt_ns, fmt_pct, sparkline, Table};
pub use runner::Runner;
pub use sequential::{precision_of, run_until_precise, SequentialPlan, SequentialResult};
pub use steady::{
    common_steady_start, per_invocation_steady_means, SteadyState, SteadyStateDetector,
};
pub use telemetry::{
    parse_trace, CollectingObserver, ExperimentEvent, ExperimentObserver, JsonlTraceObserver,
    NullObserver, ParsedTrace, ProgressObserver,
};
pub use trend::{
    analyze_trend, analyze_trends, BenchmarkTrend, Changepoint, Penalty, ShiftDirection,
    TrendConfig, TrendPoint, TrendReport, TrendSegment, TrendStatus,
};
pub use variance::{decompose, VarianceDecomposition};
pub use verify::{execute_all, run_grid};
pub use warmup::{aggregate_classes, BenchmarkWarmupClass, WarmupClass, WarmupClassifier};

/// One-stop imports for the common measure → detect → compare pipeline,
/// including the workload suite: `use rigor::prelude::*;`.
pub mod prelude {
    pub use crate::campaign::{ArrivalProcess, CampaignSpec, CellSink, ConfigVariant};
    pub use crate::compare::{compare, compare_suite, SpeedupResult};
    pub use crate::config::ConfigError;
    pub use crate::config::ExperimentConfig;
    pub use crate::measurement::{BenchmarkMeasurement, InvocationRecord, IterationCounters};
    pub use crate::orchestrator::{Campaign, CampaignReport};
    pub use crate::report::Table;
    pub use crate::runner::Runner;
    pub use crate::steady::SteadyStateDetector;
    pub use crate::telemetry::{
        CollectingObserver, ExperimentEvent, ExperimentObserver, JsonlTraceObserver,
        ProgressObserver,
    };
    pub use crate::warmup::WarmupClassifier;
    pub use rigor_workloads::{find, suite, Size, Workload};
}
