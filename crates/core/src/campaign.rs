//! Campaign data model: an explicit cell grid over benchmarks × engines ×
//! config variants × seeds.
//!
//! A [`CampaignSpec`] names the four axes plus a base [`ExperimentConfig`];
//! [`CampaignSpec::cells`] expands them — in a fixed, documented order — into
//! typed [`Cell`]s, each carrying its own fully-resolved config and workload.
//! The cell is the unit the orchestrator (`crate::orchestrator`) schedules,
//! executes via [`crate::Runner::measure`], and streams into a [`CellSink`]
//! as soon as it completes.
//!
//! Identity is explicit at every level:
//!
//! - a cell's [`CellId`] renders canonically as
//!   `benchmark/engine/variant/seed`, which doubles as the archive label of
//!   the cell's run;
//! - a campaign's [`CampaignSpec::fingerprint`] hashes the full grid
//!   description, so a resumed campaign can refuse a journal written by a
//!   different grid;
//! - the campaign journal (one meta line + one line per completed cell,
//!   flushed per line — the same crash contract as [`crate::checkpoint`])
//!   records which cells finished, in completion order.
//!
//! Inter-cell pacing comes from a seeded [`ArrivalProcess`]: delays are a
//! pure function of (campaign seed, cell index), so a campaign replays the
//! same arrival pattern under the same `--seed` regardless of worker count.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

use minipy::EngineKind;
use rigor_workloads::{find, Workload};
use serde::json::{get_field, DeError, JsonValue};
use serde::{Deserialize, Serialize};

use crate::config::{ConfigError, ExperimentConfig};
use crate::measurement::BenchmarkMeasurement;
use crate::planner::PlannerConfig;

/// Magic tag of a campaign journal's meta line.
const MAGIC: &str = "rigor-campaign";
/// Campaign-journal format version.
const VERSION: u32 = 1;

/// Why a campaign could not be expanded, started or resumed.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// An axis of the grid is empty; the grid would have no cells.
    EmptyAxis(&'static str),
    /// A benchmark name not present in the workload suite.
    UnknownBenchmark(String),
    /// A cell's resolved config failed validation.
    Config {
        /// Canonical id of the offending cell.
        cell: String,
        /// The underlying config error.
        error: ConfigError,
    },
    /// The campaign journal could not be read or written.
    Journal(String),
    /// A resume journal belongs to a different campaign.
    JournalMismatch(String),
    /// The cell sink (archive) rejected an append or lookup.
    Sink(String),
    /// The campaign was configured with zero worker threads.
    ZeroWorkers,
    /// The adaptive-precision planner config is unusable.
    Planner(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::EmptyAxis(axis) => {
                write!(f, "campaign grid has an empty `{axis}` axis")
            }
            CampaignError::UnknownBenchmark(name) => {
                write!(f, "unknown benchmark `{name}`")
            }
            CampaignError::Config { cell, error } => {
                write!(f, "cell {cell}: invalid config: {error}")
            }
            CampaignError::Journal(msg) => write!(f, "campaign journal: {msg}"),
            CampaignError::JournalMismatch(msg) => {
                write!(f, "campaign journal mismatch: {msg}")
            }
            CampaignError::Sink(msg) => write!(f, "cell sink: {msg}"),
            CampaignError::ZeroWorkers => {
                write!(f, "campaign needs at least 1 worker thread")
            }
            CampaignError::Planner(msg) => write!(f, "precision planner: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// One (invocations × iterations) shape of the config axis, named
/// `NxM` (e.g. `10x30`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigVariant {
    /// Invocations per cell.
    pub invocations: u32,
    /// Iterations per invocation.
    pub iterations: u32,
}

impl ConfigVariant {
    /// The variant matching a base config's shape.
    pub fn of(config: &ExperimentConfig) -> ConfigVariant {
        ConfigVariant {
            invocations: config.invocations,
            iterations: config.iterations,
        }
    }

    /// Parses `"NxM"` (e.g. `"4x10"`).
    ///
    /// # Errors
    ///
    /// A human-readable message when the text is not `NxM` with positive
    /// integers.
    pub fn parse(text: &str) -> Result<ConfigVariant, String> {
        let (inv, iter) = text
            .split_once('x')
            .ok_or_else(|| format!("variant `{text}` is not of the form NxM (e.g. 4x10)"))?;
        let invocations: u32 = inv
            .parse()
            .map_err(|_| format!("variant `{text}`: bad invocation count `{inv}`"))?;
        let iterations: u32 = iter
            .parse()
            .map_err(|_| format!("variant `{text}`: bad iteration count `{iter}`"))?;
        Ok(ConfigVariant {
            invocations,
            iterations,
        })
    }

    /// The variant's canonical name, `NxM`.
    pub fn name(&self) -> String {
        format!("{}x{}", self.invocations, self.iterations)
    }
}

impl fmt::Display for ConfigVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.invocations, self.iterations)
    }
}

/// When the next cell on a worker may start, relative to the previous one
/// finishing. Seeded: every delay is a pure function of (campaign seed,
/// cell index), so a campaign replays identically under the same seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// No inter-cell delay: cells start back to back.
    Immediate,
    /// Uniform delay on [0, 2·mean] milliseconds.
    Uniform {
        /// Mean delay, milliseconds.
        mean_ms: f64,
    },
    /// Poisson arrival process: exponentially distributed delay with the
    /// given mean, in milliseconds.
    Poisson {
        /// Mean delay, milliseconds.
        mean_ms: f64,
    },
}

/// splitmix64 finisher: decorrelates consecutive cell indices into
/// independent 64-bit draws (same idiom as `crate::fault::FaultPlan`).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in [0, 1) for one (seed, cell) pair.
fn unit_draw(seed: u64, index: u64) -> f64 {
    // Domain-separate arrival draws from every other consumer of the seed.
    let z = splitmix(seed ^ 0xA221_7A1C_0DE1_CE11 ^ splitmix(index));
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl ArrivalProcess {
    /// Parses `"immediate"`, `"uniform:MEAN_MS"` or `"poisson:MEAN_MS"`.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown kinds or bad means.
    pub fn parse(text: &str) -> Result<ArrivalProcess, String> {
        if text == "immediate" {
            return Ok(ArrivalProcess::Immediate);
        }
        let (kind, mean) = text.split_once(':').ok_or_else(|| {
            format!("arrival `{text}` is not immediate, uniform:MEAN_MS or poisson:MEAN_MS")
        })?;
        let mean_ms: f64 = mean
            .parse()
            .map_err(|_| format!("arrival `{text}`: bad mean `{mean}`"))?;
        if !(mean_ms >= 0.0 && mean_ms.is_finite()) {
            return Err(format!("arrival `{text}`: mean must be finite and >= 0"));
        }
        match kind {
            "uniform" => Ok(ArrivalProcess::Uniform { mean_ms }),
            "poisson" => Ok(ArrivalProcess::Poisson { mean_ms }),
            other => Err(format!(
                "arrival kind `{other}` is not immediate, uniform or poisson"
            )),
        }
    }

    /// The deterministic inter-cell delay before cell `index` starts.
    pub fn delay(&self, seed: u64, index: u64) -> Duration {
        let mean_ms = match self {
            ArrivalProcess::Immediate => return Duration::ZERO,
            ArrivalProcess::Uniform { mean_ms } | ArrivalProcess::Poisson { mean_ms } => *mean_ms,
        };
        if mean_ms <= 0.0 {
            return Duration::ZERO;
        }
        let u = unit_draw(seed, index);
        let ms = match self {
            ArrivalProcess::Uniform { .. } => u * 2.0 * mean_ms,
            // Inverse-CDF sample of Exp(1/mean): the inter-arrival law of a
            // Poisson process.
            ArrivalProcess::Poisson { .. } => -mean_ms * (1.0 - u).ln(),
            ArrivalProcess::Immediate => unreachable!(),
        };
        Duration::from_nanos((ms * 1.0e6) as u64)
    }
}

impl fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalProcess::Immediate => write!(f, "immediate"),
            ArrivalProcess::Uniform { mean_ms } => write!(f, "uniform:{mean_ms}"),
            ArrivalProcess::Poisson { mean_ms } => write!(f, "poisson:{mean_ms}"),
        }
    }
}

/// The identity of one cell: which point of the grid it measures.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellId {
    /// Benchmark name.
    pub benchmark: String,
    /// Engine name (`"interp"` / `"jit"`).
    pub engine: String,
    /// Config-variant name (`NxM`).
    pub variant: String,
    /// The cell's experiment seed.
    pub seed: u64,
}

impl CellId {
    /// The canonical rendering, `benchmark/engine/variant/seed` — unique
    /// within a campaign and used as the archive label of the cell's run.
    pub fn canonical(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.benchmark, self.engine, self.variant, self.seed
        )
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.canonical())
    }
}

/// One schedulable unit of a campaign: a fully-resolved experiment.
#[derive(Clone)]
pub struct Cell {
    /// The cell's position in grid-expansion order; doubles as the
    /// deterministic archive sequence number of the cell's run.
    pub index: usize,
    /// What the cell measures.
    pub id: CellId,
    /// The cell's fully-resolved config (`threads` forced to 1 — the
    /// campaign's workers are the unit of parallelism).
    pub config: ExperimentConfig,
    /// The workload to measure.
    pub workload: Workload,
}

// Manual: `Workload` carries source generators, not data.
impl fmt::Debug for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cell")
            .field("index", &self.index)
            .field("id", &self.id.canonical())
            .finish_non_exhaustive()
    }
}

/// How precisely a cell was measured by the adaptive planner: the final
/// sample size, the relative CI half-width it achieved (if a CI existed),
/// and whether that met the campaign's target. Archived alongside the
/// measurement so `rigor history` can show precision attainment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellPrecision {
    /// VM invocations the cell ended with.
    pub invocations_used: u32,
    /// Achieved relative CI half-width of the steady-state mean, if a
    /// confidence interval could be formed.
    pub rel_half_width: Option<f64>,
    /// The target relative half-width the planner was chasing.
    pub target_rel_half_width: f64,
    /// True when `rel_half_width` exists and is at or under the target.
    pub target_met: bool,
}

/// Proof that a cell's measurement reached durable storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellReceipt {
    /// Content-addressed id of the archived run.
    pub run_id: String,
    /// The run's sequence number in the archive.
    pub seq: u64,
}

/// Where completed cells stream to. Implemented by `rigor-store`'s
/// `SharedStore` (the archive behind a writer lock); [`MemorySink`] is the
/// in-process stand-in for tests.
///
/// Contract: `archive_cell` must be **idempotent** — archiving a cell that
/// is already present returns the existing receipt instead of appending a
/// duplicate — and callers may invoke it from many threads at once.
pub trait CellSink: Send + Sync {
    /// Durably stores a completed cell's measurement and returns its
    /// receipt.
    ///
    /// # Errors
    ///
    /// A human-readable message when the append fails.
    fn archive_cell(
        &self,
        cell: &Cell,
        measurement: &BenchmarkMeasurement,
    ) -> Result<CellReceipt, String>;

    /// The receipt of `cell` if an earlier (possibly killed) campaign
    /// already archived it — the resume authority.
    ///
    /// # Errors
    ///
    /// A human-readable message when the lookup fails.
    fn completed_cell(&self, cell: &Cell) -> Result<Option<CellReceipt>, String>;

    /// Like [`CellSink::archive_cell`], but also records how precisely the
    /// cell was measured. Sinks without a precision side-channel fall back
    /// to plain archiving.
    ///
    /// # Errors
    ///
    /// A human-readable message when the append fails.
    fn archive_cell_precise(
        &self,
        cell: &Cell,
        measurement: &BenchmarkMeasurement,
        precision: &CellPrecision,
    ) -> Result<CellReceipt, String> {
        let _ = precision;
        self.archive_cell(cell, measurement)
    }

    /// The precision recorded for `cell` by an earlier campaign, if any —
    /// lets a resumed adaptive campaign count invocations already spent.
    /// Sinks without a precision side-channel report `None`.
    ///
    /// # Errors
    ///
    /// A human-readable message when the lookup fails.
    fn completed_precision(&self, cell: &Cell) -> Result<Option<CellPrecision>, String> {
        let _ = cell;
        Ok(None)
    }
}

/// An in-memory [`CellSink`] keyed by cell index; the test stand-in for the
/// on-disk archive.
#[derive(Default)]
pub struct MemorySink {
    cells: Mutex<BTreeMap<usize, (String, BenchmarkMeasurement)>>,
    precisions: Mutex<BTreeMap<usize, CellPrecision>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Completed cells, as (index, canonical id, measurement), in index
    /// order.
    pub fn cells(&self) -> Vec<(usize, String, BenchmarkMeasurement)> {
        self.cells
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .map(|(i, (id, m))| (*i, id.clone(), m.clone()))
            .collect()
    }

    /// How many cells have been archived.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("memory sink poisoned").len()
    }

    /// True when no cell has been archived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Precision records, as (index, precision), in index order.
    pub fn precisions(&self) -> Vec<(usize, CellPrecision)> {
        self.precisions
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .map(|(i, p)| (*i, p.clone()))
            .collect()
    }
}

impl CellSink for MemorySink {
    fn archive_cell(
        &self,
        cell: &Cell,
        measurement: &BenchmarkMeasurement,
    ) -> Result<CellReceipt, String> {
        let mut cells = self.cells.lock().expect("memory sink poisoned");
        cells
            .entry(cell.index)
            .or_insert_with(|| (cell.id.canonical(), measurement.clone()));
        Ok(CellReceipt {
            run_id: format!("mem-{:016x}", fnv1a(cell.id.canonical().as_bytes())),
            seq: cell.index as u64,
        })
    }

    fn completed_cell(&self, cell: &Cell) -> Result<Option<CellReceipt>, String> {
        let cells = self.cells.lock().expect("memory sink poisoned");
        Ok(cells.get(&cell.index).map(|_| CellReceipt {
            run_id: format!("mem-{:016x}", fnv1a(cell.id.canonical().as_bytes())),
            seq: cell.index as u64,
        }))
    }

    fn archive_cell_precise(
        &self,
        cell: &Cell,
        measurement: &BenchmarkMeasurement,
        precision: &CellPrecision,
    ) -> Result<CellReceipt, String> {
        let receipt = self.archive_cell(cell, measurement)?;
        self.precisions
            .lock()
            .expect("memory sink poisoned")
            .entry(cell.index)
            .or_insert_with(|| precision.clone());
        Ok(receipt)
    }

    fn completed_precision(&self, cell: &Cell) -> Result<Option<CellPrecision>, String> {
        let precisions = self.precisions.lock().expect("memory sink poisoned");
        Ok(precisions.get(&cell.index).cloned())
    }
}

/// FNV-1a over `bytes`: a tiny, stable, dependency-free 64-bit digest for
/// campaign fingerprints.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The four axes of a campaign plus the base config every cell inherits.
#[derive(Clone)]
pub struct CampaignSpec {
    /// Benchmark names (must exist in the workload suite).
    pub benchmarks: Vec<String>,
    /// Engines to sweep.
    pub engines: Vec<EngineKind>,
    /// Experiment shapes to sweep.
    pub variants: Vec<ConfigVariant>,
    /// Experiment seeds to sweep.
    pub seeds: Vec<u64>,
    /// Everything the axes don't override: size preset, noise, budgets,
    /// retries, quarantine threshold, confidence — and the campaign seed
    /// driving the arrival process.
    pub base: ExperimentConfig,
    /// Inter-cell pacing model.
    pub arrival: ArrivalProcess,
    /// Adaptive-precision planner; `None` keeps the fixed grid walk.
    pub planner: Option<PlannerConfig>,
}

impl CampaignSpec {
    /// A spec with single-point axes taken from `base`: one benchmark would
    /// still have to be set, but engines/variants/seeds default to the
    /// base config's values.
    pub fn new(base: ExperimentConfig) -> CampaignSpec {
        CampaignSpec {
            benchmarks: Vec::new(),
            engines: vec![base.engine],
            variants: vec![ConfigVariant::of(&base)],
            seeds: vec![base.experiment_seed],
            base,
            arrival: ArrivalProcess::Immediate,
            planner: None,
        }
    }

    /// Sets the benchmark axis (builder style).
    pub fn with_benchmarks<I, S>(mut self, names: I) -> CampaignSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.benchmarks = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the engine axis (builder style).
    pub fn with_engines(mut self, engines: Vec<EngineKind>) -> CampaignSpec {
        self.engines = engines;
        self
    }

    /// Sets the config-variant axis (builder style).
    pub fn with_variants(mut self, variants: Vec<ConfigVariant>) -> CampaignSpec {
        self.variants = variants;
        self
    }

    /// Sets the seed axis (builder style).
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> CampaignSpec {
        self.seeds = seeds;
        self
    }

    /// Sets the arrival process (builder style).
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> CampaignSpec {
        self.arrival = arrival;
        self
    }

    /// Turns on the adaptive-precision planner (builder style).
    pub fn with_planner(mut self, planner: PlannerConfig) -> CampaignSpec {
        self.planner = Some(planner);
        self
    }

    /// The grid size, before expansion.
    pub fn cell_count(&self) -> usize {
        self.benchmarks.len() * self.engines.len() * self.variants.len() * self.seeds.len()
    }

    /// The canonical description the fingerprint hashes: every axis in
    /// order, plus the base facts that change measurement bytes.
    fn canonical_description(&self) -> String {
        let engines: Vec<&str> = self.engines.iter().map(|e| e.name()).collect();
        let variants: Vec<String> = self.variants.iter().map(ConfigVariant::name).collect();
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let mut description = format!(
            "benchmarks={};engines={};variants={};seeds={};size={:?};\
             campaign_seed={};confidence={};arrival={}",
            self.benchmarks.join(","),
            engines.join(","),
            variants.join(","),
            seeds.join(","),
            self.base.size,
            self.base.experiment_seed,
            self.base.confidence,
            self.arrival,
        );
        // Appended only when adaptive, so fixed-grid fingerprints are
        // byte-identical to those of earlier archive versions.
        if let Some(planner) = &self.planner {
            description.push_str(";planner=");
            description.push_str(&planner.describe());
        }
        description
    }

    /// A stable 16-hex-digit identity of the grid; two specs with the same
    /// axes, size, confidence, campaign seed and arrival share it.
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", fnv1a(self.canonical_description().as_bytes()))
    }

    /// Expands the grid into cells, in the fixed order
    /// benchmarks → engines → variants → seeds (the innermost axis varies
    /// fastest). Every cell's config is validated; `threads` is forced to 1
    /// so the campaign's workers are the only parallelism.
    ///
    /// # Errors
    ///
    /// [`CampaignError::EmptyAxis`] for an empty axis,
    /// [`CampaignError::UnknownBenchmark`] for a name outside the suite,
    /// [`CampaignError::Config`] when a resolved cell config is invalid.
    pub fn cells(&self) -> Result<Vec<Cell>, CampaignError> {
        if self.benchmarks.is_empty() {
            return Err(CampaignError::EmptyAxis("benchmarks"));
        }
        if self.engines.is_empty() {
            return Err(CampaignError::EmptyAxis("engines"));
        }
        if self.variants.is_empty() {
            return Err(CampaignError::EmptyAxis("variants"));
        }
        if self.seeds.is_empty() {
            return Err(CampaignError::EmptyAxis("seeds"));
        }
        let mut cells = Vec::with_capacity(self.cell_count());
        for benchmark in &self.benchmarks {
            let workload = find(benchmark)
                .ok_or_else(|| CampaignError::UnknownBenchmark(benchmark.clone()))?;
            for engine in &self.engines {
                for variant in &self.variants {
                    for &seed in &self.seeds {
                        let id = CellId {
                            benchmark: benchmark.clone(),
                            engine: engine.name().to_string(),
                            variant: variant.name(),
                            seed,
                        };
                        let config = self
                            .base
                            .clone()
                            .with_engine(*engine)
                            .with_invocations(variant.invocations)
                            .with_iterations(variant.iterations)
                            .with_seed(seed)
                            .with_threads(1);
                        config.validate().map_err(|error| CampaignError::Config {
                            cell: id.canonical(),
                            error,
                        })?;
                        cells.push(Cell {
                            index: cells.len(),
                            id,
                            config,
                            workload: workload.clone(),
                        });
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// Identity line of a campaign journal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignJournalMeta {
    /// The campaign's grid fingerprint ([`CampaignSpec::fingerprint`]).
    pub fingerprint: String,
    /// Cells in the grid.
    pub cells: u32,
}

fn meta_line(meta: &CampaignJournalMeta) -> JsonValue {
    let mut fields = vec![
        ("campaign".to_string(), JsonValue::Str(MAGIC.to_string())),
        ("version".to_string(), VERSION.to_value()),
    ];
    if let JsonValue::Object(meta_fields) = meta.to_value() {
        fields.extend(meta_fields);
    }
    JsonValue::Object(fields)
}

// `to_string` needs a `Serialize` value; wraps the journal line shapes.
struct JournalLine(JsonValue);

impl Serialize for JournalLine {
    fn to_value(&self) -> JsonValue {
        self.0.clone()
    }
}

// Raw-value passthrough for shape dispatch before typed parsing.
struct RawValue(JsonValue);

impl Deserialize for RawValue {
    fn from_value(v: &JsonValue) -> Result<RawValue, DeError> {
        Ok(RawValue(v.clone()))
    }
}

/// One completed-cell line of a campaign journal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellDone {
    /// The cell's grid index.
    pub index: u32,
    /// The cell's canonical id.
    pub id: String,
    /// Content-addressed id of the archived run.
    pub run_id: String,
}

/// Appends completed cells to a campaign journal, one flushed line each —
/// the same crash contract as [`crate::checkpoint::JournalWriter`].
#[derive(Debug)]
pub struct CampaignJournalWriter {
    file: std::fs::File,
    written: u32,
}

impl CampaignJournalWriter {
    /// Creates (truncating) a campaign journal at `path` and writes the
    /// meta line.
    ///
    /// # Errors
    ///
    /// When the file cannot be created or written.
    pub fn create(path: &Path, meta: &CampaignJournalMeta) -> io::Result<CampaignJournalWriter> {
        let mut file = std::fs::File::create(path)?;
        let line = serde_json::to_string(&JournalLine(meta_line(meta)))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(file, "{line}")?;
        file.flush()?;
        Ok(CampaignJournalWriter { file, written: 0 })
    }

    /// Appends one completed cell; returns the journaled-cell count.
    ///
    /// # Errors
    ///
    /// When the write fails.
    pub fn append_cell(&mut self, done: &CellDone) -> io::Result<u32> {
        let line = JsonValue::Object(vec![("cell".to_string(), done.to_value())]);
        let text = serde_json::to_string(&JournalLine(line))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.file, "{text}")?;
        // Flush per cell: the whole point is surviving a kill mid-campaign.
        self.file.flush()?;
        self.written += 1;
        Ok(self.written)
    }

    /// Cells journaled so far (meta line excluded).
    pub fn len(&self) -> u32 {
        self.written
    }

    /// True when no cell has been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }
}

/// A loaded campaign journal: the campaign identity plus every completed
/// cell, keyed by grid index.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignJournal {
    /// Identity of the journaled campaign.
    pub meta: CampaignJournalMeta,
    /// Completed cells, by grid index.
    pub completed: BTreeMap<u32, CellDone>,
    /// True when the file ended in a truncated line (kill mid-write); the
    /// valid prefix above is still usable.
    pub truncated: bool,
}

fn parse_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl CampaignJournal {
    /// Parses campaign-journal text.
    ///
    /// # Errors
    ///
    /// A missing/invalid meta line, an unknown line shape, or garbage
    /// anywhere except a truncated final line.
    pub fn parse(text: &str) -> io::Result<CampaignJournal> {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let first = lines
            .first()
            .ok_or_else(|| parse_err("empty journal: no meta line"))?;
        let RawValue(head) = serde_json::from_str(first)
            .map_err(|e| parse_err(format!("campaign meta line: {e}")))?;
        let magic: Option<String> = get_field(&head, "campaign").ok();
        if magic.as_deref() != Some(MAGIC) {
            return Err(parse_err(format!(
                "not a campaign journal (missing `\"campaign\":\"{MAGIC}\"` tag)"
            )));
        }
        let version: u32 =
            get_field(&head, "version").map_err(|e| parse_err(format!("journal version: {e}")))?;
        if version != VERSION {
            return Err(parse_err(format!(
                "unsupported campaign-journal version {version} (expected {VERSION})"
            )));
        }
        let meta = CampaignJournalMeta::from_value(&head)
            .map_err(|e| parse_err(format!("campaign meta line: {e}")))?;

        let mut journal = CampaignJournal {
            meta,
            completed: BTreeMap::new(),
            truncated: false,
        };
        for (idx, line) in lines.iter().enumerate().skip(1) {
            let last = idx + 1 == lines.len();
            match CampaignJournal::parse_line(line) {
                Ok(done) => {
                    journal.completed.insert(done.index, done);
                }
                Err(_) if last => {
                    // Kill mid-write: keep the valid prefix.
                    journal.truncated = true;
                }
                Err(e) => return Err(parse_err(format!("journal line {}: {e}", idx + 1))),
            }
        }
        Ok(journal)
    }

    fn parse_line(line: &str) -> Result<CellDone, DeError> {
        let RawValue(v) = serde_json::from_str(line).map_err(|e| DeError::new(e.to_string()))?;
        if v.get("cell").is_some() {
            get_field(&v, "cell")
        } else {
            Err(DeError::new("expected a `cell` line"))
        }
    }

    /// Loads a campaign journal, tolerating the two states a kill can leave
    /// behind besides a parseable file: no file at all, or a file without
    /// one complete meta line. Both mean "nothing was journaled" and return
    /// `Ok(None)`; anything else unparseable is real corruption.
    ///
    /// # Errors
    ///
    /// I/O errors other than not-found, and corruption past the meta line.
    pub fn load_tolerant(path: &Path) -> io::Result<Option<CampaignJournal>> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        // A journal killed before its first newline has no complete line:
        // treat it as never written.
        if !text.contains('\n') {
            return Ok(None);
        }
        CampaignJournal::parse(&text).map(Some)
    }

    /// Checks that this journal belongs to the campaign described by
    /// `fingerprint` over `cells` cells.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    pub fn check_matches(&self, fingerprint: &str, cells: u32) -> Result<(), String> {
        if self.meta.fingerprint != fingerprint {
            return Err(format!(
                "journal belongs to campaign {}, this grid is {}",
                self.meta.fingerprint, fingerprint
            ));
        }
        if self.meta.cells != cells {
            return Err(format!(
                "journal expects {} cells, this grid has {}",
                self.meta.cells, cells
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigor_workloads::Size;

    fn base() -> ExperimentConfig {
        ExperimentConfig::interp()
            .with_invocations(2)
            .with_iterations(3)
            .with_size(Size::Small)
            .with_seed(7)
    }

    fn spec() -> CampaignSpec {
        CampaignSpec::new(base())
            .with_benchmarks(["sieve", "leibniz"])
            .with_engines(vec![
                EngineKind::Interp,
                EngineKind::Jit(minipy::JitConfig::default()),
            ])
            .with_variants(vec![ConfigVariant::parse("2x3").unwrap()])
            .with_seeds(vec![7, 8])
    }

    #[test]
    fn grid_expands_in_documented_order() {
        let cells = spec().cells().unwrap();
        // 2 benchmarks x 2 engines x 1 variant x 2 seeds.
        assert_eq!(cells.len(), 8);
        let ids: Vec<String> = cells.iter().map(|c| c.id.canonical()).collect();
        assert_eq!(
            ids,
            vec![
                "sieve/interp/2x3/7",
                "sieve/interp/2x3/8",
                "sieve/jit/2x3/7",
                "sieve/jit/2x3/8",
                "leibniz/interp/2x3/7",
                "leibniz/interp/2x3/8",
                "leibniz/jit/2x3/7",
                "leibniz/jit/2x3/8",
            ]
        );
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.config.threads, 1, "cells are single-threaded");
            assert_eq!(cell.config.experiment_seed, cell.id.seed);
        }
    }

    #[test]
    fn empty_axes_and_unknown_benchmarks_are_rejected() {
        assert_eq!(
            CampaignSpec::new(base()).cells().unwrap_err(),
            CampaignError::EmptyAxis("benchmarks")
        );
        let s = spec().with_seeds(vec![]);
        assert_eq!(s.cells().unwrap_err(), CampaignError::EmptyAxis("seeds"));
        let s = spec().with_benchmarks(["no_such_benchmark"]);
        assert_eq!(
            s.cells().unwrap_err(),
            CampaignError::UnknownBenchmark("no_such_benchmark".into())
        );
    }

    #[test]
    fn invalid_cell_config_is_rejected_with_its_cell_id() {
        let s = spec().with_variants(vec![ConfigVariant {
            invocations: 0,
            iterations: 3,
        }]);
        match s.cells().unwrap_err() {
            CampaignError::Config { cell, error } => {
                assert_eq!(cell, "sieve/interp/0x3/7");
                assert_eq!(error, ConfigError::ZeroInvocations);
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_is_stable_and_axis_sensitive() {
        assert_eq!(spec().fingerprint(), spec().fingerprint());
        assert_eq!(spec().fingerprint().len(), 16);
        assert_ne!(
            spec().fingerprint(),
            spec().with_seeds(vec![7]).fingerprint()
        );
        assert_ne!(
            spec().fingerprint(),
            spec()
                .with_arrival(ArrivalProcess::Uniform { mean_ms: 1.0 })
                .fingerprint()
        );
    }

    #[test]
    fn variant_parsing() {
        let v = ConfigVariant::parse("4x10").unwrap();
        assert_eq!(v.invocations, 4);
        assert_eq!(v.iterations, 10);
        assert_eq!(v.name(), "4x10");
        assert!(ConfigVariant::parse("4").is_err());
        assert!(ConfigVariant::parse("ax10").is_err());
        assert!(ConfigVariant::parse("4xb").is_err());
    }

    #[test]
    fn arrival_parsing_and_display_roundtrip() {
        for text in ["immediate", "uniform:5", "poisson:2.5"] {
            let a = ArrivalProcess::parse(text).unwrap();
            assert_eq!(a.to_string(), text);
        }
        assert!(ArrivalProcess::parse("gaussian:1").is_err());
        assert!(ArrivalProcess::parse("uniform:-1").is_err());
        assert!(ArrivalProcess::parse("uniform:NaN").is_err());
        assert!(ArrivalProcess::parse("poisson").is_err());
    }

    #[test]
    fn arrival_delays_are_deterministic_and_distributed() {
        let a = ArrivalProcess::Poisson { mean_ms: 2.0 };
        for i in 0..32 {
            assert_eq!(a.delay(7, i), a.delay(7, i), "pure function of inputs");
        }
        assert_ne!(a.delay(7, 0), a.delay(7, 1), "indices decorrelate");
        assert_ne!(a.delay(7, 0), a.delay(8, 0), "seeds decorrelate");
        assert_eq!(
            ArrivalProcess::Immediate.delay(7, 3),
            Duration::ZERO,
            "immediate never delays"
        );
        // A uniform mean of m ms stays under 2m ms.
        let u = ArrivalProcess::Uniform { mean_ms: 1.0 };
        for i in 0..256 {
            assert!(u.delay(7, i) < Duration::from_millis(2));
        }
    }

    #[test]
    fn journal_roundtrips_and_tolerates_torn_tail() {
        let path = std::env::temp_dir().join(format!(
            "rigor-campaign-journal-{}.jsonl",
            std::process::id()
        ));
        let meta = CampaignJournalMeta {
            fingerprint: spec().fingerprint(),
            cells: 8,
        };
        let mut w = CampaignJournalWriter::create(&path, &meta).unwrap();
        assert!(w.is_empty());
        for i in 0..3u32 {
            let done = CellDone {
                index: i,
                id: format!("cell-{i}"),
                run_id: format!("run-{i}"),
            };
            assert_eq!(w.append_cell(&done).unwrap(), i + 1);
        }
        assert_eq!(w.len(), 3);
        drop(w);

        let j = CampaignJournal::load_tolerant(&path).unwrap().unwrap();
        assert_eq!(j.meta, meta);
        assert_eq!(j.completed.len(), 3);
        assert!(!j.truncated);
        assert!(j.check_matches(&spec().fingerprint(), 8).is_ok());
        assert!(j.check_matches(&spec().fingerprint(), 9).is_err());
        assert!(j.check_matches("0000000000000000", 8).is_err());

        // Tear the final line: the valid prefix survives.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.trim_end().len() - 10]).unwrap();
        let j = CampaignJournal::load_tolerant(&path).unwrap().unwrap();
        assert!(j.truncated);
        assert_eq!(j.completed.len(), 2);

        // A file killed before the meta line completed is "never written".
        std::fs::write(&path, &text[..5]).unwrap();
        assert!(CampaignJournal::load_tolerant(&path).unwrap().is_none());
        std::fs::remove_file(&path).ok();
        assert!(CampaignJournal::load_tolerant(&path).unwrap().is_none());
    }

    #[test]
    fn journal_rejects_garbage_and_foreign_files() {
        assert!(CampaignJournal::parse("").is_err());
        assert!(CampaignJournal::parse("{\"foo\":1}\n").is_err());
        let meta = CampaignJournalMeta {
            fingerprint: "abcd".into(),
            cells: 2,
        };
        let head = serde_json::to_string(&JournalLine(meta_line(&meta))).unwrap();
        let text = format!("{head}\nnot json\n{head}\n");
        assert!(CampaignJournal::parse(&text).is_err());
    }

    #[test]
    fn memory_sink_is_idempotent() {
        let cells = spec().cells().unwrap();
        let sink = MemorySink::new();
        let m = BenchmarkMeasurement {
            benchmark: "sieve".into(),
            engine: "interp".into(),
            invocations: vec![],
            censored: vec![],
            quarantined: false,
        };
        assert!(sink.completed_cell(&cells[0]).unwrap().is_none());
        let a = sink.archive_cell(&cells[0], &m).unwrap();
        let b = sink.archive_cell(&cells[0], &m).unwrap();
        assert_eq!(a, b);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.completed_cell(&cells[0]).unwrap(), Some(a));
    }
}
