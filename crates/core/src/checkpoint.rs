//! Checkpoint journal: completed invocations streamed to JSONL so a killed
//! experiment resumes where it stopped instead of restarting.
//!
//! Format: one JSON object per line. The first line is a *meta* line
//! identifying the experiment (benchmark, engine, seed, shape); every
//! subsequent line is either a completed [`InvocationRecord`] or a
//! [`CensoredInvocation`]:
//!
//! ```text
//! {"journal":"rigor-checkpoint","version":1,"benchmark":"sieve",...}
//! {"record":{"invocation":0,...}}
//! {"censored":{"invocation":3,...}}
//! ```
//!
//! Lines are flushed as they are written, so after a crash the file holds
//! every finished invocation plus at most one truncated line — which
//! [`Journal::load`] tolerates, exactly like `telemetry::parse_trace`.
//! Because invocation seeds are pure functions of the experiment seed,
//! replaying journaled records and running only the missing invocations
//! reproduces the uninterrupted experiment bit-for-bit.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

use serde::json::{get_field, DeError, JsonValue};
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::measurement::{CensoredInvocation, InvocationRecord};

/// Magic tag of the meta line.
const MAGIC: &str = "rigor-checkpoint";
/// Journal format version.
const VERSION: u32 = 1;

/// Identity of the experiment a journal belongs to. Resume refuses to mix
/// journals across experiments: replaying records measured under a different
/// seed or shape would silently corrupt the statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalMeta {
    /// Benchmark name.
    pub benchmark: String,
    /// Engine name (`"interp"` / `"jit"`).
    pub engine: String,
    /// Master experiment seed.
    pub experiment_seed: u64,
    /// Requested invocation count.
    pub invocations: u32,
    /// Requested iterations per invocation.
    pub iterations: u32,
}

impl JournalMeta {
    /// The meta for one benchmark under `config`.
    pub fn for_experiment(config: &ExperimentConfig, benchmark: &str) -> JournalMeta {
        JournalMeta {
            benchmark: benchmark.to_string(),
            engine: config.engine.name().to_string(),
            experiment_seed: config.experiment_seed,
            invocations: config.invocations,
            iterations: config.iterations,
        }
    }
}

fn meta_line(meta: &JournalMeta) -> JsonValue {
    let mut fields = vec![
        ("journal".to_string(), JsonValue::Str(MAGIC.to_string())),
        ("version".to_string(), VERSION.to_value()),
    ];
    if let JsonValue::Object(meta_fields) = meta.to_value() {
        fields.extend(meta_fields);
    }
    JsonValue::Object(fields)
}

// `to_string` needs a `Serialize` value; wrap the three line shapes.
struct JournalLine(JsonValue);

impl Serialize for JournalLine {
    fn to_value(&self) -> JsonValue {
        self.0.clone()
    }
}

// `from_str` needs a `Deserialize` target; this one just keeps the raw
// value so journal lines can be shape-dispatched before typed parsing.
struct RawValue(JsonValue);

impl Deserialize for RawValue {
    fn from_value(v: &JsonValue) -> Result<RawValue, DeError> {
        Ok(RawValue(v.clone()))
    }
}

/// Appends completed invocations to a journal file, one flushed line each.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
    written: u32,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and writes the meta line.
    ///
    /// # Errors
    ///
    /// When the file cannot be created or written.
    pub fn create(path: &Path, meta: &JournalMeta) -> io::Result<JournalWriter> {
        let mut file = std::fs::File::create(path)?;
        let line = serde_json::to_string(&JournalLine(meta_line(meta)))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(file, "{line}")?;
        file.flush()?;
        Ok(JournalWriter { file, written: 0 })
    }

    fn append(&mut self, tag: &str, value: JsonValue) -> io::Result<u32> {
        let line = JsonValue::Object(vec![(tag.to_string(), value)]);
        let text = serde_json::to_string(&JournalLine(line))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.file, "{text}")?;
        // Flush per line: the whole point is surviving a kill mid-run.
        self.file.flush()?;
        self.written += 1;
        Ok(self.written)
    }

    /// Appends a measured invocation; returns the journaled-line count.
    ///
    /// # Errors
    ///
    /// When the write fails.
    pub fn append_record(&mut self, record: &InvocationRecord) -> io::Result<u32> {
        self.append("record", record.to_value())
    }

    /// Appends a censored invocation; returns the journaled-line count.
    ///
    /// # Errors
    ///
    /// When the write fails.
    pub fn append_censored(&mut self, censored: &CensoredInvocation) -> io::Result<u32> {
        self.append("censored", censored.to_value())
    }

    /// Invocations journaled so far (meta line excluded).
    pub fn len(&self) -> u32 {
        self.written
    }

    /// True when no invocation has been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }
}

/// A loaded journal: the experiment identity plus every completed
/// invocation, keyed by invocation index.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// Identity of the journaled experiment.
    pub meta: JournalMeta,
    /// Measured invocations, by index.
    pub records: BTreeMap<u32, InvocationRecord>,
    /// Censored invocations, by index.
    pub censored: BTreeMap<u32, CensoredInvocation>,
    /// True when the file ended in a truncated line (crash mid-write); the
    /// valid prefix above is still usable.
    pub truncated: bool,
}

fn parse_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Journal {
    /// Parses journal text.
    ///
    /// # Errors
    ///
    /// A missing/invalid meta line, an unknown line shape, or garbage
    /// anywhere except a truncated final line.
    pub fn parse(text: &str) -> io::Result<Journal> {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let first = lines
            .first()
            .ok_or_else(|| parse_err("empty journal: no meta line"))?;
        let RawValue(head) = serde_json::from_str(first)
            .map_err(|e| parse_err(format!("journal meta line: {e}")))?;
        let magic: Option<String> = get_field(&head, "journal").ok();
        if magic.as_deref() != Some(MAGIC) {
            return Err(parse_err(format!(
                "not a checkpoint journal (missing `\"journal\":\"{MAGIC}\"` tag)"
            )));
        }
        let version: u32 =
            get_field(&head, "version").map_err(|e| parse_err(format!("journal version: {e}")))?;
        if version != VERSION {
            return Err(parse_err(format!(
                "unsupported journal version {version} (expected {VERSION})"
            )));
        }
        let meta = JournalMeta::from_value(&head)
            .map_err(|e| parse_err(format!("journal meta line: {e}")))?;

        let mut journal = Journal {
            meta,
            records: BTreeMap::new(),
            censored: BTreeMap::new(),
            truncated: false,
        };
        for (idx, line) in lines.iter().enumerate().skip(1) {
            let last = idx + 1 == lines.len();
            match Journal::parse_line(line) {
                Ok(ParsedLine::Record(r)) => {
                    journal.records.insert(r.invocation, r);
                }
                Ok(ParsedLine::Censored(c)) => {
                    journal.censored.insert(c.invocation, c);
                }
                Err(_) if last => {
                    // Crash mid-write: keep the valid prefix.
                    journal.truncated = true;
                }
                Err(e) => return Err(parse_err(format!("journal line {}: {e}", idx + 1))),
            }
        }
        Ok(journal)
    }

    fn parse_line(line: &str) -> Result<ParsedLine, DeError> {
        let RawValue(v) = serde_json::from_str(line).map_err(|e| DeError::new(e.to_string()))?;
        if v.get("record").is_some() {
            Ok(ParsedLine::Record(get_field(&v, "record")?))
        } else if v.get("censored").is_some() {
            Ok(ParsedLine::Censored(get_field(&v, "censored")?))
        } else {
            Err(DeError::new("expected a `record` or `censored` line"))
        }
    }

    /// Loads and parses a journal file.
    ///
    /// # Errors
    ///
    /// I/O errors, plus everything [`Journal::parse`] rejects.
    pub fn load(path: &Path) -> io::Result<Journal> {
        Journal::parse(&std::fs::read_to_string(path)?)
    }

    /// Completed invocations (measured + censored).
    pub fn completed(&self) -> usize {
        self.records.len() + self.censored.len()
    }

    /// True when invocation `inv` already has a journaled outcome.
    pub fn contains(&self, inv: u32) -> bool {
        self.records.contains_key(&inv) || self.censored.contains_key(&inv)
    }

    /// Checks that this journal belongs to the experiment described by
    /// `config` + `benchmark`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    pub fn check_matches(&self, config: &ExperimentConfig, benchmark: &str) -> Result<(), String> {
        let expected = JournalMeta::for_experiment(config, benchmark);
        if self.meta != expected {
            return Err(format!(
                "journal was written by a different experiment: journal has \
                 {:?}, this run is {:?}",
                self.meta, expected
            ));
        }
        Ok(())
    }
}

enum ParsedLine {
    Record(InvocationRecord),
    Censored(CensoredInvocation),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::FailureKind;

    fn meta() -> JournalMeta {
        JournalMeta {
            benchmark: "sieve".into(),
            engine: "interp".into(),
            experiment_seed: 7,
            invocations: 4,
            iterations: 3,
        }
    }

    fn record(inv: u32) -> InvocationRecord {
        InvocationRecord {
            invocation: inv,
            seed: 100 + u64::from(inv),
            startup_ns: 10.5,
            iteration_ns: vec![1.0, 2.0, 3.0],
            gc_cycles: 1,
            jit_compiles: 0,
            deopts: 0,
            checksum: "9".into(),
            iteration_counters: None,
            attempts: 1,
        }
    }

    fn censored(inv: u32) -> CensoredInvocation {
        CensoredInvocation {
            invocation: inv,
            attempts: 2,
            failure: FailureKind::Timeout,
            error: "TimeoutError: too slow".into(),
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "rigor-checkpoint-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn roundtrip_through_a_file() {
        let path = temp_path("roundtrip.jsonl");
        let mut w = JournalWriter::create(&path, &meta()).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.append_record(&record(0)).unwrap(), 1);
        assert_eq!(w.append_censored(&censored(1)).unwrap(), 2);
        assert_eq!(w.append_record(&record(2)).unwrap(), 3);
        assert_eq!(w.len(), 3);
        drop(w);

        let j = Journal::load(&path).unwrap();
        assert_eq!(j.meta, meta());
        assert_eq!(j.completed(), 3);
        assert!(!j.truncated);
        assert_eq!(j.records.get(&0), Some(&record(0)));
        assert_eq!(j.records.get(&2), Some(&record(2)));
        assert_eq!(j.censored.get(&1), Some(&censored(1)));
        assert!(j.contains(1));
        assert!(!j.contains(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_final_line_is_tolerated() {
        let path = temp_path("truncated.jsonl");
        let mut w = JournalWriter::create(&path, &meta()).unwrap();
        w.append_record(&record(0)).unwrap();
        w.append_record(&record(1)).unwrap();
        drop(w);
        // Chop the tail mid-line, as a kill -9 mid-write would.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.trim_end().len() - 15;
        std::fs::write(&path, &text[..cut]).unwrap();

        let j = Journal::load(&path).unwrap();
        assert!(j.truncated);
        assert_eq!(j.completed(), 1);
        assert_eq!(j.records.get(&0), Some(&record(0)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_in_the_middle_is_an_error() {
        let mut text = serde_json::to_string(&JournalLine(meta_line(&meta()))).unwrap();
        text.push('\n');
        text.push_str("not json\n");
        text.push_str(
            &serde_json::to_string(&JournalLine(JsonValue::Object(vec![(
                "record".into(),
                record(0).to_value(),
            )])))
            .unwrap(),
        );
        text.push('\n');
        assert!(Journal::parse(&text).is_err());
    }

    #[test]
    fn rejects_non_journals() {
        assert!(Journal::parse("").is_err());
        assert!(Journal::parse("{\"foo\":1}\n").is_err());
        let wrong_version = "{\"journal\":\"rigor-checkpoint\",\"version\":99,\"benchmark\":\"x\",\
             \"engine\":\"interp\",\"experiment_seed\":1,\"invocations\":1,\"iterations\":1}";
        assert!(Journal::parse(wrong_version).is_err());
    }

    #[test]
    fn meta_mismatch_is_detected() {
        let j = Journal {
            meta: meta(),
            records: BTreeMap::new(),
            censored: BTreeMap::new(),
            truncated: false,
        };
        let config = crate::ExperimentConfig::interp()
            .with_invocations(4)
            .with_iterations(3)
            .with_seed(7);
        assert!(j.check_matches(&config, "sieve").is_ok());
        assert!(j.check_matches(&config, "other").is_err());
        assert!(j
            .check_matches(&config.clone().with_seed(8), "sieve")
            .is_err());
        assert!(j
            .check_matches(&config.with_invocations(5), "sieve")
            .is_err());
    }
}
