//! Parallel driver for the differential verification grid.
//!
//! `rigor verify` expands the (workload × size × engine × seed) grid via
//! [`rigor_workloads::verify::grid`] and this module runs it on the same
//! work-stealing discipline as the campaign orchestrator: cells are dealt
//! round-robin onto per-worker deques, each worker pops its own deque from
//! the front, and an idle worker steals from the back of the longest
//! victim deque. An atomic ticket budget bounds total executions so a
//! panicking worker can never strand cells in a queue another worker
//! could have drained.
//!
//! The driver is deterministic in its *results* (cells are index-addressed
//! so report order never depends on scheduling), though which worker runs
//! which cell is not.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rigor_workloads::verify::{build_report, CellError, Manifest, VerifyCell, VerifyReport};

/// Runs every cell of the grid across `workers` threads and folds the
/// outcomes against `manifest` into a [`VerifyReport`].
///
/// `workers` is clamped to `[1, cells.len()]`; passing an empty grid
/// yields an empty (vacuously passing) report.
pub fn run_grid(
    cells: Vec<VerifyCell>,
    workers: usize,
    manifest: Option<&Manifest>,
) -> VerifyReport {
    let results = execute_all(cells, workers);
    build_report(results, manifest)
}

/// Executes all cells, returning `(cell, result)` pairs in grid order.
pub fn execute_all(
    cells: Vec<VerifyCell>,
    workers: usize,
) -> Vec<(VerifyCell, Result<String, CellError>)> {
    if cells.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, cells.len());
    let total = cells.len();

    // Deal cells round-robin onto per-worker deques, tagged with their
    // grid index so results land in a stable order.
    let queues: Vec<Mutex<VecDeque<(usize, VerifyCell)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let mut originals: Vec<Option<VerifyCell>> = Vec::with_capacity(total);
    for (i, cell) in cells.into_iter().enumerate() {
        originals.push(Some(cell.clone()));
        queues[i % workers]
            .lock()
            .expect("queue poisoned")
            .push_back((i, cell));
    }

    let budget = AtomicUsize::new(total);
    let slots: Vec<Mutex<Option<Result<String, CellError>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let budget = &budget;
            let slots = &slots;
            scope.spawn(move || loop {
                // Claim an execution ticket before touching any queue.
                if budget
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                    .is_err()
                {
                    break;
                }
                // Own deque first (front) …
                let mut work = queues[me].lock().expect("queue poisoned").pop_front();
                // … then steal from the back of the longest other deque.
                if work.is_none() {
                    let victim = (0..queues.len())
                        .filter(|&v| v != me)
                        .map(|v| (v, queues[v].lock().expect("queue poisoned").len()))
                        .filter(|&(_, len)| len > 0)
                        .max_by_key(|&(_, len)| len)
                        .map(|(v, _)| v);
                    if let Some(v) = victim {
                        work = queues[v].lock().expect("queue poisoned").pop_back();
                    }
                }
                let Some((index, cell)) = work else { break };
                let outcome = cell.execute();
                *slots[index].lock().expect("slot poisoned") = Some(outcome);
            });
        }
    });

    originals
        .into_iter()
        .zip(slots)
        .map(|(cell, slot)| {
            let cell = cell.expect("cell recorded at deal time");
            let result = slot
                .into_inner()
                .expect("slot poisoned")
                .unwrap_or_else(|| Err(CellError::Vm("cell was never executed".to_string())));
            (cell, result)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigor_workloads::verify::{grid, VerifyEngine, ALL_SIZES};
    use rigor_workloads::Size;

    #[test]
    fn empty_grid_passes_vacuously() {
        let report = run_grid(Vec::new(), 4, None);
        assert!(report.passed());
        assert!(report.cells.is_empty());
    }

    #[test]
    fn results_keep_grid_order_across_worker_counts() {
        let cells = grid(&[Size::Small], &[1]);
        let a = execute_all(cells.clone(), 1);
        let b = execute_all(cells.clone(), 4);
        assert_eq!(a.len(), cells.len());
        for ((ca, ra), ((cb, rb), orig)) in a.iter().zip(b.iter().zip(&cells)) {
            assert_eq!(ca, orig);
            assert_eq!(cb, orig);
            assert_eq!(ra, rb, "checksums must not depend on scheduling");
        }
    }

    #[test]
    fn small_grid_verifies_clean_against_its_own_manifest() {
        let cells = grid(&[Size::Small], &[1, 2]);
        let first = run_grid(cells.clone(), 4, None);
        // No manifest: nothing can mismatch, engines must agree.
        assert!(first.passed(), "failures: {:?}", first.failures());
        let manifest = first.to_manifest().unwrap();
        let second = run_grid(cells, 4, Some(&manifest));
        assert!(second.passed());
        assert_eq!(
            manifest.entries.len(),
            rigor_workloads::suite().len(),
            "one manifest entry per (workload, size)"
        );
    }

    #[test]
    fn injected_mismatch_names_the_cell() {
        let mut manifest = Manifest::default();
        manifest
            .entries
            .insert("sieve/small".into(), "TAMPERED".into());
        let cells = vec![VerifyCell {
            workload: "sieve".into(),
            size: Size::Small,
            engine: VerifyEngine::Interp,
            seed: 1,
        }];
        let report = run_grid(cells, 1, Some(&manifest));
        assert!(!report.passed());
        assert_eq!(report.failures()[0].cell.id(), "sieve/small/interp/1");
    }

    #[test]
    fn sizes_constant_matches_registry_presets() {
        assert_eq!(ALL_SIZES.len(), 3);
    }
}
