//! Sequential sampling: run invocations until the CI is tight enough.
//!
//! Rather than fixing the invocation count a priori, the methodology keeps
//! adding fresh invocations until the confidence interval on the steady-state
//! mean reaches a target relative half-width (or a budget runs out) — so
//! noisy benchmarks automatically get more samples than quiet ones.

use minipy::MpResult;
use rigor_stats::ci::{mean_ci, ConfidenceInterval};
use serde::{Deserialize, Serialize};

use minipy::{MpError, RuntimeErrorKind};

use crate::config::ExperimentConfig;
use crate::measurement::BenchmarkMeasurement;
use crate::runner::Runner;
use crate::steady::{per_invocation_steady_means, SteadyStateDetector};

/// Outcome of a sequential-sampling run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequentialResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Invocations actually executed.
    pub invocations_used: u32,
    /// Whether the precision target was met within the budget.
    pub target_met: bool,
    /// Final CI on the steady-state mean (if computable).
    pub ci: Option<ConfidenceInterval>,
    /// Relative half-width achieved; `None` when no CI was computable, so
    /// JSON exports carry null/absent instead of a NaN-turned-null that a
    /// reader cannot round-trip.
    pub achieved_rel_half_width: Option<f64>,
    /// The full measurement gathered along the way.
    pub measurement: BenchmarkMeasurement,
}

/// Sequential-sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequentialPlan {
    /// Target relative CI half-width (0.02 = ±2%).
    pub target_rel_half_width: f64,
    /// Invocations to run before the first check.
    pub min_invocations: u32,
    /// Hard budget.
    pub max_invocations: u32,
    /// Invocations added per round after the first check.
    pub batch: u32,
}

impl Default for SequentialPlan {
    fn default() -> Self {
        SequentialPlan {
            target_rel_half_width: 0.02,
            min_invocations: 5,
            max_invocations: 60,
            batch: 5,
        }
    }
}

/// Runs invocations of `source` until the steady-state mean's CI half-width
/// falls below the plan's target.
///
/// The experiment seed drives the invocation seeds exactly as in the
/// fixed-size runner, so a sequential run of n invocations produces the same
/// records as a fixed run of n invocations.
///
/// # Errors
///
/// Propagates workload errors.
pub fn run_until_precise(
    source: &str,
    benchmark: &str,
    config: &ExperimentConfig,
    detector: &SteadyStateDetector,
    plan: &SequentialPlan,
) -> MpResult<SequentialResult> {
    let mut n = plan.min_invocations.max(2);
    loop {
        // Re-run from scratch at size n: invocation seeds are deterministic,
        // so this equals incrementally extending (and keeps the runner API
        // simple); virtual time is cheap.
        let cfg = config.clone().with_invocations(n);
        let m = Runner::new(cfg)
            .map_err(|e| MpError::runtime(RuntimeErrorKind::Value, format!("invalid config: {e}")))?
            .measure_source(source, benchmark)?;
        let (ci, rel) = precision_of(&m, detector, config.confidence);
        let met = rel
            .map(|r| r <= plan.target_rel_half_width)
            .unwrap_or(false);
        if met || n >= plan.max_invocations {
            return Ok(SequentialResult {
                benchmark: benchmark.to_string(),
                invocations_used: n,
                target_met: met,
                achieved_rel_half_width: rel,
                ci,
                measurement: m,
            });
        }
        n = (n + plan.batch).min(plan.max_invocations);
    }
}

/// Fraction of non-converging invocations tolerated before a measurement is
/// considered untrustworthy as a whole.
pub const MAX_DROP_FRAC: f64 = 0.2;

/// Computes the steady-state-mean CI and its relative half-width.
///
/// Uses per-invocation steady windows (each invocation contributes the mean
/// of its own steady tail); up to [`MAX_DROP_FRAC`] of invocations may fail
/// to converge and are excluded rather than poisoning the whole measurement.
pub fn precision_of(
    m: &BenchmarkMeasurement,
    detector: &SteadyStateDetector,
    confidence: f64,
) -> (Option<ConfidenceInterval>, Option<f64>) {
    let Some(means) = per_invocation_steady_means(m, detector, MAX_DROP_FRAC) else {
        return (None, None);
    };
    match mean_ci(&means, confidence) {
        Some(ci) => {
            let rel = ci.relative_half_width();
            (Some(ci), Some(rel))
        }
        None => (None, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rigor_workloads::{find, Size};

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::interp()
            .with_iterations(8)
            .with_size(Size::Small)
            .with_seed(3)
    }

    #[test]
    fn quiet_benchmark_stops_early() {
        let w = find("leibniz").unwrap();
        let plan = SequentialPlan {
            target_rel_half_width: 0.05,
            min_invocations: 4,
            max_invocations: 20,
            batch: 4,
        };
        let r = run_until_precise(
            &w.source(Size::Small),
            w.name,
            &cfg(),
            &SteadyStateDetector::default(),
            &plan,
        )
        .unwrap();
        assert!(r.target_met, "{r:?}");
        assert!(r.invocations_used <= 12, "used {}", r.invocations_used);
        assert!(r.achieved_rel_half_width.unwrap() <= 0.05);
    }

    #[test]
    fn impossible_target_exhausts_budget() {
        let w = find("gc_pressure").unwrap();
        let plan = SequentialPlan {
            target_rel_half_width: 1e-7,
            min_invocations: 3,
            max_invocations: 8,
            batch: 3,
        };
        let r = run_until_precise(
            &w.source(Size::Small),
            w.name,
            &cfg(),
            &SteadyStateDetector::default(),
            &plan,
        )
        .unwrap();
        assert!(!r.target_met);
        assert_eq!(r.invocations_used, 8);
    }

    #[test]
    fn sequential_result_json_round_trips_without_nan() {
        let w = find("gc_pressure").unwrap();
        // An impossible target at a tiny budget can leave no CI at all;
        // either way the JSON must never contain NaN and must round-trip.
        let plan = SequentialPlan {
            target_rel_half_width: 1e-7,
            min_invocations: 2,
            max_invocations: 2,
            batch: 1,
        };
        let r = run_until_precise(
            &w.source(Size::Small),
            w.name,
            &cfg(),
            &SteadyStateDetector::default(),
            &plan,
        )
        .unwrap();
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("NaN"), "{json}");
        let back: SequentialResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.achieved_rel_half_width, r.achieved_rel_half_width);
        assert_eq!(back.invocations_used, r.invocations_used);
        assert_eq!(back.target_met, r.target_met);

        // The explicit no-CI case: None must survive the round trip (as
        // null or an absent field), never as NaN.
        let none = SequentialResult {
            achieved_rel_half_width: None,
            ci: None,
            ..r
        };
        let json = serde_json::to_string(&none).unwrap();
        assert!(!json.contains("NaN"), "{json}");
        let back: SequentialResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.achieved_rel_half_width, None);
    }

    #[test]
    fn precision_of_reports_relative_half_width() {
        let w = find("sieve").unwrap();
        let m = Runner::new(cfg().with_invocations(6))
            .unwrap()
            .measure_source(&w.source(Size::Small), w.name)
            .unwrap();
        let (ci, rel) = precision_of(&m, &SteadyStateDetector::default(), 0.95);
        let ci = ci.expect("steady benchmark has a CI");
        let rel = rel.unwrap();
        assert!(rel > 0.0 && rel < 0.5, "rel = {rel}");
        assert!(ci.contains(ci.estimate));
    }
}
