//! Intra- vs inter-invocation variance decomposition.
//!
//! The paper's central empirical observation: with nondeterminism sources
//! active, fresh-process (inter-invocation) variation usually dominates
//! within-process (intra-invocation) variation — which is why a methodology
//! that runs one process many times understates the true uncertainty.

use rigor_stats::descriptive::{cov, mean, variance};
use serde::{Deserialize, Serialize};

use crate::measurement::BenchmarkMeasurement;

/// Variance decomposition of a benchmark measurement over its steady window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VarianceDecomposition {
    /// Mean of per-invocation coefficient of variation (within a process).
    pub intra_cov: f64,
    /// Coefficient of variation of the per-invocation means (across
    /// processes).
    pub inter_cov: f64,
    /// Within-invocation variance component (mean of per-invocation
    /// variances).
    pub within_var: f64,
    /// Between-invocation variance component (variance of per-invocation
    /// means).
    pub between_var: f64,
    /// Fraction of total variance attributable to between-invocation
    /// effects: `between / (between + within/iters)` — the intraclass
    /// correlation of the one-way random-effects model.
    pub between_fraction: f64,
}

/// Decomposes variance using iterations `steady_start..` of every invocation.
///
/// Returns `None` when fewer than 2 invocations or fewer than 2 steady
/// iterations are available.
pub fn decompose(m: &BenchmarkMeasurement, steady_start: usize) -> Option<VarianceDecomposition> {
    if m.n_invocations() < 2 {
        return None;
    }
    let tails: Vec<&[f64]> = m
        .invocations
        .iter()
        .filter_map(|r| r.iteration_ns.get(steady_start..))
        .filter(|t| t.len() >= 2)
        .collect();
    if tails.len() < 2 {
        return None;
    }
    let intra_covs: Vec<f64> = tails
        .iter()
        .map(|t| cov(t))
        .filter(|c| c.is_finite())
        .collect();
    let intra_cov = mean(&intra_covs);
    let means: Vec<f64> = tails.iter().map(|t| mean(t)).collect();
    let inter_cov = cov(&means);
    let within_var = mean(&tails.iter().map(|t| variance(t)).collect::<Vec<_>>());
    let between_var = variance(&means);
    let iters = tails[0].len() as f64;
    let denom = between_var + within_var / iters;
    let between_fraction = if denom > 0.0 {
        between_var / denom
    } else {
        f64::NAN
    };
    Some(VarianceDecomposition {
        intra_cov,
        inter_cov,
        within_var,
        between_var,
        between_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::InvocationRecord;

    fn measurement(series: Vec<Vec<f64>>) -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: "x".into(),
            engine: "interp".into(),
            invocations: series
                .into_iter()
                .enumerate()
                .map(|(i, iteration_ns)| InvocationRecord {
                    invocation: i as u32,
                    seed: i as u64,
                    startup_ns: 0.0,
                    iteration_ns,
                    gc_cycles: 0,
                    jit_compiles: 0,
                    deopts: 0,
                    checksum: String::new(),
                    iteration_counters: None,
                    attempts: 1,
                })
                .collect(),
            censored: Vec::new(),
            quarantined: false,
        }
    }

    #[test]
    fn inter_dominated_measurement() {
        // Each invocation is internally tight but invocations sit at very
        // different levels (layout-factor style).
        let m = measurement(vec![
            vec![10.0, 10.01, 10.02, 10.0, 10.01],
            vec![11.0, 11.01, 11.0, 11.02, 11.01],
            vec![9.5, 9.51, 9.5, 9.52, 9.51],
            vec![10.5, 10.5, 10.51, 10.52, 10.5],
        ]);
        let d = decompose(&m, 0).unwrap();
        assert!(d.inter_cov > d.intra_cov * 10.0, "{d:?}");
        assert!(d.between_fraction > 0.9, "{d:?}");
    }

    #[test]
    fn intra_dominated_measurement() {
        // Same level everywhere, noisy within each process.
        let noisy = |seed: u64| -> Vec<f64> {
            let mut s = seed;
            (0..50)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    10.0 + ((s >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 4.0
                })
                .collect()
        };
        let m = measurement(vec![
            noisy(1),
            noisy(2),
            noisy(3),
            noisy(4),
            noisy(5),
            noisy(6),
        ]);
        let d = decompose(&m, 0).unwrap();
        assert!(d.intra_cov > d.inter_cov, "{d:?}");
        assert!(d.between_fraction < 0.8, "{d:?}");
    }

    #[test]
    fn steady_start_is_respected() {
        // Warmup inflates intra-CoV only when included.
        let m = measurement(vec![
            vec![100.0, 10.0, 10.0, 10.0, 10.0, 10.0],
            vec![100.0, 10.1, 10.1, 10.1, 10.1, 10.1],
            vec![100.0, 9.9, 9.9, 9.9, 9.9, 9.9],
        ]);
        let with_warmup = decompose(&m, 0).unwrap();
        let steady = decompose(&m, 1).unwrap();
        assert!(with_warmup.intra_cov > steady.intra_cov * 10.0);
    }

    #[test]
    fn degenerate_inputs() {
        let m = measurement(vec![vec![1.0, 2.0]]);
        assert!(decompose(&m, 0).is_none());
        let m = measurement(vec![vec![1.0], vec![2.0]]);
        assert!(decompose(&m, 0).is_none());
    }
}
