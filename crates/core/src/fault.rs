//! Deterministic fault injection: a seeded plan that decides, per invocation
//! attempt, whether to crash the worker, trip the deadline, or stall the VM.
//!
//! The harness's fault-tolerance machinery (retry, quarantine, checkpointing)
//! is itself code that can rot; [`FaultPlan`] exists so that machinery is
//! exercised on demand — in tests and in the CLI's `self-test` subcommand —
//! without depending on a workload that happens to misbehave. Decisions are
//! a pure function of `(plan seed, benchmark, invocation, attempt)`, so a
//! faulty experiment is as reproducible as a clean one: the same plan
//! injects the same faults at the same places every run, which is exactly
//! what makes checkpoint/resume testable under fire.

use minipy::invocation_seed;

/// What, if anything, to inject into one invocation attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// Run the attempt normally.
    None,
    /// Panic the worker thread (exercises the panic guard + retry path).
    Panic,
    /// Shrink the VM's virtual-time deadline to (effectively) zero so the
    /// real deadline machinery trips (exercises `Timeout` classification).
    Timeout,
    /// Stall the VM clock by `stall_ns` before the timed iterations
    /// (exercises outlier handling, and the deadline if one is configured).
    Slow {
        /// Virtual nanoseconds to stall.
        stall_ns: f64,
    },
}

/// A seeded, deterministic fault-injection plan.
///
/// Rates are probabilities in `[0, 1]` and are evaluated in order
/// panic → timeout → slow against a single uniform draw, so their sum
/// should not exceed 1 (the remainder is the no-fault probability).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the plan's decision stream (independent of workload seeds).
    pub seed: u64,
    /// Probability an attempt panics.
    pub panic_rate: f64,
    /// Probability an attempt gets a zero deadline.
    pub timeout_rate: f64,
    /// Probability an attempt is stalled.
    pub slow_rate: f64,
    /// Stall size for `Slow` faults, virtual ns.
    pub slow_stall_ns: f64,
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_rate: 0.0,
            timeout_rate: 0.0,
            slow_rate: 0.0,
            slow_stall_ns: 5.0e6,
        }
    }

    /// Sets the panic rate (builder style).
    pub fn with_panic_rate(mut self, rate: f64) -> FaultPlan {
        self.panic_rate = rate;
        self
    }

    /// Sets the timeout rate (builder style).
    pub fn with_timeout_rate(mut self, rate: f64) -> FaultPlan {
        self.timeout_rate = rate;
        self
    }

    /// Sets the slow-iteration rate (builder style).
    pub fn with_slow_rate(mut self, rate: f64) -> FaultPlan {
        self.slow_rate = rate;
        self
    }

    /// Sets the stall size for `Slow` faults (builder style).
    pub fn with_slow_stall_ns(mut self, ns: f64) -> FaultPlan {
        self.slow_stall_ns = ns;
        self
    }

    /// The plan's decision for one invocation attempt. Pure and
    /// deterministic: same arguments, same fault, every time.
    pub fn decide(&self, benchmark: &str, invocation: u32, attempt: u32) -> InjectedFault {
        // Domain-separate the plan stream from workload seed derivation so a
        // fault plan never correlates with the timings it perturbs.
        let h = invocation_seed(self.seed ^ 0xFA01_7E57_FA01_7E57, benchmark, invocation);
        let mut z = h ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.panic_rate {
            InjectedFault::Panic
        } else if u < self.panic_rate + self.timeout_rate {
            InjectedFault::Timeout
        } else if u < self.panic_rate + self.timeout_rate + self.slow_rate {
            InjectedFault::Slow {
                stall_ns: self.slow_stall_ns,
            }
        } else {
            InjectedFault::None
        }
    }
}

/// What, if anything, to inject into one network exchange with the shared
/// archive service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Serve the exchange normally.
    None,
    /// Refuse the connection outright (close before reading the request).
    Refuse,
    /// Read the request, then drop the connection without responding —
    /// the client cannot know whether the server applied the write, which
    /// is exactly why uploads must be idempotent.
    Drop,
    /// Accept the request but stall before responding, long enough to trip
    /// the client's per-request read timeout.
    Stall,
    /// Respond with HTTP 500 (a healthy transport, a degraded server).
    ServerError,
    /// Respond with bytes that are not HTTP at all (a confused proxy, a
    /// port collision) — exercises the client's response validation.
    Garbage,
}

/// A seeded, deterministic *network*-fault plan, the transport-layer twin
/// of [`FaultPlan`].
///
/// Decisions are a pure function of `(plan seed, exchange index)`, where
/// the exchange index counts connections accepted by the fault-injecting
/// listener — so a flaky-server scenario replays the same faults at the
/// same exchanges every run. Rates are evaluated in order
/// refuse → drop → stall → 5xx → garbage against a single uniform draw.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    /// Seed of the plan's decision stream.
    pub seed: u64,
    /// Probability a connection is refused.
    pub refuse_rate: f64,
    /// Probability a connection is dropped after the request is read.
    pub drop_rate: f64,
    /// Probability a response is stalled past the client timeout.
    pub stall_rate: f64,
    /// Probability of an HTTP 500 response.
    pub error_rate: f64,
    /// Probability of a non-HTTP garbage response.
    pub garbage_rate: f64,
}

impl NetFaultPlan {
    /// A plan with the given seed and all rates zero.
    pub fn new(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            refuse_rate: 0.0,
            drop_rate: 0.0,
            stall_rate: 0.0,
            error_rate: 0.0,
            garbage_rate: 0.0,
        }
    }

    /// Sets the connection-refused rate (builder style).
    pub fn with_refuse_rate(mut self, rate: f64) -> NetFaultPlan {
        self.refuse_rate = rate;
        self
    }

    /// Sets the dropped-connection rate (builder style).
    pub fn with_drop_rate(mut self, rate: f64) -> NetFaultPlan {
        self.drop_rate = rate;
        self
    }

    /// Sets the stalled-response rate (builder style).
    pub fn with_stall_rate(mut self, rate: f64) -> NetFaultPlan {
        self.stall_rate = rate;
        self
    }

    /// Sets the HTTP-500 rate (builder style).
    pub fn with_error_rate(mut self, rate: f64) -> NetFaultPlan {
        self.error_rate = rate;
        self
    }

    /// Sets the garbage-response rate (builder style).
    pub fn with_garbage_rate(mut self, rate: f64) -> NetFaultPlan {
        self.garbage_rate = rate;
        self
    }

    /// The plan's decision for one exchange. Pure and deterministic: same
    /// seed, same exchange index, same fault, every time.
    pub fn decide(&self, exchange: u64) -> NetFault {
        // A distinct domain-separation constant keeps the network stream
        // independent of both workload seeds and the invocation-fault plan.
        let mut z =
            self.seed ^ 0x5E4E_7FA0_17E5_75E4 ^ exchange.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = self.refuse_rate;
        if u < edge {
            return NetFault::Refuse;
        }
        edge += self.drop_rate;
        if u < edge {
            return NetFault::Drop;
        }
        edge += self.stall_rate;
        if u < edge {
            return NetFault::Stall;
        }
        edge += self.error_rate;
        if u < edge {
            return NetFault::ServerError;
        }
        edge += self.garbage_rate;
        if u < edge {
            return NetFault::Garbage;
        }
        NetFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(7)
            .with_panic_rate(0.2)
            .with_timeout_rate(0.2)
            .with_slow_rate(0.2);
        for inv in 0..10 {
            for attempt in 0..3 {
                assert_eq!(
                    plan.decide("sieve", inv, attempt),
                    plan.decide("sieve", inv, attempt)
                );
            }
        }
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::new(1);
        for inv in 0..50 {
            assert_eq!(plan.decide("x", inv, 0), InjectedFault::None);
        }
    }

    #[test]
    fn full_panic_rate_always_panics() {
        let plan = FaultPlan::new(1).with_panic_rate(1.0);
        for inv in 0..50 {
            assert_eq!(plan.decide("x", inv, 0), InjectedFault::Panic);
        }
    }

    #[test]
    fn rates_roughly_match_frequencies() {
        let plan = FaultPlan::new(3).with_timeout_rate(0.5);
        let timeouts = (0..1000)
            .filter(|&i| plan.decide("bench", i, 0) == InjectedFault::Timeout)
            .count();
        assert!(
            (350..=650).contains(&timeouts),
            "expected ~500 timeouts, got {timeouts}"
        );
    }

    #[test]
    fn attempts_get_independent_decisions() {
        // A fault on attempt 0 must not force the same fault on attempt 1,
        // otherwise retries could never succeed under injection.
        let plan = FaultPlan::new(9).with_panic_rate(0.5);
        let differs = (0..100).any(|i| plan.decide("b", i, 0) != plan.decide("b", i, 1));
        assert!(differs);
    }

    #[test]
    fn slow_carries_the_configured_stall() {
        let plan = FaultPlan::new(4)
            .with_slow_rate(1.0)
            .with_slow_stall_ns(123.0);
        assert_eq!(
            plan.decide("x", 0, 0),
            InjectedFault::Slow { stall_ns: 123.0 }
        );
    }

    #[test]
    fn net_decisions_are_deterministic_and_zero_rates_pass() {
        let plan = NetFaultPlan::new(11)
            .with_refuse_rate(0.2)
            .with_drop_rate(0.2)
            .with_garbage_rate(0.2);
        for x in 0..50 {
            assert_eq!(plan.decide(x), plan.decide(x));
        }
        let clean = NetFaultPlan::new(11);
        assert!((0..50).all(|x| clean.decide(x) == NetFault::None));
    }

    #[test]
    fn net_rates_roughly_match_frequencies() {
        let plan = NetFaultPlan::new(5).with_drop_rate(0.5);
        let drops = (0..1000)
            .filter(|&x| plan.decide(x) == NetFault::Drop)
            .count();
        assert!(
            (350..=650).contains(&drops),
            "expected ~500 drops, got {drops}"
        );
    }

    #[test]
    fn net_rates_are_evaluated_in_order() {
        // With rates summing to 1, every exchange gets *some* fault, and a
        // full refuse rate shadows the rest.
        let all = NetFaultPlan::new(2)
            .with_refuse_rate(0.25)
            .with_drop_rate(0.25)
            .with_stall_rate(0.25)
            .with_error_rate(0.25);
        assert!((0..100).all(|x| all.decide(x) != NetFault::None));
        let refuse = NetFaultPlan::new(2)
            .with_refuse_rate(1.0)
            .with_drop_rate(1.0);
        assert!((0..100).all(|x| refuse.decide(x) == NetFault::Refuse));
    }

    #[test]
    fn net_streams_differ_across_seeds() {
        let a = NetFaultPlan::new(1).with_drop_rate(0.5);
        let b = NetFaultPlan::new(2).with_drop_rate(0.5);
        assert!((0..100).any(|x| a.decide(x) != b.decide(x)));
    }
}
