//! Structured experiment telemetry: typed events emitted while an
//! experiment runs, and observers that consume them.
//!
//! The runner emits one [`ExperimentEvent`] stream per experiment:
//!
//! ```text
//! ExperimentStarted
//!   InvocationStarted   (× invocations)
//!     IterationFinished (× iterations, per successful iteration)
//!   InvocationFinished  (× invocations)
//! ExperimentFinished
//! ```
//!
//! For a fully successful experiment of `N` invocations × `M` iterations the
//! stream holds exactly `2 + 2·N + N·M` events. Fault handling adds events:
//! every retry attempt emits its own `InvocationStarted`/`InvocationFinished`
//! pair plus an `InvocationRetried` marker, budget exhaustion emits
//! `InvocationTimedOut`, checkpointing emits `CheckpointWritten` per
//! journaled invocation, and a quarantined benchmark emits one
//! `BenchmarkQuarantined` immediately before `ExperimentFinished`.
//! Invocations run in parallel,
//! so events of different invocations interleave; within one invocation the
//! order `InvocationStarted → IterationFinished… → InvocationFinished` always
//! holds, and all events of the experiment sit between `ExperimentStarted`
//! and `ExperimentFinished`.
//!
//! Campaign orchestration (see `rigor::campaign`) wraps many such streams:
//! the run-level events `CampaignStarted`, `CellCompleted`, `CellStolen` and
//! `CampaignResumed` bracket the per-cell experiment streams, all flowing to
//! the same observers.
//!
//! Observers receive events on a dedicated drain thread — never on the
//! worker threads timing iterations — so a slow observer cannot serialize
//! parallel invocations. Implementations must therefore be `Send + Sync`.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use serde::json::{DeError, JsonValue};
use serde::{Deserialize, Serialize};

use crate::measurement::IterationCounters;
use crate::report::sparkline;

/// One typed event in an experiment's telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentEvent {
    /// The experiment began: the runner is about to launch invocations.
    ExperimentStarted {
        /// Benchmark name.
        benchmark: String,
        /// Engine name (`"interp"` / `"jit"`).
        engine: String,
        /// Planned invocation count.
        invocations: u32,
        /// Planned iterations per invocation.
        iterations: u32,
    },
    /// A fresh VM invocation began.
    InvocationStarted {
        /// Benchmark name.
        benchmark: String,
        /// Invocation index.
        invocation: u32,
        /// The derived invocation seed.
        seed: u64,
    },
    /// One timed iteration completed.
    IterationFinished {
        /// Benchmark name.
        benchmark: String,
        /// Invocation index.
        invocation: u32,
        /// Iteration index within the invocation.
        iteration: u32,
        /// The iteration's virtual time, ns.
        virtual_ns: f64,
        /// VM event deltas of this iteration.
        counters: IterationCounters,
    },
    /// A VM invocation finished (successfully or not).
    InvocationFinished {
        /// Benchmark name.
        benchmark: String,
        /// Invocation index.
        invocation: u32,
        /// Startup (compile + setup) virtual time, ns; 0 when startup failed.
        startup_ns: f64,
        /// Iterations that completed.
        iterations: u32,
        /// The error message when the invocation failed; `None` on success.
        error: Option<String>,
    },
    /// A failed invocation attempt is about to be retried with a fresh seed.
    InvocationRetried {
        /// Benchmark name.
        benchmark: String,
        /// Invocation index.
        invocation: u32,
        /// 1-based index of the retry attempt about to start.
        attempt: u32,
        /// The error that triggered the retry.
        error: String,
    },
    /// An invocation attempt exceeded its virtual-time deadline or its step
    /// (fuel) budget and was stopped by the VM.
    InvocationTimedOut {
        /// Benchmark name.
        benchmark: String,
        /// Invocation index.
        invocation: u32,
        /// 0-based attempt that timed out.
        attempt: u32,
        /// Which budget tripped: `"timeout"` or `"fuel_exhausted"`.
        kind: String,
    },
    /// The benchmark's censored-invocation rate exceeded the quarantine
    /// threshold; its statistics are untrustworthy.
    BenchmarkQuarantined {
        /// Benchmark name.
        benchmark: String,
        /// Invocations censored after exhausting retries.
        censored: u32,
        /// Total invocations requested.
        invocations: u32,
    },
    /// Completed invocation records were flushed to the checkpoint journal.
    CheckpointWritten {
        /// Benchmark name.
        benchmark: String,
        /// The invocation whose completion triggered the checkpoint.
        invocation: u32,
        /// Records in the journal after this write.
        records: u32,
    },
    /// The experiment completed; emitted exactly once, after every
    /// invocation finished.
    ExperimentFinished {
        /// Benchmark name.
        benchmark: String,
        /// Engine name.
        engine: String,
        /// How many invocations failed.
        failed_invocations: u32,
    },
    /// A completed run — every benchmark it measured — was persisted to the
    /// results archive. A *run-level* event: it belongs to no single
    /// benchmark.
    RunArchived {
        /// Archive directory.
        store: String,
        /// Content-addressed run id.
        run_id: String,
        /// The run's sequence number within the archive.
        seq: u64,
        /// How many benchmarks the archived run holds.
        benchmarks: u32,
    },
    /// The regression gate compared the current run against an archived
    /// baseline. A *run-level* event: it belongs to no single benchmark.
    RegressionChecked {
        /// Archive directory.
        store: String,
        /// The baseline reference that was resolved (`last`, `last-3`, a
        /// run-id prefix).
        baseline: String,
        /// Benchmarks checked.
        checked: u32,
        /// Benchmarks that regressed.
        regressed: u32,
        /// Whether the gate passed.
        passed: bool,
    },
    /// Trend analysis scanned the archived histories for level shifts. A
    /// *run-level* event: it spans the whole suite.
    TrendAnalyzed {
        /// Archive directory.
        store: String,
        /// Benchmarks whose histories were analyzed.
        benchmarks: u32,
        /// Archived runs in the store.
        runs: u32,
        /// Detected changepoints across the suite (significant or not).
        changepoints: u32,
        /// Benchmarks with a significant newly-detected shift at HEAD.
        alerts: u32,
    },
    /// Trend analysis found a statistically significant level shift in one
    /// benchmark's archived history.
    ChangepointDetected {
        /// Benchmark name.
        benchmark: String,
        /// Content-addressed id of the run that starts the new level.
        run_id: String,
        /// Archive sequence number of that run.
        seq: u64,
        /// Shift direction (`"slower"` / `"faster"`).
        direction: String,
        /// Magnitude point estimate, as the time ratio after/before.
        magnitude: f64,
        /// The shift's p-value after suite-wide correction.
        p_adjusted: f64,
        /// Whether the shift is newly detected at HEAD (an alert).
        at_head: bool,
    },
    /// A campaign began: the orchestrator expanded the cell grid and is
    /// about to schedule cells onto workers. A *run-level* event.
    CampaignStarted {
        /// The campaign's identity fingerprint.
        campaign: String,
        /// Cells in the grid.
        cells: u32,
        /// Worker threads executing cells.
        workers: u32,
        /// Arrival-process description (`"immediate"`, `"uniform:…"`, …).
        arrival: String,
    },
    /// A torn campaign was resumed: cells already present in the archive
    /// are skipped and only the remainder is scheduled. A *run-level* event.
    CampaignResumed {
        /// The campaign's identity fingerprint.
        campaign: String,
        /// Cells already archived by the interrupted run.
        completed: u32,
        /// Cells in the grid.
        cells: u32,
    },
    /// One campaign cell finished measuring and was streamed into the
    /// archive. A *run-level* event (the cell id names the benchmark).
    CellCompleted {
        /// Canonical cell id (`benchmark/engine/variant/seed`).
        cell: String,
        /// The cell's index in grid-expansion order.
        index: u32,
        /// The worker that executed the cell.
        worker: u32,
        /// Content-addressed id of the archived run, when archived.
        run_id: String,
        /// Cells completed so far, including this one.
        completed: u32,
        /// Cells in the grid.
        cells: u32,
    },
    /// An idle worker stole a queued cell from another worker's deque.
    /// A *run-level* event.
    CellStolen {
        /// Canonical cell id of the stolen cell.
        cell: String,
        /// The cell's index in grid-expansion order.
        index: u32,
        /// The worker the cell was queued on.
        from_worker: u32,
        /// The worker that stole and will execute it.
        to_worker: u32,
    },
    /// An upload to the shared archive service failed and is being retried
    /// with backoff. A *run-level* event.
    UploadRetried {
        /// Archive label of the run being uploaded.
        label: String,
        /// 1-based retry attempt about to run.
        attempt: u32,
        /// Backoff applied before the retry, milliseconds.
        backoff_ms: u64,
        /// The transport error that triggered the retry.
        error: String,
    },
    /// The remote-store circuit breaker tripped open after consecutive
    /// transport failures; uploads now go straight to the local spool.
    /// A *run-level* event.
    CircuitOpened {
        /// Consecutive failures that tripped the breaker.
        failures: u32,
        /// The server the breaker is protecting the client from.
        url: String,
    },
    /// An upload fell back to the local write-ahead spool because the
    /// server was unreachable or the circuit was open. A *run-level* event.
    ServerDegraded {
        /// Archive label of the spooled run.
        label: String,
        /// Runs sitting in the spool after this one, awaiting replay.
        spooled: u32,
    },
    /// Spooled runs were replayed to the recovered server, in grid order,
    /// idempotently. A *run-level* event.
    SpoolReplayed {
        /// Runs replayed (deduplicated server-side as needed).
        replayed: u32,
        /// Runs still in the spool (0 unless the replay itself failed).
        remaining: u32,
        /// The server the spool drained to.
        url: String,
    },
    /// The adaptive planner computed one round's invocation allocation over
    /// the still-unmet cells. A *run-level* event.
    PlanComputed {
        /// The campaign's identity fingerprint.
        campaign: String,
        /// Re-planning round (the pilot is round 0).
        round: u32,
        /// Cells whose CI is not yet at the precision target.
        unmet: u32,
        /// Refinement tasks granted this round.
        tasks: u32,
        /// Additional invocations granted this round.
        planned: u64,
        /// Invocations committed so far across the grid.
        spent: u64,
        /// Budget left after `spent`; absent when unbounded.
        budget_remaining: Option<u64>,
    },
    /// An adaptive campaign re-measured one cell at a larger sample size.
    /// A *run-level* event (the cell id names the benchmark).
    CellRefined {
        /// Canonical cell id (`benchmark/engine/variant/seed`).
        cell: String,
        /// The cell's index in grid-expansion order.
        index: u32,
        /// Re-planning round this refinement belongs to.
        round: u32,
        /// The cell's sample size after this refinement.
        invocations: u32,
        /// Relative CI half-width achieved; absent when no CI is
        /// computable yet.
        rel_half_width: Option<f64>,
        /// Whether the cell now meets the precision target.
        target_met: bool,
    },
    /// The adaptive campaign's global invocation budget ran out with cells
    /// still short of the precision target. A *run-level* event.
    BudgetExhausted {
        /// The campaign's identity fingerprint.
        campaign: String,
        /// Round at which the budget ran dry.
        round: u32,
        /// Invocations committed across the grid.
        spent: u64,
        /// The global budget that was exhausted.
        budget: u64,
        /// Cells archived short of the target.
        unmet: u32,
    },
}

impl ExperimentEvent {
    /// The event's wire name (the `"event"` field of its JSON form).
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentEvent::ExperimentStarted { .. } => "experiment_started",
            ExperimentEvent::InvocationStarted { .. } => "invocation_started",
            ExperimentEvent::IterationFinished { .. } => "iteration_finished",
            ExperimentEvent::InvocationFinished { .. } => "invocation_finished",
            ExperimentEvent::InvocationRetried { .. } => "invocation_retried",
            ExperimentEvent::InvocationTimedOut { .. } => "invocation_timed_out",
            ExperimentEvent::BenchmarkQuarantined { .. } => "benchmark_quarantined",
            ExperimentEvent::CheckpointWritten { .. } => "checkpoint_written",
            ExperimentEvent::ExperimentFinished { .. } => "experiment_finished",
            ExperimentEvent::RunArchived { .. } => "run_archived",
            ExperimentEvent::RegressionChecked { .. } => "regression_checked",
            ExperimentEvent::TrendAnalyzed { .. } => "trend_analyzed",
            ExperimentEvent::ChangepointDetected { .. } => "changepoint_detected",
            ExperimentEvent::CampaignStarted { .. } => "campaign_started",
            ExperimentEvent::CampaignResumed { .. } => "campaign_resumed",
            ExperimentEvent::CellCompleted { .. } => "cell_completed",
            ExperimentEvent::CellStolen { .. } => "cell_stolen",
            ExperimentEvent::UploadRetried { .. } => "upload_retried",
            ExperimentEvent::CircuitOpened { .. } => "circuit_opened",
            ExperimentEvent::ServerDegraded { .. } => "server_degraded",
            ExperimentEvent::SpoolReplayed { .. } => "spool_replayed",
            ExperimentEvent::PlanComputed { .. } => "plan_computed",
            ExperimentEvent::CellRefined { .. } => "cell_refined",
            ExperimentEvent::BudgetExhausted { .. } => "budget_exhausted",
        }
    }

    /// The benchmark this event belongs to — empty for run-level events
    /// ([`ExperimentEvent::RunArchived`], [`ExperimentEvent::RegressionChecked`]),
    /// which span the whole suite.
    pub fn benchmark(&self) -> &str {
        match self {
            ExperimentEvent::ExperimentStarted { benchmark, .. }
            | ExperimentEvent::InvocationStarted { benchmark, .. }
            | ExperimentEvent::IterationFinished { benchmark, .. }
            | ExperimentEvent::InvocationFinished { benchmark, .. }
            | ExperimentEvent::InvocationRetried { benchmark, .. }
            | ExperimentEvent::InvocationTimedOut { benchmark, .. }
            | ExperimentEvent::BenchmarkQuarantined { benchmark, .. }
            | ExperimentEvent::CheckpointWritten { benchmark, .. }
            | ExperimentEvent::ExperimentFinished { benchmark, .. }
            | ExperimentEvent::ChangepointDetected { benchmark, .. } => benchmark,
            ExperimentEvent::RunArchived { .. }
            | ExperimentEvent::RegressionChecked { .. }
            | ExperimentEvent::TrendAnalyzed { .. }
            | ExperimentEvent::CampaignStarted { .. }
            | ExperimentEvent::CampaignResumed { .. }
            | ExperimentEvent::CellCompleted { .. }
            | ExperimentEvent::CellStolen { .. }
            | ExperimentEvent::UploadRetried { .. }
            | ExperimentEvent::CircuitOpened { .. }
            | ExperimentEvent::ServerDegraded { .. }
            | ExperimentEvent::SpoolReplayed { .. }
            | ExperimentEvent::PlanComputed { .. }
            | ExperimentEvent::CellRefined { .. }
            | ExperimentEvent::BudgetExhausted { .. } => "",
        }
    }
}

// The event's JSON form is flat, tagged by an `"event"` field:
// `{"event":"iteration_finished","benchmark":"sieve",...}`. Implemented by
// hand so the wire format stays stable and independent of the enum's shape.
impl Serialize for ExperimentEvent {
    fn to_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> =
            vec![("event".into(), JsonValue::Str(self.name().into()))];
        let mut put = |name: &str, v: JsonValue| {
            if !v.is_null() {
                fields.push((name.into(), v));
            }
        };
        match self {
            ExperimentEvent::ExperimentStarted {
                benchmark,
                engine,
                invocations,
                iterations,
            } => {
                put("benchmark", benchmark.to_value());
                put("engine", engine.to_value());
                put("invocations", invocations.to_value());
                put("iterations", iterations.to_value());
            }
            ExperimentEvent::InvocationStarted {
                benchmark,
                invocation,
                seed,
            } => {
                put("benchmark", benchmark.to_value());
                put("invocation", invocation.to_value());
                put("seed", seed.to_value());
            }
            ExperimentEvent::IterationFinished {
                benchmark,
                invocation,
                iteration,
                virtual_ns,
                counters,
            } => {
                put("benchmark", benchmark.to_value());
                put("invocation", invocation.to_value());
                put("iteration", iteration.to_value());
                put("virtual_ns", virtual_ns.to_value());
                put("counters", counters.to_value());
            }
            ExperimentEvent::InvocationFinished {
                benchmark,
                invocation,
                startup_ns,
                iterations,
                error,
            } => {
                put("benchmark", benchmark.to_value());
                put("invocation", invocation.to_value());
                put("startup_ns", startup_ns.to_value());
                put("iterations", iterations.to_value());
                put("error", error.to_value());
            }
            ExperimentEvent::InvocationRetried {
                benchmark,
                invocation,
                attempt,
                error,
            } => {
                put("benchmark", benchmark.to_value());
                put("invocation", invocation.to_value());
                put("attempt", attempt.to_value());
                put("error", error.to_value());
            }
            ExperimentEvent::InvocationTimedOut {
                benchmark,
                invocation,
                attempt,
                kind,
            } => {
                put("benchmark", benchmark.to_value());
                put("invocation", invocation.to_value());
                put("attempt", attempt.to_value());
                put("kind", kind.to_value());
            }
            ExperimentEvent::BenchmarkQuarantined {
                benchmark,
                censored,
                invocations,
            } => {
                put("benchmark", benchmark.to_value());
                put("censored", censored.to_value());
                put("invocations", invocations.to_value());
            }
            ExperimentEvent::CheckpointWritten {
                benchmark,
                invocation,
                records,
            } => {
                put("benchmark", benchmark.to_value());
                put("invocation", invocation.to_value());
                put("records", records.to_value());
            }
            ExperimentEvent::ExperimentFinished {
                benchmark,
                engine,
                failed_invocations,
            } => {
                put("benchmark", benchmark.to_value());
                put("engine", engine.to_value());
                put("failed_invocations", failed_invocations.to_value());
            }
            ExperimentEvent::RunArchived {
                store,
                run_id,
                seq,
                benchmarks,
            } => {
                put("store", store.to_value());
                put("run_id", run_id.to_value());
                put("seq", seq.to_value());
                put("benchmarks", benchmarks.to_value());
            }
            ExperimentEvent::RegressionChecked {
                store,
                baseline,
                checked,
                regressed,
                passed,
            } => {
                put("store", store.to_value());
                put("baseline", baseline.to_value());
                put("checked", checked.to_value());
                put("regressed", regressed.to_value());
                put("passed", passed.to_value());
            }
            ExperimentEvent::TrendAnalyzed {
                store,
                benchmarks,
                runs,
                changepoints,
                alerts,
            } => {
                put("store", store.to_value());
                put("benchmarks", benchmarks.to_value());
                put("runs", runs.to_value());
                put("changepoints", changepoints.to_value());
                put("alerts", alerts.to_value());
            }
            ExperimentEvent::ChangepointDetected {
                benchmark,
                run_id,
                seq,
                direction,
                magnitude,
                p_adjusted,
                at_head,
            } => {
                put("benchmark", benchmark.to_value());
                put("run_id", run_id.to_value());
                put("seq", seq.to_value());
                put("direction", direction.to_value());
                put("magnitude", magnitude.to_value());
                put("p_adjusted", p_adjusted.to_value());
                put("at_head", at_head.to_value());
            }
            ExperimentEvent::CampaignStarted {
                campaign,
                cells,
                workers,
                arrival,
            } => {
                put("campaign", campaign.to_value());
                put("cells", cells.to_value());
                put("workers", workers.to_value());
                put("arrival", arrival.to_value());
            }
            ExperimentEvent::CampaignResumed {
                campaign,
                completed,
                cells,
            } => {
                put("campaign", campaign.to_value());
                put("completed", completed.to_value());
                put("cells", cells.to_value());
            }
            ExperimentEvent::CellCompleted {
                cell,
                index,
                worker,
                run_id,
                completed,
                cells,
            } => {
                put("cell", cell.to_value());
                put("index", index.to_value());
                put("worker", worker.to_value());
                put("run_id", run_id.to_value());
                put("completed", completed.to_value());
                put("cells", cells.to_value());
            }
            ExperimentEvent::CellStolen {
                cell,
                index,
                from_worker,
                to_worker,
            } => {
                put("cell", cell.to_value());
                put("index", index.to_value());
                put("from_worker", from_worker.to_value());
                put("to_worker", to_worker.to_value());
            }
            ExperimentEvent::UploadRetried {
                label,
                attempt,
                backoff_ms,
                error,
            } => {
                put("label", label.to_value());
                put("attempt", attempt.to_value());
                put("backoff_ms", backoff_ms.to_value());
                put("error", error.to_value());
            }
            ExperimentEvent::CircuitOpened { failures, url } => {
                put("failures", failures.to_value());
                put("url", url.to_value());
            }
            ExperimentEvent::ServerDegraded { label, spooled } => {
                put("label", label.to_value());
                put("spooled", spooled.to_value());
            }
            ExperimentEvent::SpoolReplayed {
                replayed,
                remaining,
                url,
            } => {
                put("replayed", replayed.to_value());
                put("remaining", remaining.to_value());
                put("url", url.to_value());
            }
            ExperimentEvent::PlanComputed {
                campaign,
                round,
                unmet,
                tasks,
                planned,
                spent,
                budget_remaining,
            } => {
                put("campaign", campaign.to_value());
                put("round", round.to_value());
                put("unmet", unmet.to_value());
                put("tasks", tasks.to_value());
                put("planned", planned.to_value());
                put("spent", spent.to_value());
                put("budget_remaining", budget_remaining.to_value());
            }
            ExperimentEvent::CellRefined {
                cell,
                index,
                round,
                invocations,
                rel_half_width,
                target_met,
            } => {
                put("cell", cell.to_value());
                put("index", index.to_value());
                put("round", round.to_value());
                put("invocations", invocations.to_value());
                put("rel_half_width", rel_half_width.to_value());
                put("target_met", target_met.to_value());
            }
            ExperimentEvent::BudgetExhausted {
                campaign,
                round,
                spent,
                budget,
                unmet,
            } => {
                put("campaign", campaign.to_value());
                put("round", round.to_value());
                put("spent", spent.to_value());
                put("budget", budget.to_value());
                put("unmet", unmet.to_value());
            }
        }
        JsonValue::Object(fields)
    }
}

impl Deserialize for ExperimentEvent {
    fn from_value(v: &JsonValue) -> Result<ExperimentEvent, DeError> {
        use serde::json::get_field;
        let tag: String = get_field(v, "event")?;
        match tag.as_str() {
            "experiment_started" => Ok(ExperimentEvent::ExperimentStarted {
                benchmark: get_field(v, "benchmark")?,
                engine: get_field(v, "engine")?,
                invocations: get_field(v, "invocations")?,
                iterations: get_field(v, "iterations")?,
            }),
            "invocation_started" => Ok(ExperimentEvent::InvocationStarted {
                benchmark: get_field(v, "benchmark")?,
                invocation: get_field(v, "invocation")?,
                seed: get_field(v, "seed")?,
            }),
            "iteration_finished" => Ok(ExperimentEvent::IterationFinished {
                benchmark: get_field(v, "benchmark")?,
                invocation: get_field(v, "invocation")?,
                iteration: get_field(v, "iteration")?,
                virtual_ns: get_field(v, "virtual_ns")?,
                counters: get_field(v, "counters")?,
            }),
            "invocation_finished" => Ok(ExperimentEvent::InvocationFinished {
                benchmark: get_field(v, "benchmark")?,
                invocation: get_field(v, "invocation")?,
                startup_ns: get_field(v, "startup_ns")?,
                iterations: get_field(v, "iterations")?,
                error: get_field(v, "error")?,
            }),
            "invocation_retried" => Ok(ExperimentEvent::InvocationRetried {
                benchmark: get_field(v, "benchmark")?,
                invocation: get_field(v, "invocation")?,
                attempt: get_field(v, "attempt")?,
                error: get_field(v, "error")?,
            }),
            "invocation_timed_out" => Ok(ExperimentEvent::InvocationTimedOut {
                benchmark: get_field(v, "benchmark")?,
                invocation: get_field(v, "invocation")?,
                attempt: get_field(v, "attempt")?,
                kind: get_field(v, "kind")?,
            }),
            "benchmark_quarantined" => Ok(ExperimentEvent::BenchmarkQuarantined {
                benchmark: get_field(v, "benchmark")?,
                censored: get_field(v, "censored")?,
                invocations: get_field(v, "invocations")?,
            }),
            "checkpoint_written" => Ok(ExperimentEvent::CheckpointWritten {
                benchmark: get_field(v, "benchmark")?,
                invocation: get_field(v, "invocation")?,
                records: get_field(v, "records")?,
            }),
            "experiment_finished" => Ok(ExperimentEvent::ExperimentFinished {
                benchmark: get_field(v, "benchmark")?,
                engine: get_field(v, "engine")?,
                failed_invocations: get_field(v, "failed_invocations")?,
            }),
            "run_archived" => Ok(ExperimentEvent::RunArchived {
                store: get_field(v, "store")?,
                run_id: get_field(v, "run_id")?,
                seq: get_field(v, "seq")?,
                benchmarks: get_field(v, "benchmarks")?,
            }),
            "regression_checked" => Ok(ExperimentEvent::RegressionChecked {
                store: get_field(v, "store")?,
                baseline: get_field(v, "baseline")?,
                checked: get_field(v, "checked")?,
                regressed: get_field(v, "regressed")?,
                passed: get_field(v, "passed")?,
            }),
            "trend_analyzed" => Ok(ExperimentEvent::TrendAnalyzed {
                store: get_field(v, "store")?,
                benchmarks: get_field(v, "benchmarks")?,
                runs: get_field(v, "runs")?,
                changepoints: get_field(v, "changepoints")?,
                alerts: get_field(v, "alerts")?,
            }),
            "changepoint_detected" => Ok(ExperimentEvent::ChangepointDetected {
                benchmark: get_field(v, "benchmark")?,
                run_id: get_field(v, "run_id")?,
                seq: get_field(v, "seq")?,
                direction: get_field(v, "direction")?,
                magnitude: get_field(v, "magnitude")?,
                p_adjusted: get_field(v, "p_adjusted")?,
                at_head: get_field(v, "at_head")?,
            }),
            "campaign_started" => Ok(ExperimentEvent::CampaignStarted {
                campaign: get_field(v, "campaign")?,
                cells: get_field(v, "cells")?,
                workers: get_field(v, "workers")?,
                arrival: get_field(v, "arrival")?,
            }),
            "campaign_resumed" => Ok(ExperimentEvent::CampaignResumed {
                campaign: get_field(v, "campaign")?,
                completed: get_field(v, "completed")?,
                cells: get_field(v, "cells")?,
            }),
            "cell_completed" => Ok(ExperimentEvent::CellCompleted {
                cell: get_field(v, "cell")?,
                index: get_field(v, "index")?,
                worker: get_field(v, "worker")?,
                run_id: get_field(v, "run_id")?,
                completed: get_field(v, "completed")?,
                cells: get_field(v, "cells")?,
            }),
            "cell_stolen" => Ok(ExperimentEvent::CellStolen {
                cell: get_field(v, "cell")?,
                index: get_field(v, "index")?,
                from_worker: get_field(v, "from_worker")?,
                to_worker: get_field(v, "to_worker")?,
            }),
            "upload_retried" => Ok(ExperimentEvent::UploadRetried {
                label: get_field(v, "label")?,
                attempt: get_field(v, "attempt")?,
                backoff_ms: get_field(v, "backoff_ms")?,
                error: get_field(v, "error")?,
            }),
            "circuit_opened" => Ok(ExperimentEvent::CircuitOpened {
                failures: get_field(v, "failures")?,
                url: get_field(v, "url")?,
            }),
            "server_degraded" => Ok(ExperimentEvent::ServerDegraded {
                label: get_field(v, "label")?,
                spooled: get_field(v, "spooled")?,
            }),
            "spool_replayed" => Ok(ExperimentEvent::SpoolReplayed {
                replayed: get_field(v, "replayed")?,
                remaining: get_field(v, "remaining")?,
                url: get_field(v, "url")?,
            }),
            "plan_computed" => Ok(ExperimentEvent::PlanComputed {
                campaign: get_field(v, "campaign")?,
                round: get_field(v, "round")?,
                unmet: get_field(v, "unmet")?,
                tasks: get_field(v, "tasks")?,
                planned: get_field(v, "planned")?,
                spent: get_field(v, "spent")?,
                budget_remaining: get_field(v, "budget_remaining")?,
            }),
            "cell_refined" => Ok(ExperimentEvent::CellRefined {
                cell: get_field(v, "cell")?,
                index: get_field(v, "index")?,
                round: get_field(v, "round")?,
                invocations: get_field(v, "invocations")?,
                rel_half_width: get_field(v, "rel_half_width")?,
                target_met: get_field(v, "target_met")?,
            }),
            "budget_exhausted" => Ok(ExperimentEvent::BudgetExhausted {
                campaign: get_field(v, "campaign")?,
                round: get_field(v, "round")?,
                spent: get_field(v, "spent")?,
                budget: get_field(v, "budget")?,
                unmet: get_field(v, "unmet")?,
            }),
            other => Err(DeError::new(format!("unknown event kind `{other}`"))),
        }
    }
}

/// Consumes experiment telemetry.
///
/// Contract: `on_event` is called from a single drain thread per experiment,
/// in stream order (see the module docs for the ordering guarantees). It
/// must not panic; a panicking observer poisons that experiment's telemetry
/// but never the measurement itself.
pub trait ExperimentObserver: Send + Sync {
    /// Handles one event.
    fn on_event(&self, event: &ExperimentEvent);
}

/// Ignores every event. Useful as an explicit "no telemetry" default and in
/// tests that need an observer wired but silent.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ExperimentObserver for NullObserver {
    fn on_event(&self, _event: &ExperimentEvent) {}
}

/// Collects every event into memory, in arrival order. Thread-safe; the
/// backbone of telemetry tests.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    events: Mutex<Vec<ExperimentEvent>>,
}

impl CollectingObserver {
    /// An empty collector.
    pub fn new() -> CollectingObserver {
        CollectingObserver::default()
    }

    /// A snapshot of all events received so far.
    pub fn events(&self) -> Vec<ExperimentEvent> {
        self.events.lock().expect("collector poisoned").clone()
    }

    /// How many events have been received.
    pub fn len(&self) -> usize {
        self.events.lock().expect("collector poisoned").len()
    }

    /// True when no event has been received.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ExperimentObserver for CollectingObserver {
    fn on_event(&self, event: &ExperimentEvent) {
        self.events
            .lock()
            .expect("collector poisoned")
            .push(event.clone());
    }
}

/// Per-experiment state of the progress display.
#[derive(Debug)]
struct ProgressState {
    started: Instant,
    benchmark: String,
    engine: String,
    total: u32,
    done: u32,
    /// Iteration times of in-flight invocations, keyed by invocation index.
    series: Vec<(u32, Vec<f64>)>,
}

/// Streams live progress to stderr: one line per finished invocation with a
/// completion count, a wall-clock ETA and a sparkline of that invocation's
/// iteration times (the warmup curve at a glance).
#[derive(Debug, Default)]
pub struct ProgressObserver {
    state: Mutex<Option<ProgressState>>,
}

impl ProgressObserver {
    /// A progress observer writing to stderr.
    pub fn new() -> ProgressObserver {
        ProgressObserver::default()
    }

    fn line(&self, text: String) {
        eprintln!("{text}");
    }
}

impl ExperimentObserver for ProgressObserver {
    fn on_event(&self, event: &ExperimentEvent) {
        let mut guard = self.state.lock().expect("progress state poisoned");
        match event {
            ExperimentEvent::ExperimentStarted {
                benchmark,
                engine,
                invocations,
                iterations,
            } => {
                *guard = Some(ProgressState {
                    started: Instant::now(),
                    benchmark: benchmark.clone(),
                    engine: engine.clone(),
                    total: *invocations,
                    done: 0,
                    series: Vec::new(),
                });
                drop(guard);
                self.line(format!(
                    "[{benchmark}/{engine}] measuring: {invocations} invocations × {iterations} iterations"
                ));
            }
            ExperimentEvent::IterationFinished {
                invocation,
                virtual_ns,
                ..
            } => {
                if let Some(state) = guard.as_mut() {
                    match state.series.iter_mut().find(|(i, _)| i == invocation) {
                        Some((_, s)) => s.push(*virtual_ns),
                        None => state.series.push((*invocation, vec![*virtual_ns])),
                    }
                }
            }
            ExperimentEvent::InvocationFinished {
                invocation, error, ..
            } => {
                let text = guard.as_mut().map(|state| {
                    state.done += 1;
                    let series = state
                        .series
                        .iter()
                        .position(|(i, _)| i == invocation)
                        .map(|idx| state.series.swap_remove(idx).1)
                        .unwrap_or_default();
                    let elapsed = state.started.elapsed().as_secs_f64();
                    let eta = if state.done > 0 && state.done < state.total {
                        let remaining =
                            elapsed / state.done as f64 * (state.total - state.done) as f64;
                        format!(", eta {remaining:.1}s")
                    } else {
                        String::new()
                    };
                    let status = match error {
                        Some(e) => format!("FAILED: {e}"),
                        None => sparkline(&series),
                    };
                    format!(
                        "[{}/{}] invocation {:>3} ({}/{}) {:.1}s{}  {}",
                        state.benchmark,
                        state.engine,
                        invocation,
                        state.done,
                        state.total,
                        elapsed,
                        eta,
                        status
                    )
                });
                drop(guard);
                if let Some(text) = text {
                    self.line(text);
                }
            }
            ExperimentEvent::ExperimentFinished {
                benchmark,
                engine,
                failed_invocations,
            } => {
                let elapsed = guard
                    .take()
                    .map(|s| s.started.elapsed().as_secs_f64())
                    .unwrap_or(0.0);
                drop(guard);
                let failures = if *failed_invocations > 0 {
                    format!(", {failed_invocations} FAILED")
                } else {
                    String::new()
                };
                self.line(format!(
                    "[{benchmark}/{engine}] done in {elapsed:.1}s{failures}"
                ));
            }
            ExperimentEvent::InvocationRetried {
                invocation,
                attempt,
                error,
                ..
            } => {
                drop(guard);
                self.line(format!(
                    "  invocation {invocation}: retry attempt {attempt} after {error}"
                ));
            }
            ExperimentEvent::BenchmarkQuarantined {
                benchmark,
                censored,
                invocations,
            } => {
                drop(guard);
                self.line(format!(
                    "[{benchmark}] QUARANTINED: {censored}/{invocations} invocations censored"
                ));
            }
            ExperimentEvent::CampaignStarted {
                cells,
                workers,
                arrival,
                ..
            } => {
                drop(guard);
                self.line(format!(
                    "[campaign] {cells} cells on {workers} workers (arrival: {arrival})"
                ));
            }
            ExperimentEvent::CampaignResumed {
                completed, cells, ..
            } => {
                drop(guard);
                self.line(format!(
                    "[campaign] resumed: {completed}/{cells} cells already archived"
                ));
            }
            ExperimentEvent::CellCompleted {
                cell,
                worker,
                completed,
                cells,
                ..
            } => {
                drop(guard);
                self.line(format!(
                    "[campaign] ({completed}/{cells}) {cell}  worker {worker}"
                ));
            }
            ExperimentEvent::UploadRetried {
                label,
                attempt,
                backoff_ms,
                ..
            } => {
                drop(guard);
                self.line(format!(
                    "[remote] {label}: upload retry {attempt} after {backoff_ms}ms backoff"
                ));
            }
            ExperimentEvent::CircuitOpened { failures, url } => {
                drop(guard);
                self.line(format!(
                    "[remote] circuit OPEN after {failures} consecutive failures ({url})"
                ));
            }
            ExperimentEvent::ServerDegraded { label, spooled } => {
                drop(guard);
                self.line(format!(
                    "[remote] {label}: server unreachable, spooled locally ({spooled} pending)"
                ));
            }
            ExperimentEvent::SpoolReplayed { replayed, url, .. } => {
                drop(guard);
                self.line(format!("[remote] spool replayed: {replayed} runs to {url}"));
            }
            ExperimentEvent::PlanComputed {
                round,
                unmet,
                tasks,
                planned,
                spent,
                budget_remaining,
                ..
            } => {
                drop(guard);
                let budget = match budget_remaining {
                    Some(b) => format!(", budget left {b}"),
                    None => String::new(),
                };
                self.line(format!(
                    "[planner] round {round}: {unmet} cells unmet, \
                     {tasks} tasks (+{planned} invocations, spent {spent}{budget})"
                ));
            }
            ExperimentEvent::BudgetExhausted {
                spent,
                budget,
                unmet,
                ..
            } => {
                drop(guard);
                self.line(format!(
                    "[planner] budget exhausted: {spent}/{budget} invocations spent, \
                     {unmet} cells short of target"
                ));
            }
            ExperimentEvent::InvocationStarted { .. }
            | ExperimentEvent::InvocationTimedOut { .. }
            | ExperimentEvent::CheckpointWritten { .. }
            | ExperimentEvent::RunArchived { .. }
            | ExperimentEvent::RegressionChecked { .. }
            | ExperimentEvent::TrendAnalyzed { .. }
            | ExperimentEvent::ChangepointDetected { .. }
            | ExperimentEvent::CellStolen { .. }
            | ExperimentEvent::CellRefined { .. } => {}
        }
    }
}

/// Streams every event as one JSON object per line (JSONL) to a writer —
/// typically a trace file consumed later by `rigor trace-summary`.
pub struct JsonlTraceObserver<W: Write + Send> {
    writer: Mutex<W>,
}

impl JsonlTraceObserver<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// When the file cannot be created.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlTraceObserver::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> JsonlTraceObserver<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlTraceObserver {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// When the flush fails.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().expect("trace writer poisoned").flush()
    }
}

impl<W: Write + Send> ExperimentObserver for JsonlTraceObserver<W> {
    fn on_event(&self, event: &ExperimentEvent) {
        if let Ok(json) = serde_json::to_string(event) {
            let mut w = self.writer.lock().expect("trace writer poisoned");
            // A trace is diagnostics: losing lines on a full disk must not
            // fail the measurement, so write errors are swallowed.
            let _ = writeln!(w, "{json}");
            let _ = w.flush();
        }
    }
}

/// A parsed JSONL trace: the events, plus a warning when the trace ended in
/// a truncated line (the writer crashed mid-write).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrace {
    /// The successfully parsed events, in file order.
    pub events: Vec<ExperimentEvent>,
    /// Set when the final non-empty line failed to parse but a valid prefix
    /// existed: the trace is usable but incomplete.
    pub warning: Option<String>,
}

/// Parses a JSONL trace back into events.
///
/// A crash mid-write leaves a truncated final line; that is tolerated — the
/// valid prefix is returned together with a warning — because a trace that
/// survived a crash is exactly the trace worth reading. A bad line anywhere
/// *else* (or a trace with no valid events at all) is still an error: that
/// is corruption, not truncation.
///
/// # Errors
///
/// When a non-final non-empty line is not a valid event, or the first
/// non-empty line is invalid.
pub fn parse_trace(jsonl: &str) -> Result<ParsedTrace, serde_json::Error> {
    let lines: Vec<&str> = jsonl.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut events = Vec::with_capacity(lines.len());
    for (idx, line) in lines.iter().enumerate() {
        match serde_json::from_str(line) {
            Ok(ev) => events.push(ev),
            Err(e) if idx + 1 == lines.len() && !events.is_empty() => {
                return Ok(ParsedTrace {
                    events,
                    warning: Some(format!(
                        "trace ends in a truncated line (crash mid-write?): {e}"
                    )),
                });
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ParsedTrace {
        events,
        warning: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ExperimentEvent> {
        vec![
            ExperimentEvent::ExperimentStarted {
                benchmark: "sieve".into(),
                engine: "interp".into(),
                invocations: 1,
                iterations: 2,
            },
            ExperimentEvent::InvocationStarted {
                benchmark: "sieve".into(),
                invocation: 0,
                seed: 42,
            },
            ExperimentEvent::IterationFinished {
                benchmark: "sieve".into(),
                invocation: 0,
                iteration: 0,
                virtual_ns: 1250.5,
                counters: IterationCounters {
                    gc_cycles: 1,
                    jit_compiles: 0,
                    deopts: 0,
                },
            },
            ExperimentEvent::InvocationFinished {
                benchmark: "sieve".into(),
                invocation: 0,
                startup_ns: 10.0,
                iterations: 2,
                error: None,
            },
            ExperimentEvent::InvocationRetried {
                benchmark: "sieve".into(),
                invocation: 0,
                attempt: 1,
                error: "TimeoutError: deadline passed".into(),
            },
            ExperimentEvent::InvocationTimedOut {
                benchmark: "sieve".into(),
                invocation: 0,
                attempt: 0,
                kind: "timeout".into(),
            },
            ExperimentEvent::BenchmarkQuarantined {
                benchmark: "sieve".into(),
                censored: 3,
                invocations: 4,
            },
            ExperimentEvent::CheckpointWritten {
                benchmark: "sieve".into(),
                invocation: 0,
                records: 1,
            },
            ExperimentEvent::ExperimentFinished {
                benchmark: "sieve".into(),
                engine: "interp".into(),
                failed_invocations: 0,
            },
            ExperimentEvent::RunArchived {
                store: ".rigor-store".into(),
                run_id: "ab12cd34ef56".into(),
                seq: 3,
                benchmarks: 2,
            },
            ExperimentEvent::RegressionChecked {
                store: ".rigor-store".into(),
                baseline: "last-3".into(),
                checked: 2,
                regressed: 1,
                passed: false,
            },
            ExperimentEvent::TrendAnalyzed {
                store: ".rigor-store".into(),
                benchmarks: 2,
                runs: 9,
                changepoints: 1,
                alerts: 1,
            },
            ExperimentEvent::ChangepointDetected {
                benchmark: "sieve".into(),
                run_id: "ab12cd34ef56".into(),
                seq: 7,
                direction: "slower".into(),
                magnitude: 1.31,
                p_adjusted: 0.0004,
                at_head: true,
            },
            ExperimentEvent::CampaignStarted {
                campaign: "c0ffee12".into(),
                cells: 8,
                workers: 2,
                arrival: "poisson:1000".into(),
            },
            ExperimentEvent::CampaignResumed {
                campaign: "c0ffee12".into(),
                completed: 3,
                cells: 8,
            },
            ExperimentEvent::CellCompleted {
                cell: "sieve/interp/10x30/42".into(),
                index: 4,
                worker: 1,
                run_id: "ab12cd34ef56".into(),
                completed: 5,
                cells: 8,
            },
            ExperimentEvent::CellStolen {
                cell: "sieve/jit/10x30/42".into(),
                index: 6,
                from_worker: 0,
                to_worker: 1,
            },
            ExperimentEvent::PlanComputed {
                campaign: "c0ffee12".into(),
                round: 1,
                unmet: 3,
                tasks: 2,
                planned: 24,
                spent: 40,
                budget_remaining: Some(160),
            },
            ExperimentEvent::CellRefined {
                cell: "sieve/interp/10x30/42".into(),
                index: 4,
                round: 1,
                invocations: 12,
                rel_half_width: Some(0.018),
                target_met: true,
            },
            ExperimentEvent::BudgetExhausted {
                campaign: "c0ffee12".into(),
                round: 3,
                spent: 200,
                budget: 200,
                unmet: 1,
            },
        ]
    }

    #[test]
    fn events_roundtrip_through_json() {
        for ev in sample_events() {
            let json = serde_json::to_string(&ev).unwrap();
            assert!(json.contains(&format!("\"event\":\"{}\"", ev.name())));
            let back: ExperimentEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn error_field_is_omitted_when_none_but_roundtrips_when_set() {
        let ok = &sample_events()[3];
        assert!(!serde_json::to_string(ok).unwrap().contains("error"));
        let failed = ExperimentEvent::InvocationFinished {
            benchmark: "sieve".into(),
            invocation: 1,
            startup_ns: 0.0,
            iterations: 0,
            error: Some("boom".into()),
        };
        let json = serde_json::to_string(&failed).unwrap();
        let back: ExperimentEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, failed);
    }

    #[test]
    fn run_level_events_have_no_benchmark() {
        let events = sample_events();
        let by_name = |name: &str| {
            events
                .iter()
                .find(|e| e.name() == name)
                .unwrap_or_else(|| panic!("sample stream has {name}"))
        };
        for name in [
            "run_archived",
            "regression_checked",
            "trend_analyzed",
            "campaign_started",
            "campaign_resumed",
            "cell_completed",
            "cell_stolen",
            "plan_computed",
            "cell_refined",
            "budget_exhausted",
        ] {
            assert_eq!(by_name(name).benchmark(), "", "{name}");
        }
        // A detected changepoint belongs to its benchmark.
        assert_eq!(by_name("changepoint_detected").benchmark(), "sieve");
    }

    #[test]
    fn collecting_observer_keeps_order() {
        let c = CollectingObserver::new();
        assert!(c.is_empty());
        for ev in sample_events() {
            c.on_event(&ev);
        }
        assert_eq!(c.len(), sample_events().len());
        assert_eq!(c.events(), sample_events());
    }

    #[test]
    fn jsonl_observer_writes_parseable_lines() {
        let obs = JsonlTraceObserver::new(Vec::new());
        for ev in sample_events() {
            obs.on_event(&ev);
        }
        let bytes = obs.writer.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed.events, sample_events());
        assert!(parsed.warning.is_none());
    }

    #[test]
    fn parse_trace_rejects_garbage() {
        // A trace with no valid prefix is corruption, not truncation.
        assert!(parse_trace("{\"event\": \"nope\"}\n").is_err());
        assert!(parse_trace("not json\n").is_err());
    }

    #[test]
    fn parse_trace_tolerates_truncated_final_line() {
        let mut text = String::new();
        for ev in sample_events() {
            text.push_str(&serde_json::to_string(&ev).unwrap());
            text.push('\n');
        }
        // Simulate a crash mid-write: chop the last line in half.
        let cut = text.trim_end().len() - 10;
        let truncated = &text[..cut];
        let parsed = parse_trace(truncated).unwrap();
        assert_eq!(parsed.events.len(), sample_events().len() - 1);
        assert_eq!(parsed.events, sample_events()[..sample_events().len() - 1]);
        let warning = parsed.warning.expect("truncation must be reported");
        assert!(warning.contains("truncated"));
    }

    #[test]
    fn parse_trace_rejects_garbage_in_the_middle() {
        let good = serde_json::to_string(&sample_events()[0]).unwrap();
        let text = format!("{good}\nnot json\n{good}\n");
        assert!(parse_trace(&text).is_err());
    }

    #[test]
    fn progress_observer_survives_a_full_stream() {
        let p = ProgressObserver::new();
        for ev in sample_events() {
            p.on_event(&ev);
        }
        // State is reset after ExperimentFinished.
        assert!(p.state.lock().unwrap().is_none());
    }

    #[test]
    fn null_observer_ignores_everything() {
        let n = NullObserver;
        for ev in sample_events() {
            n.on_event(&ev);
        }
    }
}
