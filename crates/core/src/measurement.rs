//! Measurement data model: per-iteration timings across invocations.

use serde::{Deserialize, Serialize};

/// The VM events of one timed iteration: the counters that explain an
/// anomalous timing (a GC pause, a JIT compile, a deoptimization storm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationCounters {
    /// GC cycles during this iteration.
    pub gc_cycles: u64,
    /// JIT regions compiled during this iteration.
    pub jit_compiles: u64,
    /// Guard failures during this iteration.
    pub deopts: u64,
}

impl From<minipy::VmEventDeltas> for IterationCounters {
    fn from(d: minipy::VmEventDeltas) -> IterationCounters {
        IterationCounters {
            gc_cycles: d.gc_cycles,
            jit_compiles: d.jit_compiles,
            deopts: d.deopts,
        }
    }
}

/// Everything recorded about one VM invocation of a benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Invocation index within the experiment.
    pub invocation: u32,
    /// The derived invocation seed (for replay).
    pub seed: u64,
    /// Startup (compile + module setup) virtual time, ns.
    pub startup_ns: f64,
    /// Per-iteration virtual times, ns.
    pub iteration_ns: Vec<f64>,
    /// GC cycles observed during the timed iterations.
    pub gc_cycles: u64,
    /// JIT regions compiled during the timed iterations.
    pub jit_compiles: u64,
    /// Guard failures during the timed iterations.
    pub deopts: u64,
    /// The checksum `run()` returned (rendered), for cross-engine validation.
    pub checksum: String,
    /// Per-iteration VM event deltas, aligned with `iteration_ns`. `None`
    /// for measurements recorded before this field existed (old JSON stays
    /// readable) or synthesized without a VM.
    pub iteration_counters: Option<Vec<IterationCounters>>,
}

/// All invocations of one benchmark on one engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkMeasurement {
    /// Benchmark name.
    pub benchmark: String,
    /// Engine name (`"interp"` / `"jit"`).
    pub engine: String,
    /// One record per invocation.
    pub invocations: Vec<InvocationRecord>,
}

impl BenchmarkMeasurement {
    /// Number of invocations.
    pub fn n_invocations(&self) -> usize {
        self.invocations.len()
    }

    /// Iterations per invocation (0 when empty).
    pub fn n_iterations(&self) -> usize {
        self.invocations
            .first()
            .map(|r| r.iteration_ns.len())
            .unwrap_or(0)
    }

    /// Per-invocation iteration series.
    pub fn series(&self) -> impl Iterator<Item = &[f64]> {
        self.invocations.iter().map(|r| r.iteration_ns.as_slice())
    }

    /// Mean of iterations `start..` for each invocation — the per-invocation
    /// sample the methodology feeds into confidence intervals. `start` is
    /// typically a steady-state iteration found by a detector.
    pub fn tail_means(&self, start: usize) -> Vec<f64> {
        self.invocations
            .iter()
            .filter_map(|r| {
                let tail = r.iteration_ns.get(start..)?;
                if tail.is_empty() {
                    None
                } else {
                    Some(tail.iter().sum::<f64>() / tail.len() as f64)
                }
            })
            .collect()
    }

    /// Mean of **all** iterations per invocation (warmup included) — what a
    /// methodology that ignores warmup would use.
    pub fn all_means(&self) -> Vec<f64> {
        self.tail_means(0)
    }

    /// The `idx`-th iteration time from each invocation.
    pub fn iteration_column(&self, idx: usize) -> Vec<f64> {
        self.invocations
            .iter()
            .filter_map(|r| r.iteration_ns.get(idx).copied())
            .collect()
    }

    /// Mean per-iteration series across invocations (pointwise), useful for
    /// plotting average warmup curves.
    pub fn mean_curve(&self) -> Vec<f64> {
        let n_iter = self.n_iterations();
        (0..n_iter)
            .map(|i| {
                let col = self.iteration_column(i);
                col.iter().sum::<f64>() / col.len().max(1) as f64
            })
            .collect()
    }

    /// True if all invocations produced the same checksum (they must, for a
    /// deterministic benchmark; dict-order-dependent benchmarks that violate
    /// this are a methodology smell this accessor exposes).
    pub fn checksums_consistent(&self) -> bool {
        match self.invocations.first() {
            None => true,
            Some(first) => self
                .invocations
                .iter()
                .all(|r| r.checksum == first.checksum),
        }
    }

    /// Per-invocation startup (compile + module setup) times, ns — the
    /// "python -c pass" axis of Python benchmarking: startup is measured
    /// across invocations exactly like steady-state time, never from one run.
    pub fn startup_times(&self) -> Vec<f64> {
        self.invocations.iter().map(|r| r.startup_ns).collect()
    }

    /// Total virtual time across every invocation (startup + iterations), a
    /// rough experiment-cost figure.
    pub fn total_virtual_ns(&self) -> f64 {
        self.invocations
            .iter()
            .map(|r| r.startup_ns + r.iteration_ns.iter().sum::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(invocation: u32, times: Vec<f64>) -> InvocationRecord {
        InvocationRecord {
            invocation,
            seed: invocation as u64,
            startup_ns: 100.0,
            iteration_ns: times,
            gc_cycles: 0,
            jit_compiles: 0,
            deopts: 0,
            checksum: "42".into(),
            iteration_counters: None,
        }
    }

    fn measurement() -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: "x".into(),
            engine: "interp".into(),
            invocations: vec![
                record(0, vec![10.0, 4.0, 4.0, 4.0]),
                record(1, vec![12.0, 6.0, 6.0, 6.0]),
            ],
        }
    }

    #[test]
    fn dimensions() {
        let m = measurement();
        assert_eq!(m.n_invocations(), 2);
        assert_eq!(m.n_iterations(), 4);
    }

    #[test]
    fn tail_means_skip_warmup() {
        let m = measurement();
        assert_eq!(m.tail_means(1), vec![4.0, 6.0]);
        assert_eq!(m.all_means(), vec![5.5, 7.5]);
        // Start beyond the series yields nothing.
        assert!(m.tail_means(10).is_empty());
    }

    #[test]
    fn iteration_column_and_mean_curve() {
        let m = measurement();
        assert_eq!(m.iteration_column(0), vec![10.0, 12.0]);
        assert_eq!(m.mean_curve(), vec![11.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn checksum_consistency() {
        let mut m = measurement();
        assert!(m.checksums_consistent());
        m.invocations[1].checksum = "43".into();
        assert!(!m.checksums_consistent());
    }

    #[test]
    fn startup_times_are_per_invocation() {
        let m = measurement();
        assert_eq!(m.startup_times(), vec![100.0, 100.0]);
    }

    #[test]
    fn total_cost() {
        let m = measurement();
        assert!((m.total_virtual_ns() - (100.0 + 22.0 + 100.0 + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let m = measurement();
        let json = serde_json::to_string(&m).unwrap();
        let back: BenchmarkMeasurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_invocations(), 2);
        assert_eq!(
            back.invocations[0].iteration_ns,
            m.invocations[0].iteration_ns
        );
    }
}
