//! Measurement data model: per-iteration timings across invocations, plus
//! the error taxonomy that keeps partial experiments honest: every requested
//! invocation ends up either *measured* (an [`InvocationRecord`], possibly
//! after retries) or *censored* (a [`CensoredInvocation`] that exhausted its
//! retries), and a benchmark whose censoring rate passes the quarantine
//! threshold is flagged so its statistics are never silently trusted.

use serde::json::{get_field, DeError, JsonValue};
use serde::{Deserialize, Serialize};

/// The VM events of one timed iteration: the counters that explain an
/// anomalous timing (a GC pause, a JIT compile, a deoptimization storm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationCounters {
    /// GC cycles during this iteration.
    pub gc_cycles: u64,
    /// JIT regions compiled during this iteration.
    pub jit_compiles: u64,
    /// Guard failures during this iteration.
    pub deopts: u64,
}

impl From<minipy::VmEventDeltas> for IterationCounters {
    fn from(d: minipy::VmEventDeltas) -> IterationCounters {
        IterationCounters {
            gc_cycles: d.gc_cycles,
            jit_compiles: d.jit_compiles,
            deopts: d.deopts,
        }
    }
}

/// Classification of why an invocation attempt failed — the error taxonomy
/// exports carry so downstream analysis can distinguish a workload that
/// diverged (budget exhaustion, a *censoring* event) from one that crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The virtual-time deadline passed (`RuntimeErrorKind::Timeout`).
    Timeout,
    /// The opcode budget ran out (`RuntimeErrorKind::FuelExhausted`).
    FuelExhausted,
    /// The worker panicked (a VM bug, or an injected fault).
    Panic,
    /// Any other VM runtime error (type errors, overflow, ...).
    VmError,
}

impl FailureKind {
    /// Classifies a minipy error. Panics are classified by the runner before
    /// they reach an `MpError`, so `Internal` here means a VM-reported panic.
    pub fn classify(err: &minipy::MpError) -> FailureKind {
        match err.runtime_kind() {
            Some(minipy::RuntimeErrorKind::Timeout) => FailureKind::Timeout,
            Some(minipy::RuntimeErrorKind::FuelExhausted) => FailureKind::FuelExhausted,
            Some(minipy::RuntimeErrorKind::Internal) => FailureKind::Panic,
            _ => FailureKind::VmError,
        }
    }

    /// The stable wire name (`"timeout"`, `"fuel_exhausted"`, `"panic"`,
    /// `"vm_error"`), also used as the status column in CSV exports.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Timeout => "timeout",
            FailureKind::FuelExhausted => "fuel_exhausted",
            FailureKind::Panic => "panic",
            FailureKind::VmError => "vm_error",
        }
    }

    /// True when the workload was stopped by a budget rather than failing.
    pub fn is_budget_exhaustion(self) -> bool {
        matches!(self, FailureKind::Timeout | FailureKind::FuelExhausted)
    }

    /// Parses a wire name produced by [`FailureKind::name`] (used when
    /// reading the CSV `status` column back).
    pub fn from_name(name: &str) -> Option<FailureKind> {
        match name {
            "timeout" => Some(FailureKind::Timeout),
            "fuel_exhausted" => Some(FailureKind::FuelExhausted),
            "panic" => Some(FailureKind::Panic),
            "vm_error" => Some(FailureKind::VmError),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for FailureKind {
    fn to_value(&self) -> JsonValue {
        JsonValue::Str(self.name().to_string())
    }
}

impl Deserialize for FailureKind {
    fn from_value(v: &JsonValue) -> Result<FailureKind, DeError> {
        let s: String = Deserialize::from_value(v)?;
        FailureKind::from_name(&s)
            .ok_or_else(|| DeError::new(format!("unknown failure kind `{s}`")))
    }
}

/// An invocation that never produced a measurement: every attempt (initial
/// plus retries) failed, so its slot in the experiment is censored rather
/// than silently dropped — Traini et al.'s requirement that partial runs
/// still yield interpretable data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensoredInvocation {
    /// Invocation index within the experiment.
    pub invocation: u32,
    /// Total attempts made (1 initial + retries).
    pub attempts: u32,
    /// Classification of the final failure.
    pub failure: FailureKind,
    /// The final attempt's error message.
    pub error: String,
}

/// Everything recorded about one VM invocation of a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationRecord {
    /// Invocation index within the experiment.
    pub invocation: u32,
    /// The derived invocation seed (for replay).
    pub seed: u64,
    /// Startup (compile + module setup) virtual time, ns.
    pub startup_ns: f64,
    /// Per-iteration virtual times, ns.
    pub iteration_ns: Vec<f64>,
    /// GC cycles observed during the timed iterations.
    pub gc_cycles: u64,
    /// JIT regions compiled during the timed iterations.
    pub jit_compiles: u64,
    /// Guard failures during the timed iterations.
    pub deopts: u64,
    /// The checksum `run()` returned (rendered), for cross-engine validation.
    pub checksum: String,
    /// Per-iteration VM event deltas, aligned with `iteration_ns`. `None`
    /// for measurements recorded before this field existed (old JSON stays
    /// readable) or synthesized without a VM.
    pub iteration_counters: Option<Vec<IterationCounters>>,
    /// Attempts this measurement took (1 = first try; >1 = it was retried
    /// with fresh seeds after earlier failures).
    pub attempts: u32,
}

// Manual serde keeps the wire format stable as fault-tolerance fields are
// added: `attempts` is omitted on serialize when 1 and defaults to 1 on
// deserialize, so records written before retries existed stay readable and
// clean-run JSON is byte-identical to the pre-retry format.
impl Serialize for InvocationRecord {
    fn to_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("invocation".into(), self.invocation.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("startup_ns".into(), self.startup_ns.to_value()),
            ("iteration_ns".into(), self.iteration_ns.to_value()),
            ("gc_cycles".into(), self.gc_cycles.to_value()),
            ("jit_compiles".into(), self.jit_compiles.to_value()),
            ("deopts".into(), self.deopts.to_value()),
            ("checksum".into(), self.checksum.to_value()),
        ];
        let counters = self.iteration_counters.to_value();
        if !counters.is_null() {
            fields.push(("iteration_counters".into(), counters));
        }
        if self.attempts != 1 {
            fields.push(("attempts".into(), self.attempts.to_value()));
        }
        JsonValue::Object(fields)
    }
}

impl Deserialize for InvocationRecord {
    fn from_value(v: &JsonValue) -> Result<InvocationRecord, DeError> {
        Ok(InvocationRecord {
            invocation: get_field(v, "invocation")?,
            seed: get_field(v, "seed")?,
            startup_ns: get_field(v, "startup_ns")?,
            iteration_ns: get_field(v, "iteration_ns")?,
            gc_cycles: get_field(v, "gc_cycles")?,
            jit_compiles: get_field(v, "jit_compiles")?,
            deopts: get_field(v, "deopts")?,
            checksum: get_field(v, "checksum")?,
            iteration_counters: get_field(v, "iteration_counters")?,
            attempts: get_field::<Option<u32>>(v, "attempts")?.unwrap_or(1),
        })
    }
}

/// All invocations of one benchmark on one engine, measured and censored.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkMeasurement {
    /// Benchmark name.
    pub benchmark: String,
    /// Engine name (`"interp"` / `"jit"`).
    pub engine: String,
    /// One record per *measured* invocation, in invocation order.
    pub invocations: Vec<InvocationRecord>,
    /// Invocations that exhausted their retries, in invocation order.
    pub censored: Vec<CensoredInvocation>,
    /// True when the censored fraction exceeded the configured quarantine
    /// threshold: the statistics below are computed but untrustworthy.
    pub quarantined: bool,
}

// Same stability contract as `InvocationRecord`: `censored` is omitted when
// empty and `quarantined` when false, so clean-run JSON matches the
// pre-fault-tolerance format and old files deserialize with the defaults.
impl Serialize for BenchmarkMeasurement {
    fn to_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("benchmark".into(), self.benchmark.to_value()),
            ("engine".into(), self.engine.to_value()),
            ("invocations".into(), self.invocations.to_value()),
        ];
        if !self.censored.is_empty() {
            fields.push(("censored".into(), self.censored.to_value()));
        }
        if self.quarantined {
            fields.push(("quarantined".into(), self.quarantined.to_value()));
        }
        JsonValue::Object(fields)
    }
}

impl Deserialize for BenchmarkMeasurement {
    fn from_value(v: &JsonValue) -> Result<BenchmarkMeasurement, DeError> {
        Ok(BenchmarkMeasurement {
            benchmark: get_field(v, "benchmark")?,
            engine: get_field(v, "engine")?,
            invocations: get_field(v, "invocations")?,
            censored: get_field::<Option<Vec<CensoredInvocation>>>(v, "censored")?
                .unwrap_or_default(),
            quarantined: get_field::<Option<bool>>(v, "quarantined")?.unwrap_or(false),
        })
    }
}

impl BenchmarkMeasurement {
    /// Number of *measured* invocations.
    pub fn n_invocations(&self) -> usize {
        self.invocations.len()
    }

    /// Number of invocations requested: measured plus censored.
    pub fn n_requested(&self) -> usize {
        self.invocations.len() + self.censored.len()
    }

    /// Fraction of requested invocations that ended censored (0.0 when the
    /// experiment was empty).
    pub fn censoring_rate(&self) -> f64 {
        let total = self.n_requested();
        if total == 0 {
            0.0
        } else {
            self.censored.len() as f64 / total as f64
        }
    }

    /// Measured invocations that needed at least one retry.
    pub fn n_retried(&self) -> usize {
        self.invocations.iter().filter(|r| r.attempts > 1).count()
    }

    /// Iterations per invocation (0 when empty).
    pub fn n_iterations(&self) -> usize {
        self.invocations
            .first()
            .map(|r| r.iteration_ns.len())
            .unwrap_or(0)
    }

    /// Per-invocation iteration series.
    pub fn series(&self) -> impl Iterator<Item = &[f64]> {
        self.invocations.iter().map(|r| r.iteration_ns.as_slice())
    }

    /// Mean of iterations `start..` for each invocation — the per-invocation
    /// sample the methodology feeds into confidence intervals. `start` is
    /// typically a steady-state iteration found by a detector.
    pub fn tail_means(&self, start: usize) -> Vec<f64> {
        self.invocations
            .iter()
            .filter_map(|r| {
                let tail = r.iteration_ns.get(start..)?;
                if tail.is_empty() {
                    None
                } else {
                    Some(tail.iter().sum::<f64>() / tail.len() as f64)
                }
            })
            .collect()
    }

    /// Mean of **all** iterations per invocation (warmup included) — what a
    /// methodology that ignores warmup would use.
    pub fn all_means(&self) -> Vec<f64> {
        self.tail_means(0)
    }

    /// The `idx`-th iteration time from each invocation.
    pub fn iteration_column(&self, idx: usize) -> Vec<f64> {
        self.invocations
            .iter()
            .filter_map(|r| r.iteration_ns.get(idx).copied())
            .collect()
    }

    /// Mean per-iteration series across invocations (pointwise), useful for
    /// plotting average warmup curves.
    pub fn mean_curve(&self) -> Vec<f64> {
        let n_iter = self.n_iterations();
        (0..n_iter)
            .map(|i| {
                let col = self.iteration_column(i);
                col.iter().sum::<f64>() / col.len().max(1) as f64
            })
            .collect()
    }

    /// True if all invocations produced the same checksum (they must, for a
    /// deterministic benchmark; dict-order-dependent benchmarks that violate
    /// this are a methodology smell this accessor exposes).
    pub fn checksums_consistent(&self) -> bool {
        match self.invocations.first() {
            None => true,
            Some(first) => self
                .invocations
                .iter()
                .all(|r| r.checksum == first.checksum),
        }
    }

    /// Per-invocation startup (compile + module setup) times, ns — the
    /// "python -c pass" axis of Python benchmarking: startup is measured
    /// across invocations exactly like steady-state time, never from one run.
    pub fn startup_times(&self) -> Vec<f64> {
        self.invocations.iter().map(|r| r.startup_ns).collect()
    }

    /// Total virtual time across every invocation (startup + iterations), a
    /// rough experiment-cost figure.
    pub fn total_virtual_ns(&self) -> f64 {
        self.invocations
            .iter()
            .map(|r| r.startup_ns + r.iteration_ns.iter().sum::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(invocation: u32, times: Vec<f64>) -> InvocationRecord {
        InvocationRecord {
            invocation,
            seed: invocation as u64,
            startup_ns: 100.0,
            iteration_ns: times,
            gc_cycles: 0,
            jit_compiles: 0,
            deopts: 0,
            checksum: "42".into(),
            iteration_counters: None,
            attempts: 1,
        }
    }

    fn measurement() -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: "x".into(),
            engine: "interp".into(),
            invocations: vec![
                record(0, vec![10.0, 4.0, 4.0, 4.0]),
                record(1, vec![12.0, 6.0, 6.0, 6.0]),
            ],
            censored: Vec::new(),
            quarantined: false,
        }
    }

    #[test]
    fn dimensions() {
        let m = measurement();
        assert_eq!(m.n_invocations(), 2);
        assert_eq!(m.n_iterations(), 4);
    }

    #[test]
    fn tail_means_skip_warmup() {
        let m = measurement();
        assert_eq!(m.tail_means(1), vec![4.0, 6.0]);
        assert_eq!(m.all_means(), vec![5.5, 7.5]);
        // Start beyond the series yields nothing.
        assert!(m.tail_means(10).is_empty());
    }

    #[test]
    fn iteration_column_and_mean_curve() {
        let m = measurement();
        assert_eq!(m.iteration_column(0), vec![10.0, 12.0]);
        assert_eq!(m.mean_curve(), vec![11.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn checksum_consistency() {
        let mut m = measurement();
        assert!(m.checksums_consistent());
        m.invocations[1].checksum = "43".into();
        assert!(!m.checksums_consistent());
    }

    #[test]
    fn startup_times_are_per_invocation() {
        let m = measurement();
        assert_eq!(m.startup_times(), vec![100.0, 100.0]);
    }

    #[test]
    fn total_cost() {
        let m = measurement();
        assert!((m.total_virtual_ns() - (100.0 + 22.0 + 100.0 + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let m = measurement();
        let json = serde_json::to_string(&m).unwrap();
        let back: BenchmarkMeasurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_invocations(), 2);
        assert_eq!(
            back.invocations[0].iteration_ns,
            m.invocations[0].iteration_ns
        );
    }

    #[test]
    fn clean_run_json_omits_fault_fields() {
        let json = serde_json::to_string(&measurement()).unwrap();
        assert!(!json.contains("censored"));
        assert!(!json.contains("quarantined"));
        assert!(!json.contains("attempts"));
    }

    #[test]
    fn pre_fault_tolerance_json_still_deserializes() {
        // JSON written before attempts/censored/quarantined existed.
        let json = "{\"benchmark\":\"x\",\"engine\":\"interp\",\"invocations\":[\
                    {\"invocation\":0,\"seed\":1,\"startup_ns\":5.0,\
                    \"iteration_ns\":[1.0,2.0],\"gc_cycles\":0,\"jit_compiles\":0,\
                    \"deopts\":0,\"checksum\":\"9\"}]}";
        let m: BenchmarkMeasurement = serde_json::from_str(json).unwrap();
        assert_eq!(m.invocations[0].attempts, 1);
        assert!(m.censored.is_empty());
        assert!(!m.quarantined);
    }

    #[test]
    fn censored_and_retried_roundtrip() {
        let mut m = measurement();
        m.invocations[1].attempts = 3;
        m.censored.push(CensoredInvocation {
            invocation: 2,
            attempts: 2,
            failure: FailureKind::Timeout,
            error: "TimeoutError: deadline passed".into(),
        });
        m.quarantined = true;
        let json = serde_json::to_string(&m).unwrap();
        let back: BenchmarkMeasurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back.invocations[1].attempts, 3);
        assert_eq!(back.censored, m.censored);
        assert!(back.quarantined);
        assert_eq!(back.n_requested(), 3);
        assert_eq!(back.n_retried(), 1);
        assert!((back.censoring_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn failure_kind_taxonomy() {
        use minipy::{MpError, RuntimeErrorKind};
        let timeout = MpError::runtime(RuntimeErrorKind::Timeout, "late");
        let fuel = MpError::runtime(RuntimeErrorKind::FuelExhausted, "dry");
        let panic = MpError::runtime(RuntimeErrorKind::Internal, "boom");
        let name = MpError::name_error("x");
        assert_eq!(FailureKind::classify(&timeout), FailureKind::Timeout);
        assert_eq!(FailureKind::classify(&fuel), FailureKind::FuelExhausted);
        assert_eq!(FailureKind::classify(&panic), FailureKind::Panic);
        assert_eq!(FailureKind::classify(&name), FailureKind::VmError);
        assert!(FailureKind::Timeout.is_budget_exhaustion());
        assert!(!FailureKind::Panic.is_budget_exhaustion());
        for kind in [
            FailureKind::Timeout,
            FailureKind::FuelExhausted,
            FailureKind::Panic,
            FailureKind::VmError,
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            let back: FailureKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
    }
}
