//! The campaign orchestrator: executes a cell grid on a work-stealing
//! scheduler of std worker threads, streaming each completed cell into a
//! [`CellSink`] and a campaign journal as it finishes.
//!
//! Scheduling model: the pending cells are dealt round-robin onto per-worker
//! deques (worker *w* gets pending cells *w*, *w*+W, …). A worker pops from
//! the **front** of its own deque; when empty it steals from the **back** of
//! the longest other deque (emitting `cell_stolen`), so cells migrate from
//! loaded workers to idle ones without a central queue lock on the hot path.
//!
//! Each cell runs through [`crate::Runner::measure`] — the cell-execution
//! primitive — under the cell's own validated config, with the campaign's
//! observers attached, so per-cell experiment streams arrive alongside the
//! campaign-level events (`campaign_started`, `campaign_resumed`,
//! `cell_completed`, `cell_stolen`).
//!
//! Resume: the **archive is authoritative** — on [`Campaign::resume`] every
//! cell the sink already holds is skipped; the campaign journal only
//! verifies the grid identity (fingerprint + cell count), so a torn run
//! picks up exactly at its first incomplete cell. The journal is rewritten
//! from scratch on every run (replayed cells re-journaled first), so it
//! always ends up complete.
//!
//! Adaptive mode: when the spec carries a [`PlannerConfig`], the fixed grid
//! walk becomes a feedback-driven scheduler. A pilot round measures every
//! cell at the planner's floor; [`compute_plan`] then grants more
//! invocations where the predicted CI is still too wide, the worker pool
//! drains the round's [`crate::planner::RefineTask`]s (widest CI first, the
//! same stealing discipline), and the loop re-plans until every cell meets
//! its target relative half-width or nothing more can be granted. Rounds
//! are barriers, so the estimate set each plan sees — and therefore the
//! whole refinement trajectory — is independent of the worker count. Only
//! **final** measurements are archived (target met, ceiling reached, or the
//! budget-exhausted sweep), each with a [`CellPrecision`] record, so a
//! killed-and-resumed adaptive campaign re-pilots its unarchived cells and
//! converges to the same archive.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};

use crate::campaign::{
    CampaignError, CampaignJournal, CampaignJournalMeta, CampaignJournalWriter, CampaignSpec, Cell,
    CellDone, CellPrecision, CellSink,
};
use crate::measurement::BenchmarkMeasurement;
use crate::planner::{compute_plan, CellEstimate, PlannerConfig};
use crate::runner::Runner;
use crate::steady::SteadyStateDetector;
use crate::telemetry::{ExperimentEvent, ExperimentObserver};

/// A cloneable event outlet handed to workers; a no-op with no observers
/// (same shape as the runner's sink, so telemetry costs nothing unless
/// asked for).
#[derive(Clone)]
struct EventSink(Option<Sender<ExperimentEvent>>);

impl EventSink {
    fn send(&self, event: ExperimentEvent) {
        if let Some(tx) = &self.0 {
            let _ = tx.send(event);
        }
    }
}

/// What a finished campaign run did, cell by cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// The campaign's identity fingerprint.
    pub fingerprint: String,
    /// Cells in the grid.
    pub total: usize,
    /// Cells skipped because a previous (interrupted) run had already
    /// archived them.
    pub skipped: usize,
    /// Cells executed and archived by this run.
    pub executed: usize,
    /// Cells stolen between workers by this run.
    pub stolen: usize,
    /// Canonical ids of executed cells whose measurement was quarantined.
    pub quarantined: Vec<String>,
    /// Cells that failed (canonical id, error) — compile-class measurement
    /// errors or sink failures; not journaled, so a rerun retries them.
    pub failures: Vec<(String, String)>,
    /// Cells left unscheduled (a [`Campaign::max_cells`] budget ran out).
    pub remaining: usize,
    /// Planning rounds computed (adaptive runs only; the pilot is round 0,
    /// so this is the number of [`compute_plan`] calls).
    pub rounds: u32,
    /// Invocations committed across all archived cells, resumed cells
    /// included (adaptive runs only).
    pub invocations: u64,
    /// Canonical ids of archived cells that ended short of the precision
    /// target — ceiling-capped or budget-starved (adaptive runs only).
    pub unmet: Vec<String>,
}

impl CampaignReport {
    /// Cells present in the archive after this run.
    pub fn completed(&self) -> usize {
        self.skipped + self.executed
    }

    /// True when every cell of the grid is archived.
    pub fn is_complete(&self) -> bool {
        self.completed() == self.total
    }
}

/// Executes a [`CampaignSpec`] on a work-stealing worker pool. Builder
/// style: configure, then [`Campaign::run`].
pub struct Campaign {
    spec: CampaignSpec,
    workers: usize,
    observers: Vec<Arc<dyn ExperimentObserver>>,
    journal_path: Option<PathBuf>,
    resume: bool,
    max_cells: Option<usize>,
}

impl Campaign {
    /// A campaign over `spec` with 4 workers, no observers, no journal.
    pub fn new(spec: CampaignSpec) -> Campaign {
        Campaign {
            spec,
            workers: 4,
            observers: Vec::new(),
            journal_path: None,
            resume: false,
            max_cells: None,
        }
    }

    /// Sets the worker-thread count (builder style). Zero is rejected by
    /// [`Campaign::run`] with [`CampaignError::ZeroWorkers`].
    pub fn workers(mut self, workers: usize) -> Campaign {
        self.workers = workers;
        self
    }

    /// Attaches an observer (builder style); it receives the campaign-level
    /// events *and* every cell's experiment stream. Call repeatedly to fan
    /// out.
    pub fn observer(mut self, observer: Arc<dyn ExperimentObserver>) -> Campaign {
        self.observers.push(observer);
        self
    }

    /// Journals completed cells to `path` (builder style). The file is
    /// rewritten on every run; combined with [`Campaign::resume`], replayed
    /// cells are re-journaled first so the file always ends up complete.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Campaign {
        self.journal_path = Some(path.into());
        self
    }

    /// Resumes a torn campaign (builder style): cells the sink already
    /// holds are skipped, and a journal at the configured path (if one
    /// exists) must identify this same grid.
    pub fn resume(mut self, resume: bool) -> Campaign {
        self.resume = resume;
        self
    }

    /// Caps how many cells this run may execute (builder style) — the rest
    /// stay pending for a later `--resume`. Used to interrupt
    /// deterministically in tests and CI smoke runs.
    pub fn max_cells(mut self, max_cells: usize) -> Campaign {
        self.max_cells = Some(max_cells);
        self
    }

    /// The campaign's spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Expands the grid and executes it, streaming completed cells into
    /// `sink`.
    ///
    /// # Errors
    ///
    /// Grid-expansion errors ([`CampaignError::EmptyAxis`] /
    /// [`CampaignError::UnknownBenchmark`] / [`CampaignError::Config`]), a
    /// resume journal for a different grid
    /// ([`CampaignError::JournalMismatch`]), journal I/O errors, and sink
    /// failures while probing for already-completed cells. A zero worker
    /// count is [`CampaignError::ZeroWorkers`]; an unusable planner config
    /// is [`CampaignError::Planner`]. Per-cell measurement and archival
    /// failures do **not** abort the run — they are collected in
    /// [`CampaignReport::failures`].
    pub fn run(&self, sink: &dyn CellSink) -> Result<CampaignReport, CampaignError> {
        if self.workers == 0 {
            return Err(CampaignError::ZeroWorkers);
        }
        if let Some(planner) = self.spec.planner {
            return self.run_adaptive(planner, sink);
        }
        let cells = self.spec.cells()?;
        let fingerprint = self.spec.fingerprint();
        let total = cells.len();

        // Resume: the archive is authoritative for *what* is done; the
        // journal only proves the path belongs to this grid.
        let mut skipped: Vec<(Cell, String)> = Vec::new();
        let mut pending: Vec<Cell> = Vec::new();
        if self.resume {
            if let Some(path) = &self.journal_path {
                if let Some(journal) = CampaignJournal::load_tolerant(path)
                    .map_err(|e| CampaignError::Journal(e.to_string()))?
                {
                    journal
                        .check_matches(&fingerprint, total as u32)
                        .map_err(CampaignError::JournalMismatch)?;
                }
            }
            for cell in cells {
                match sink.completed_cell(&cell).map_err(CampaignError::Sink)? {
                    Some(receipt) => skipped.push((cell, receipt.run_id)),
                    None => pending.push(cell),
                }
            }
        } else {
            pending = cells;
        }

        let meta = CampaignJournalMeta {
            fingerprint: fingerprint.clone(),
            cells: total as u32,
        };
        let writer = match &self.journal_path {
            Some(path) => {
                let mut w = CampaignJournalWriter::create(path, &meta)
                    .map_err(|e| CampaignError::Journal(e.to_string()))?;
                // Re-journal replayed cells first: the journal must end up
                // complete whether or not this run was a resume.
                for (cell, run_id) in &skipped {
                    w.append_cell(&CellDone {
                        index: cell.index as u32,
                        id: cell.id.canonical(),
                        run_id: run_id.clone(),
                    })
                    .map_err(|e| CampaignError::Journal(e.to_string()))?;
                }
                Some(Mutex::new(w))
            }
            None => None,
        };

        // Deal pending cells round-robin onto per-worker deques.
        let workers = self.workers.clamp(1, pending.len().max(1));
        let mut deques: Vec<VecDeque<Cell>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, cell) in pending.drain(..).enumerate() {
            deques[i % workers].push_back(cell);
        }
        let queues: Vec<Mutex<VecDeque<Cell>>> = deques.into_iter().map(Mutex::new).collect();

        let completed = AtomicU32::new(skipped.len() as u32);
        let executed = AtomicUsize::new(0);
        let stolen = AtomicUsize::new(0);
        // Execution budget: claiming a ticket is the only gate, so the cap
        // is exact even under contention.
        let budget = AtomicUsize::new(self.max_cells.unwrap_or(usize::MAX));
        let quarantined: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let failures: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            // Telemetry drain, exactly as in the runner: a dedicated thread
            // fans events out, a panicking observer is disabled once.
            let sink_events = if self.observers.is_empty() {
                EventSink(None)
            } else {
                let (tx, rx) = channel::<ExperimentEvent>();
                let observers = &self.observers;
                scope.spawn(move || {
                    let mut disabled = vec![false; observers.len()];
                    for event in rx {
                        for (idx, obs) in observers.iter().enumerate() {
                            if disabled[idx] {
                                continue;
                            }
                            let outcome = catch_unwind(AssertUnwindSafe(|| obs.on_event(&event)));
                            if outcome.is_err() {
                                disabled[idx] = true;
                                eprintln!(
                                    "rigor: observer #{idx} panicked on `{}`; \
                                     disabling it for the rest of the campaign",
                                    event.name()
                                );
                            }
                        }
                    }
                });
                EventSink(Some(tx))
            };

            sink_events.send(ExperimentEvent::CampaignStarted {
                campaign: fingerprint.clone(),
                cells: total as u32,
                workers: workers as u32,
                arrival: self.spec.arrival.to_string(),
            });
            if self.resume {
                sink_events.send(ExperimentEvent::CampaignResumed {
                    campaign: fingerprint.clone(),
                    completed: skipped.len() as u32,
                    cells: total as u32,
                });
            }

            for me in 0..workers {
                let sink_events = sink_events.clone();
                let queues = &queues;
                let completed = &completed;
                let executed = &executed;
                let stolen = &stolen;
                let budget = &budget;
                let quarantined = &quarantined;
                let failures = &failures;
                let writer = &writer;
                let observers = &self.observers;
                let spec = &self.spec;
                scope.spawn(move || loop {
                    // Claim an execution ticket before touching any queue.
                    if budget
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                        .is_err()
                    {
                        break;
                    }
                    // Own deque first (front) …
                    let mut cell = queues[me].lock().expect("queue poisoned").pop_front();
                    // … then steal from the back of the longest other deque.
                    if cell.is_none() {
                        let victim = (0..queues.len())
                            .filter(|&v| v != me)
                            .map(|v| (v, queues[v].lock().expect("queue poisoned").len()))
                            .filter(|&(_, len)| len > 0)
                            .max_by_key(|&(_, len)| len)
                            .map(|(v, _)| v);
                        if let Some(v) = victim {
                            cell = queues[v].lock().expect("queue poisoned").pop_back();
                            if let Some(c) = &cell {
                                stolen.fetch_add(1, Ordering::Relaxed);
                                sink_events.send(ExperimentEvent::CellStolen {
                                    cell: c.id.canonical(),
                                    index: c.index as u32,
                                    from_worker: v as u32,
                                    to_worker: me as u32,
                                });
                            }
                        }
                    }
                    let Some(cell) = cell else { break };

                    // Seeded arrival pacing: a pure function of (campaign
                    // seed, cell index), so the pattern replays under the
                    // same seed whatever the worker count.
                    let delay = spec
                        .arrival
                        .delay(spec.base.experiment_seed, cell.index as u64);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }

                    execute_cell(
                        &cell,
                        me,
                        total,
                        observers,
                        sink,
                        writer,
                        &sink_events,
                        completed,
                        executed,
                        quarantined,
                        failures,
                    );
                });
            }
            // `scope` joins the workers, then the drain (its channel closes
            // when the last worker's sink clone drops with this binding).
            drop(sink_events);
        });

        let remaining = queues
            .into_iter()
            .map(|q| q.into_inner().expect("queue poisoned").len())
            .sum();
        Ok(CampaignReport {
            fingerprint,
            total,
            skipped: skipped.len(),
            executed: executed.into_inner(),
            stolen: stolen.into_inner(),
            quarantined: quarantined.into_inner().expect("quarantine list poisoned"),
            failures: failures.into_inner().expect("failure list poisoned"),
            remaining,
            rounds: 0,
            invocations: 0,
            unmet: Vec::new(),
        })
    }

    /// The adaptive-precision path: pilot every pending cell, then re-plan
    /// and refine round by round until every cell meets the target relative
    /// half-width or nothing more can be granted. See the module docs for
    /// the scheduling and determinism argument.
    fn run_adaptive(
        &self,
        cfg: PlannerConfig,
        sink: &dyn CellSink,
    ) -> Result<CampaignReport, CampaignError> {
        cfg.validate().map_err(CampaignError::Planner)?;
        let cells = self.spec.cells()?;
        let fingerprint = self.spec.fingerprint();
        let total = cells.len();
        let target = cfg.target_rel_half_width;
        let detector = SteadyStateDetector::default();
        let confidence = self.spec.base.confidence;

        // Resume: archived cells are final at their archived size; their
        // precision records reconstruct the invocations already spent.
        let mut skipped: Vec<(Cell, String)> = Vec::new();
        let mut pending: Vec<Cell> = Vec::new();
        let mut spent_final: u64 = 0;
        let mut unmet_ids: Vec<String> = Vec::new();
        if self.resume {
            if let Some(path) = &self.journal_path {
                if let Some(journal) = CampaignJournal::load_tolerant(path)
                    .map_err(|e| CampaignError::Journal(e.to_string()))?
                {
                    journal
                        .check_matches(&fingerprint, total as u32)
                        .map_err(CampaignError::JournalMismatch)?;
                }
            }
            for cell in cells {
                match sink.completed_cell(&cell).map_err(CampaignError::Sink)? {
                    Some(receipt) => {
                        match sink
                            .completed_precision(&cell)
                            .map_err(CampaignError::Sink)?
                        {
                            Some(p) => {
                                spent_final += u64::from(p.invocations_used);
                                if !p.target_met {
                                    unmet_ids.push(cell.id.canonical());
                                }
                            }
                            // Archived without a precision record (a sink
                            // without the side-channel): count the cell's
                            // configured size.
                            None => spent_final += u64::from(cell.config.invocations),
                        }
                        skipped.push((cell, receipt.run_id));
                    }
                    None => pending.push(cell),
                }
            }
        } else {
            pending = cells;
        }

        let meta = CampaignJournalMeta {
            fingerprint: fingerprint.clone(),
            cells: total as u32,
        };
        let writer = match &self.journal_path {
            Some(path) => {
                let mut w = CampaignJournalWriter::create(path, &meta)
                    .map_err(|e| CampaignError::Journal(e.to_string()))?;
                for (cell, run_id) in &skipped {
                    w.append_cell(&CellDone {
                        index: cell.index as u32,
                        id: cell.id.canonical(),
                        run_id: run_id.clone(),
                    })
                    .map_err(|e| CampaignError::Journal(e.to_string()))?;
                }
                Some(Mutex::new(w))
            }
            None => None,
        };

        let completed = AtomicU32::new(skipped.len() as u32);
        let executed = AtomicUsize::new(0);
        let stolen = AtomicUsize::new(0);
        // Measurement-ticket budget shared across all rounds, so
        // `max_cells` interrupts an adaptive run mid-refinement too.
        let tickets = AtomicUsize::new(self.max_cells.unwrap_or(usize::MAX));
        let quarantined: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let failures: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
        let mut rounds: u32 = 0;
        let mut remaining: usize = 0;

        std::thread::scope(|scope| {
            let sink_events = if self.observers.is_empty() {
                EventSink(None)
            } else {
                let (tx, rx) = channel::<ExperimentEvent>();
                let observers = &self.observers;
                scope.spawn(move || {
                    let mut disabled = vec![false; observers.len()];
                    for event in rx {
                        for (idx, obs) in observers.iter().enumerate() {
                            if disabled[idx] {
                                continue;
                            }
                            let outcome = catch_unwind(AssertUnwindSafe(|| obs.on_event(&event)));
                            if outcome.is_err() {
                                disabled[idx] = true;
                                eprintln!(
                                    "rigor: observer #{idx} panicked on `{}`; \
                                     disabling it for the rest of the campaign",
                                    event.name()
                                );
                            }
                        }
                    }
                });
                EventSink(Some(tx))
            };

            sink_events.send(ExperimentEvent::CampaignStarted {
                campaign: fingerprint.clone(),
                cells: total as u32,
                workers: self.workers as u32,
                arrival: self.spec.arrival.to_string(),
            });
            if self.resume {
                sink_events.send(ExperimentEvent::CampaignResumed {
                    campaign: fingerprint.clone(),
                    completed: skipped.len() as u32,
                    cells: total as u32,
                });
            }

            // Live cells: latest measurement + estimate, keyed by grid
            // index. The pilot is round 0; every later round's jobs come
            // from the plan.
            let mut estimates: BTreeMap<usize, (Cell, BenchmarkMeasurement, CellEstimate)> =
                BTreeMap::new();
            let mut jobs: Vec<(Cell, u32)> = pending.drain(..).map(|c| (c, cfg.pilot())).collect();
            let mut round: u32 = 0;
            loop {
                let outcome = run_refinement_round(
                    jobs,
                    self.workers,
                    &self.spec,
                    &self.observers,
                    &sink_events,
                    &tickets,
                    &stolen,
                    &failures,
                );
                for (cell, m) in outcome.measured {
                    let est = CellEstimate::from_measurement(cell.index, &m, &detector, confidence);
                    sink_events.send(ExperimentEvent::CellRefined {
                        cell: cell.id.canonical(),
                        index: cell.index as u32,
                        round,
                        invocations: est.invocations,
                        rel_half_width: est.rel_half_width,
                        target_met: est.target_met(target),
                    });
                    estimates.insert(cell.index, (cell, m, est));
                }
                for idx in outcome.failed {
                    // A failed re-measurement drops the cell from the
                    // campaign (recorded in `failures`); a rerun retries it.
                    estimates.remove(&idx);
                }

                // Finalize what is done: target met, or ceiling reached.
                let done: Vec<usize> = estimates
                    .iter()
                    .filter(|(_, (_, _, e))| {
                        e.target_met(target) || e.invocations >= cfg.max_invocations
                    })
                    .map(|(&i, _)| i)
                    .collect();
                for idx in done {
                    let (cell, m, est) = estimates.remove(&idx).expect("just listed");
                    spent_final += u64::from(est.invocations);
                    if !est.target_met(target) {
                        unmet_ids.push(cell.id.canonical());
                    }
                    finalize_cell(
                        &cell,
                        &m,
                        &est,
                        target,
                        total,
                        sink,
                        &writer,
                        &sink_events,
                        &completed,
                        &executed,
                        &quarantined,
                        &failures,
                    );
                }

                if !outcome.leftover.is_empty() {
                    // The ticket budget ran out mid-round: stop re-planning.
                    // Cells not yet final stay unarchived for a resume. A
                    // leftover refinement job's cell is usually already in
                    // `estimates` (measured by the pilot) — count each
                    // unfinished cell once.
                    remaining = estimates.len()
                        + outcome
                            .leftover
                            .iter()
                            .filter(|i| !estimates.contains_key(i))
                            .count();
                    break;
                }

                round += 1;
                let ests: Vec<CellEstimate> = estimates.values().map(|(_, _, e)| *e).collect();
                let plan = compute_plan(&ests, spent_final, &cfg, round);
                sink_events.send(ExperimentEvent::PlanComputed {
                    campaign: fingerprint.clone(),
                    round,
                    unmet: plan.unmet as u32,
                    tasks: plan.tasks.len() as u32,
                    planned: plan.planned,
                    spent: plan.spent,
                    budget_remaining: plan.budget_remaining,
                });
                if plan.tasks.is_empty() {
                    if plan.exhausted {
                        sink_events.send(ExperimentEvent::BudgetExhausted {
                            campaign: fingerprint.clone(),
                            round,
                            spent: plan.spent,
                            budget: cfg.budget.unwrap_or(0),
                            unmet: plan.unmet as u32,
                        });
                    }
                    // Final sweep: cells nothing more can be granted to are
                    // archived at their current size, short of target.
                    for (_, (cell, m, est)) in std::mem::take(&mut estimates) {
                        spent_final += u64::from(est.invocations);
                        if !est.target_met(target) {
                            unmet_ids.push(cell.id.canonical());
                        }
                        finalize_cell(
                            &cell,
                            &m,
                            &est,
                            target,
                            total,
                            sink,
                            &writer,
                            &sink_events,
                            &completed,
                            &executed,
                            &quarantined,
                            &failures,
                        );
                    }
                    break;
                }
                // The plan orders tasks widest CI first; dealing preserves
                // that priority across the worker deques.
                jobs = plan
                    .tasks
                    .iter()
                    .filter_map(|t| {
                        estimates
                            .get(&t.index)
                            .map(|(c, _, _)| (c.clone(), t.invocations))
                    })
                    .collect();
            }
            rounds = round;
            drop(sink_events);
        });

        Ok(CampaignReport {
            fingerprint,
            total,
            skipped: skipped.len(),
            executed: executed.into_inner(),
            stolen: stolen.into_inner(),
            quarantined: quarantined.into_inner().expect("quarantine list poisoned"),
            failures: failures.into_inner().expect("failure list poisoned"),
            remaining,
            rounds,
            invocations: spent_final,
            unmet: unmet_ids,
        })
    }
}

/// Measures one cell and streams it to the sink + journal, recording the
/// outcome in the shared campaign state. Never panics the worker: every
/// failure becomes a `failures` entry.
#[allow(clippy::too_many_arguments)]
fn execute_cell(
    cell: &Cell,
    worker: usize,
    total: usize,
    observers: &[Arc<dyn ExperimentObserver>],
    sink: &dyn CellSink,
    writer: &Option<Mutex<CampaignJournalWriter>>,
    sink_events: &EventSink,
    completed: &AtomicU32,
    executed: &AtomicUsize,
    quarantined: &Mutex<Vec<String>>,
    failures: &Mutex<Vec<(String, String)>>,
) {
    let id = cell.id.canonical();
    // The config was validated at grid expansion; a rejection here would be
    // a logic error, but record it rather than panicking a worker.
    let mut runner = match Runner::new(cell.config.clone()) {
        Ok(r) => r,
        Err(e) => {
            record_failure(failures, &id, format!("invalid config: {e}"));
            return;
        }
    };
    for obs in observers {
        runner = runner.observer(obs.clone());
    }
    let measurement = match runner.measure(&cell.workload) {
        Ok(m) => m,
        Err(e) => {
            record_failure(failures, &id, e.to_string());
            return;
        }
    };
    if measurement.quarantined {
        quarantined
            .lock()
            .expect("quarantine list poisoned")
            .push(id.clone());
    }
    let receipt = match sink.archive_cell(cell, &measurement) {
        Ok(r) => r,
        Err(e) => {
            record_failure(failures, &id, format!("sink: {e}"));
            return;
        }
    };
    if let Some(writer) = writer {
        let done = CellDone {
            index: cell.index as u32,
            id: id.clone(),
            run_id: receipt.run_id.clone(),
        };
        // Journal failures are reported, not fatal: losing the journal must
        // not lose the archived cell.
        if let Err(e) = writer
            .lock()
            .expect("journal writer poisoned")
            .append_cell(&done)
        {
            eprintln!("rigor: campaign journal write failed (cell {id}): {e}");
        }
    }
    executed.fetch_add(1, Ordering::Relaxed);
    let done_so_far = completed.fetch_add(1, Ordering::Relaxed) + 1;
    sink_events.send(ExperimentEvent::CellCompleted {
        cell: id,
        index: cell.index as u32,
        worker: worker as u32,
        run_id: receipt.run_id,
        completed: done_so_far,
        cells: total as u32,
    });
}

/// What one adaptive round's worker pool produced.
struct RoundOutcome {
    /// Successfully measured jobs, in grid-index order.
    measured: Vec<(Cell, BenchmarkMeasurement)>,
    /// Grid indices whose measurement failed (already in `failures`).
    failed: Vec<usize>,
    /// Grid indices of jobs left unscheduled because the ticket budget ran
    /// out.
    leftover: Vec<usize>,
}

/// Runs one adaptive round's jobs — (cell, sample size) pairs — on the
/// work-stealing pool: same dealing, stealing and ticket discipline as the
/// fixed path, but each job re-measures its cell at the job's own
/// invocation count and the results come back to the coordinator instead
/// of going straight to the sink.
#[allow(clippy::too_many_arguments)]
fn run_refinement_round(
    jobs: Vec<(Cell, u32)>,
    workers: usize,
    spec: &CampaignSpec,
    observers: &[Arc<dyn ExperimentObserver>],
    sink_events: &EventSink,
    tickets: &AtomicUsize,
    stolen: &AtomicUsize,
    failures: &Mutex<Vec<(String, String)>>,
) -> RoundOutcome {
    if jobs.is_empty() {
        return RoundOutcome {
            measured: Vec::new(),
            failed: Vec::new(),
            leftover: Vec::new(),
        };
    }
    let workers = workers.clamp(1, jobs.len());
    let mut deques: Vec<VecDeque<(Cell, u32)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % workers].push_back(job);
    }
    let queues: Vec<Mutex<VecDeque<(Cell, u32)>>> = deques.into_iter().map(Mutex::new).collect();
    let measured: Mutex<Vec<(Cell, BenchmarkMeasurement)>> = Mutex::new(Vec::new());
    let failed: Mutex<Vec<usize>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for me in 0..workers {
            let sink_events = sink_events.clone();
            let queues = &queues;
            let measured = &measured;
            let failed = &failed;
            scope.spawn(move || loop {
                if tickets
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                    .is_err()
                {
                    break;
                }
                let mut job = queues[me].lock().expect("queue poisoned").pop_front();
                if job.is_none() {
                    let victim = (0..queues.len())
                        .filter(|&v| v != me)
                        .map(|v| (v, queues[v].lock().expect("queue poisoned").len()))
                        .filter(|&(_, len)| len > 0)
                        .max_by_key(|&(_, len)| len)
                        .map(|(v, _)| v);
                    if let Some(v) = victim {
                        job = queues[v].lock().expect("queue poisoned").pop_back();
                        if let Some((c, _)) = &job {
                            stolen.fetch_add(1, Ordering::Relaxed);
                            sink_events.send(ExperimentEvent::CellStolen {
                                cell: c.id.canonical(),
                                index: c.index as u32,
                                from_worker: v as u32,
                                to_worker: me as u32,
                            });
                        }
                    }
                }
                let Some((cell, invocations)) = job else {
                    // Hand the unused ticket back: rounds are barriers, so
                    // each worker drains an empty queue once per round and
                    // losing a ticket each time would shrink `max_cells`.
                    tickets.fetch_add(1, Ordering::Relaxed);
                    break;
                };

                let delay = spec
                    .arrival
                    .delay(spec.base.experiment_seed, cell.index as u64);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }

                let id = cell.id.canonical();
                let config = cell.config.clone().with_invocations(invocations);
                let mut runner = match Runner::new(config) {
                    Ok(r) => r,
                    Err(e) => {
                        record_failure(failures, &id, format!("invalid config: {e}"));
                        failed
                            .lock()
                            .expect("failed list poisoned")
                            .push(cell.index);
                        continue;
                    }
                };
                for obs in observers {
                    runner = runner.observer(obs.clone());
                }
                match runner.measure(&cell.workload) {
                    Ok(m) => measured
                        .lock()
                        .expect("measured list poisoned")
                        .push((cell, m)),
                    Err(e) => {
                        record_failure(failures, &id, e.to_string());
                        failed
                            .lock()
                            .expect("failed list poisoned")
                            .push(cell.index);
                    }
                }
            });
        }
    });

    let leftover: Vec<usize> = queues
        .into_iter()
        .flat_map(|q| q.into_inner().expect("queue poisoned"))
        .map(|(cell, _)| cell.index)
        .collect();
    let mut measured = measured.into_inner().expect("measured list poisoned");
    measured.sort_by_key(|(c, _)| c.index);
    RoundOutcome {
        measured,
        failed: failed.into_inner().expect("failed list poisoned"),
        leftover,
    }
}

/// Archives a cell that reached its final adaptive state, together with its
/// precision record, then journals it and emits `cell_completed`. The cell
/// is archived under the config it actually ran at (its final sample size),
/// so the archive describes the measurement bytes exactly.
#[allow(clippy::too_many_arguments)]
fn finalize_cell(
    cell: &Cell,
    measurement: &BenchmarkMeasurement,
    est: &CellEstimate,
    target: f64,
    total: usize,
    sink: &dyn CellSink,
    writer: &Option<Mutex<CampaignJournalWriter>>,
    sink_events: &EventSink,
    completed: &AtomicU32,
    executed: &AtomicUsize,
    quarantined: &Mutex<Vec<String>>,
    failures: &Mutex<Vec<(String, String)>>,
) {
    let id = cell.id.canonical();
    if measurement.quarantined {
        quarantined
            .lock()
            .expect("quarantine list poisoned")
            .push(id.clone());
    }
    let precision = CellPrecision {
        invocations_used: est.invocations,
        rel_half_width: est.rel_half_width,
        target_rel_half_width: target,
        target_met: est.target_met(target),
    };
    let mut archived = cell.clone();
    archived.config = cell.config.clone().with_invocations(est.invocations);
    let receipt = match sink.archive_cell_precise(&archived, measurement, &precision) {
        Ok(r) => r,
        Err(e) => {
            record_failure(failures, &id, format!("sink: {e}"));
            return;
        }
    };
    if let Some(writer) = writer {
        let done = CellDone {
            index: cell.index as u32,
            id: id.clone(),
            run_id: receipt.run_id.clone(),
        };
        if let Err(e) = writer
            .lock()
            .expect("journal writer poisoned")
            .append_cell(&done)
        {
            eprintln!("rigor: campaign journal write failed (cell {id}): {e}");
        }
    }
    executed.fetch_add(1, Ordering::Relaxed);
    let done_so_far = completed.fetch_add(1, Ordering::Relaxed) + 1;
    sink_events.send(ExperimentEvent::CellCompleted {
        cell: id,
        index: cell.index as u32,
        worker: 0,
        run_id: receipt.run_id,
        completed: done_so_far,
        cells: total as u32,
    });
}

fn record_failure(failures: &Mutex<Vec<(String, String)>>, id: &str, error: String) {
    failures
        .lock()
        .expect("failure list poisoned")
        .push((id.to_string(), error));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{ArrivalProcess, ConfigVariant, MemorySink};
    use crate::config::ExperimentConfig;
    use crate::telemetry::CollectingObserver;
    use minipy::EngineKind;
    use rigor_workloads::Size;

    fn small_spec() -> CampaignSpec {
        let base = ExperimentConfig::interp()
            .with_invocations(2)
            .with_iterations(3)
            .with_size(Size::Small)
            .with_seed(11);
        CampaignSpec::new(base)
            .with_benchmarks(["sieve", "leibniz"])
            .with_engines(vec![EngineKind::Interp])
            .with_variants(vec![ConfigVariant::parse("2x3").unwrap()])
            .with_seeds(vec![11, 12])
    }

    fn journal_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "rigor-orchestrator-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn campaign_executes_every_cell_exactly_once() {
        let sink = MemorySink::new();
        let report = Campaign::new(small_spec()).workers(3).run(&sink).unwrap();
        assert_eq!(report.total, 4);
        assert_eq!(report.executed, 4);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.remaining, 0);
        assert!(report.failures.is_empty());
        assert!(report.is_complete());
        let ids: Vec<String> = sink.cells().into_iter().map(|(_, id, _)| id).collect();
        assert_eq!(
            ids,
            vec![
                "sieve/interp/2x3/11",
                "sieve/interp/2x3/12",
                "leibniz/interp/2x3/11",
                "leibniz/interp/2x3/12",
            ]
        );
    }

    #[test]
    fn worker_count_does_not_change_the_measurements() {
        let one = MemorySink::new();
        Campaign::new(small_spec()).workers(1).run(&one).unwrap();
        let four = MemorySink::new();
        Campaign::new(small_spec()).workers(4).run(&four).unwrap();
        let a = one.cells();
        let b = four.cells();
        assert_eq!(a.len(), b.len());
        for ((ia, ida, ma), (ib, idb, mb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib);
            assert_eq!(ida, idb);
            assert_eq!(
                crate::export::to_json(std::slice::from_ref(ma)).unwrap(),
                crate::export::to_json(std::slice::from_ref(mb)).unwrap(),
                "cell {ida} must measure identically under any worker count"
            );
        }
    }

    #[test]
    fn max_cells_interrupts_and_resume_completes() {
        let path = journal_path("budget");
        let sink = MemorySink::new();
        let first = Campaign::new(small_spec())
            .workers(1)
            .journal(&path)
            .max_cells(2)
            .run(&sink)
            .unwrap();
        assert_eq!(first.executed, 2);
        assert_eq!(first.remaining, 2);
        assert!(!first.is_complete());
        assert_eq!(sink.len(), 2);

        let second = Campaign::new(small_spec())
            .workers(1)
            .journal(&path)
            .resume(true)
            .run(&sink)
            .unwrap();
        assert_eq!(second.skipped, 2);
        assert_eq!(second.executed, 2);
        assert!(second.is_complete());
        assert_eq!(sink.len(), 4);

        // The resumed archive matches an uninterrupted run cell for cell.
        let clean = MemorySink::new();
        Campaign::new(small_spec()).workers(1).run(&clean).unwrap();
        for ((ia, ida, ma), (ib, idb, mb)) in sink.cells().iter().zip(&clean.cells()) {
            assert_eq!((ia, ida), (ib, idb));
            assert_eq!(
                crate::export::to_json(std::slice::from_ref(ma)).unwrap(),
                crate::export::to_json(std::slice::from_ref(mb)).unwrap()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_journal_from_another_grid() {
        let path = journal_path("mismatch");
        let sink = MemorySink::new();
        Campaign::new(small_spec())
            .journal(&path)
            .run(&sink)
            .unwrap();
        let other = small_spec().with_seeds(vec![99]);
        let err = Campaign::new(other)
            .journal(&path)
            .resume(true)
            .run(&MemorySink::new())
            .unwrap_err();
        assert!(matches!(err, CampaignError::JournalMismatch(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn campaign_events_flow_to_observers() {
        let obs = Arc::new(CollectingObserver::new());
        let sink = MemorySink::new();
        Campaign::new(small_spec())
            .workers(2)
            .observer(obs.clone())
            .run(&sink)
            .unwrap();
        let events = obs.events();
        let starts = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ExperimentEvent::CampaignStarted {
                        cells: 4,
                        workers: 2,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(starts, 1);
        let cells_done: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                ExperimentEvent::CellCompleted { completed, .. } => Some(*completed),
                _ => None,
            })
            .collect();
        assert_eq!(cells_done.len(), 4);
        assert_eq!(*cells_done.iter().max().unwrap(), 4);
        // Per-cell experiment streams ride along with campaign events.
        let experiments = events
            .iter()
            .filter(|e| matches!(e, ExperimentEvent::ExperimentFinished { .. }))
            .count();
        assert_eq!(experiments, 4);
        // No resume ⇒ no campaign_resumed.
        assert!(!events
            .iter()
            .any(|e| matches!(e, ExperimentEvent::CampaignResumed { .. })));
    }

    #[test]
    fn resumed_complete_campaign_executes_nothing() {
        let path = journal_path("noop");
        let sink = MemorySink::new();
        Campaign::new(small_spec())
            .journal(&path)
            .run(&sink)
            .unwrap();
        let obs = Arc::new(CollectingObserver::new());
        let report = Campaign::new(small_spec())
            .journal(&path)
            .resume(true)
            .observer(obs.clone())
            .run(&sink)
            .unwrap();
        assert_eq!(report.skipped, 4);
        assert_eq!(report.executed, 0);
        assert!(report.is_complete());
        assert!(obs
            .events()
            .iter()
            .any(|e| matches!(e, ExperimentEvent::CampaignResumed { completed: 4, .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arrival_pacing_still_completes_the_grid() {
        let sink = MemorySink::new();
        let spec = small_spec().with_arrival(ArrivalProcess::Uniform { mean_ms: 1.0 });
        let report = Campaign::new(spec).workers(4).run(&sink).unwrap();
        assert_eq!(report.executed, 4);
        assert_eq!(sink.len(), 4);
    }

    fn adaptive_spec(cfg: PlannerConfig) -> CampaignSpec {
        small_spec().with_planner(cfg)
    }

    fn planner() -> PlannerConfig {
        PlannerConfig::default()
            .with_target(0.05)
            .with_min_invocations(2)
            .with_max_invocations(8)
    }

    #[test]
    fn zero_workers_is_rejected() {
        let err = Campaign::new(small_spec())
            .workers(0)
            .run(&MemorySink::new())
            .unwrap_err();
        assert!(matches!(err, CampaignError::ZeroWorkers), "{err}");
    }

    #[test]
    fn invalid_planner_config_is_rejected() {
        let spec = adaptive_spec(PlannerConfig::default().with_target(0.0));
        let err = Campaign::new(spec).run(&MemorySink::new()).unwrap_err();
        assert!(matches!(err, CampaignError::Planner(_)), "{err}");
    }

    #[test]
    fn adaptive_campaign_archives_every_cell_with_precision() {
        let sink = MemorySink::new();
        let report = Campaign::new(adaptive_spec(planner()))
            .workers(2)
            .run(&sink)
            .unwrap();
        assert_eq!(report.total, 4);
        assert_eq!(report.executed, 4);
        assert!(report.is_complete());
        assert!(report.rounds >= 1);
        let precisions = sink.precisions();
        assert_eq!(precisions.len(), 4);
        let mut spent = 0u64;
        for (_, p) in &precisions {
            assert!(p.invocations_used >= 2 && p.invocations_used <= 8, "{p:?}");
            assert_eq!(p.target_rel_half_width, 0.05);
            assert_eq!(
                p.target_met,
                p.rel_half_width.is_some_and(|r| r <= 0.05),
                "{p:?}"
            );
            spent += u64::from(p.invocations_used);
        }
        assert_eq!(report.invocations, spent);
        // Unmet ids are exactly the archived cells short of target.
        let short = precisions.iter().filter(|(_, p)| !p.target_met).count();
        assert_eq!(report.unmet.len(), short);
    }

    #[test]
    fn adaptive_results_do_not_depend_on_worker_count() {
        let one = MemorySink::new();
        Campaign::new(adaptive_spec(planner()))
            .workers(1)
            .run(&one)
            .unwrap();
        let four = MemorySink::new();
        Campaign::new(adaptive_spec(planner()))
            .workers(4)
            .run(&four)
            .unwrap();
        assert_eq!(one.precisions(), four.precisions());
        for ((ia, ida, ma), (ib, idb, mb)) in one.cells().iter().zip(&four.cells()) {
            assert_eq!((ia, ida), (ib, idb));
            assert_eq!(
                crate::export::to_json(std::slice::from_ref(ma)).unwrap(),
                crate::export::to_json(std::slice::from_ref(mb)).unwrap(),
                "cell {ida} must refine identically under any worker count"
            );
        }
    }

    #[test]
    fn adaptive_interrupt_and_resume_matches_a_clean_run() {
        let path = journal_path("adaptive-resume");
        let sink = MemorySink::new();
        // Two measurement tickets interrupt the run inside the pilot round.
        let first = Campaign::new(adaptive_spec(planner()))
            .workers(1)
            .journal(&path)
            .max_cells(2)
            .run(&sink)
            .unwrap();
        assert!(!first.is_complete());
        assert!(first.remaining > 0);

        let second = Campaign::new(adaptive_spec(planner()))
            .workers(1)
            .journal(&path)
            .resume(true)
            .run(&sink)
            .unwrap();
        assert!(second.is_complete());
        assert_eq!(sink.len(), 4);

        // The converged archive — measurements and precision records —
        // matches an uninterrupted adaptive run cell for cell.
        let clean = MemorySink::new();
        Campaign::new(adaptive_spec(planner()))
            .workers(1)
            .run(&clean)
            .unwrap();
        assert_eq!(sink.precisions(), clean.precisions());
        for ((ia, ida, ma), (ib, idb, mb)) in sink.cells().iter().zip(&clean.cells()) {
            assert_eq!((ia, ida), (ib, idb));
            assert_eq!(
                crate::export::to_json(std::slice::from_ref(ma)).unwrap(),
                crate::export::to_json(std::slice::from_ref(mb)).unwrap()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn adaptive_budget_exhaustion_archives_cells_short_of_target() {
        // An unreachable target under a tiny budget: the planner squeezes
        // what it can, then the final sweep archives everything unmet.
        let cfg = PlannerConfig::default()
            .with_target(0.0001)
            .with_min_invocations(2)
            .with_max_invocations(30)
            .with_budget(12);
        let obs = Arc::new(CollectingObserver::new());
        let sink = MemorySink::new();
        let report = Campaign::new(adaptive_spec(cfg))
            .workers(2)
            .observer(obs.clone())
            .run(&sink)
            .unwrap();
        assert!(report.is_complete(), "{report:?}");
        assert!(!report.unmet.is_empty(), "{report:?}");
        assert!(report.invocations <= 12, "{report:?}");
        let events = obs.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, ExperimentEvent::PlanComputed { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, ExperimentEvent::BudgetExhausted { budget: 12, .. })));
        let refined = events
            .iter()
            .filter(|e| matches!(e, ExperimentEvent::CellRefined { .. }))
            .count();
        assert!(refined >= 4, "every cell refines at least once (pilot)");
    }

    #[test]
    fn work_stealing_fires_on_imbalanced_queues() {
        // 8 cells dealt onto 8 workers would give 1 each; instead deal onto
        // 2 queues but run 8 workers by over-asking: workers clamp to
        // pending, so force imbalance via many cells and few initial deals.
        // Simplest observable: with workers > 1 and stealing possible, a
        // campaign over enough cells records either perfectly local pops or
        // some steals — assert the accounting stays consistent either way.
        let spec = small_spec().with_seeds(vec![1, 2, 3, 4, 5, 6]);
        let obs = Arc::new(CollectingObserver::new());
        let sink = MemorySink::new();
        let report = Campaign::new(spec)
            .workers(3)
            .observer(obs.clone())
            .run(&sink)
            .unwrap();
        assert_eq!(report.executed, 12);
        let stolen_events = obs
            .events()
            .iter()
            .filter(|e| matches!(e, ExperimentEvent::CellStolen { .. }))
            .count();
        assert_eq!(report.stolen, stolen_events);
    }
}
