//! Naive-methodology emulation.
//!
//! The paper's Table-3-style experiment: run the *same* underlying data
//! through the shortcuts practitioners actually take, and quantify how often
//! and how badly they mislead relative to the rigorous verdict.

use serde::{Deserialize, Serialize};

use crate::measurement::BenchmarkMeasurement;

/// A methodology shortcut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NaiveScheme {
    /// Time a single iteration of a single fresh process (the `time python
    /// script.py` idiom): warmup, startup noise and one sample.
    SingleIteration,
    /// Best (minimum) of N iterations in one process — the `timeit` default
    /// mindset.
    BestOf(usize),
    /// Mean over all iterations of one process, warmup included.
    MeanWithWarmup,
    /// Mean over the second half of one process's iterations (warmup roughly
    /// excised) — better, but still a single process: inter-invocation
    /// variation is invisible.
    OneInvocationSteady,
}

impl NaiveScheme {
    /// Short label for tables.
    pub fn label(self) -> String {
        match self {
            NaiveScheme::SingleIteration => "single-iteration".into(),
            NaiveScheme::BestOf(n) => format!("best-of-{n}"),
            NaiveScheme::MeanWithWarmup => "mean-with-warmup".into(),
            NaiveScheme::OneInvocationSteady => "one-invocation-steady".into(),
        }
    }

    /// The scheme's point estimate of a benchmark's time, using only
    /// invocation `invocation` of the measurement (a naive experimenter runs
    /// one process).
    ///
    /// Returns `None` if the invocation does not exist or has no iterations.
    pub fn estimate(&self, m: &BenchmarkMeasurement, invocation: usize) -> Option<f64> {
        let record = m.invocations.get(invocation)?;
        let times = &record.iteration_ns;
        if times.is_empty() {
            return None;
        }
        match self {
            NaiveScheme::SingleIteration => Some(times[0]),
            NaiveScheme::BestOf(n) => times
                .iter()
                .take(*n)
                .copied()
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.min(x)))
                }),
            NaiveScheme::MeanWithWarmup => Some(times.iter().sum::<f64>() / times.len() as f64),
            NaiveScheme::OneInvocationSteady => {
                let half = &times[times.len() / 2..];
                Some(half.iter().sum::<f64>() / half.len() as f64)
            }
        }
    }

    /// The scheme's speedup estimate (baseline / candidate) from a single
    /// invocation of each side.
    pub fn speedup(
        &self,
        base: &BenchmarkMeasurement,
        cand: &BenchmarkMeasurement,
        invocation: usize,
    ) -> Option<f64> {
        let b = self.estimate(base, invocation)?;
        let c = self.estimate(cand, invocation)?;
        if c > 0.0 {
            Some(b / c)
        } else {
            None
        }
    }
}

/// All schemes evaluated in the Table-3 experiment.
pub fn all_schemes() -> Vec<NaiveScheme> {
    vec![
        NaiveScheme::SingleIteration,
        NaiveScheme::BestOf(5),
        NaiveScheme::MeanWithWarmup,
        NaiveScheme::OneInvocationSteady,
    ]
}

/// Three-way performance verdict used to score conclusions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Candidate faster (beyond the margin).
    Faster,
    /// Candidate slower (beyond the margin).
    Slower,
    /// Within the margin / not significant.
    Same,
}

/// Converts a point speedup into a verdict with a relative margin
/// (e.g. 0.05 = differences under 5% count as "same").
pub fn verdict_from_point(speedup: f64, margin: f64) -> Verdict {
    if speedup > 1.0 + margin {
        Verdict::Faster
    } else if speedup < 1.0 - margin {
        Verdict::Slower
    } else {
        Verdict::Same
    }
}

/// Converts a rigorous CI into a verdict: significance requires the CI to
/// clear 1.0 entirely.
pub fn verdict_from_ci(ci: &rigor_stats::ConfidenceInterval, margin: f64) -> Verdict {
    if ci.lower > 1.0 + margin {
        Verdict::Faster
    } else if ci.upper < 1.0 - margin {
        Verdict::Slower
    } else {
        Verdict::Same
    }
}

/// Aggregate scoring of one naive scheme against rigorous ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NaiveEvaluation {
    /// The scheme label.
    pub scheme: String,
    /// Simulated studies scored.
    pub studies: usize,
    /// Fraction of studies where the naive verdict contradicted ground truth.
    pub wrong_conclusion_rate: f64,
    /// Median |relative error| of the naive speedup vs the true speedup.
    pub median_abs_rel_error: f64,
    /// Worst |relative error| observed.
    pub max_abs_rel_error: f64,
}

/// Scores a scheme over every invocation pair as an independent "study".
///
/// `true_speedup` and `true_verdict` come from the rigorous pipeline on the
/// full measurement.
pub fn evaluate_scheme(
    scheme: NaiveScheme,
    base: &BenchmarkMeasurement,
    cand: &BenchmarkMeasurement,
    true_speedup: f64,
    true_verdict: Verdict,
    margin: f64,
) -> NaiveEvaluation {
    let n = base.n_invocations().min(cand.n_invocations());
    let mut wrong = 0usize;
    let mut errors = Vec::with_capacity(n);
    let mut studies = 0usize;
    for inv in 0..n {
        if let Some(s) = scheme.speedup(base, cand, inv) {
            studies += 1;
            if verdict_from_point(s, margin) != true_verdict {
                wrong += 1;
            }
            errors.push((s - true_speedup).abs() / true_speedup);
        }
    }
    let median = rigor_stats::median(&errors);
    let max = errors.iter().copied().fold(0.0f64, f64::max);
    NaiveEvaluation {
        scheme: scheme.label(),
        studies,
        wrong_conclusion_rate: if studies > 0 {
            wrong as f64 / studies as f64
        } else {
            f64::NAN
        },
        median_abs_rel_error: median,
        max_abs_rel_error: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::InvocationRecord;

    fn measurement(series: Vec<Vec<f64>>) -> BenchmarkMeasurement {
        BenchmarkMeasurement {
            benchmark: "x".into(),
            engine: "e".into(),
            invocations: series
                .into_iter()
                .enumerate()
                .map(|(i, iteration_ns)| InvocationRecord {
                    invocation: i as u32,
                    seed: i as u64,
                    startup_ns: 0.0,
                    iteration_ns,
                    gc_cycles: 0,
                    jit_compiles: 0,
                    deopts: 0,
                    checksum: String::new(),
                    iteration_counters: None,
                    attempts: 1,
                })
                .collect(),
            censored: Vec::new(),
            quarantined: false,
        }
    }

    #[test]
    fn scheme_estimates() {
        let m = measurement(vec![vec![100.0, 20.0, 10.0, 10.0]]);
        assert_eq!(NaiveScheme::SingleIteration.estimate(&m, 0), Some(100.0));
        assert_eq!(NaiveScheme::BestOf(4).estimate(&m, 0), Some(10.0));
        assert_eq!(NaiveScheme::BestOf(2).estimate(&m, 0), Some(20.0));
        assert_eq!(NaiveScheme::MeanWithWarmup.estimate(&m, 0), Some(35.0));
        assert_eq!(NaiveScheme::OneInvocationSteady.estimate(&m, 0), Some(10.0));
        assert_eq!(NaiveScheme::SingleIteration.estimate(&m, 3), None);
    }

    #[test]
    fn single_iteration_misjudges_jit() {
        // Baseline interp: flat 50. Candidate JIT: first iteration 200 (compile),
        // steady 10 → true speedup 5x, but iteration 1 says 0.25x ("slower!").
        let base = measurement(vec![vec![50.0; 10], vec![50.0; 10]]);
        let cand = measurement(vec![
            {
                let mut v = vec![200.0];
                v.extend(vec![10.0; 9]);
                v
            },
            {
                let mut v = vec![200.0];
                v.extend(vec![10.0; 9]);
                v
            },
        ]);
        let s = NaiveScheme::SingleIteration
            .speedup(&base, &cand, 0)
            .unwrap();
        assert!(s < 1.0, "naive single-iteration flips the conclusion: {s}");
        let steady = NaiveScheme::OneInvocationSteady
            .speedup(&base, &cand, 0)
            .unwrap();
        assert!((steady - 5.0).abs() < 0.01);
    }

    #[test]
    fn verdicts() {
        assert_eq!(verdict_from_point(1.2, 0.05), Verdict::Faster);
        assert_eq!(verdict_from_point(0.8, 0.05), Verdict::Slower);
        assert_eq!(verdict_from_point(1.02, 0.05), Verdict::Same);
        let ci = rigor_stats::ConfidenceInterval {
            estimate: 1.3,
            lower: 1.1,
            upper: 1.5,
            confidence: 0.95,
        };
        assert_eq!(verdict_from_ci(&ci, 0.05), Verdict::Faster);
        let wide = rigor_stats::ConfidenceInterval {
            estimate: 1.3,
            lower: 0.9,
            upper: 1.8,
            confidence: 0.95,
        };
        assert_eq!(verdict_from_ci(&wide, 0.05), Verdict::Same);
    }

    #[test]
    fn evaluation_scores_wrong_conclusions() {
        let base = measurement(vec![vec![50.0; 10]; 4]);
        let cand_series: Vec<Vec<f64>> = (0..4)
            .map(|_| {
                let mut v = vec![200.0];
                v.extend(vec![10.0; 9]);
                v
            })
            .collect();
        let cand = measurement(cand_series);
        let eval = evaluate_scheme(
            NaiveScheme::SingleIteration,
            &base,
            &cand,
            5.0,
            Verdict::Faster,
            0.05,
        );
        assert_eq!(eval.studies, 4);
        assert_eq!(eval.wrong_conclusion_rate, 1.0, "every study says slower");
        assert!(eval.median_abs_rel_error > 0.9);
        let eval2 = evaluate_scheme(
            NaiveScheme::OneInvocationSteady,
            &base,
            &cand,
            5.0,
            Verdict::Faster,
            0.05,
        );
        assert_eq!(eval2.wrong_conclusion_rate, 0.0);
    }

    #[test]
    fn all_schemes_have_unique_labels() {
        let labels: Vec<String> = all_schemes().iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
