//! Quickstart: measure one benchmark rigorously and print its steady-state
//! mean with a 95% confidence interval.
//!
//! Run with: `cargo run --release -p examples --bin quickstart`

use rigor::prelude::*;
use rigor::{common_steady_start, fmt_ns, precision_of};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pick a workload from the suite.
    let sieve = find("sieve").expect("sieve is in the suite");
    println!("benchmark : {} — {}", sieve.name, sieve.description);

    // Design the experiment: 10 fresh VM invocations x 20 iterations each.
    let config = ExperimentConfig::interp()
        .with_invocations(10)
        .with_iterations(20)
        .with_size(Size::Default)
        .with_seed(42);

    // Measure. Every per-iteration virtual time is recorded.
    let measurement = Runner::new(config.clone())?.measure(&sieve)?;
    println!(
        "measured  : {} invocations x {} iterations",
        measurement.n_invocations(),
        measurement.n_iterations()
    );

    // Detect steady state per invocation and find the common steady window.
    let detector = SteadyStateDetector::default();
    let steady_start = common_steady_start(measurement.series(), &detector)
        .expect("the interpreter reaches steady state");
    println!("steady    : from iteration {steady_start}");

    // The rigorous answer: a confidence interval over per-invocation means.
    let (ci, rel) = precision_of(&measurement, &detector, 0.95);
    let ci = ci.expect("enough invocations for a CI");
    println!(
        "result    : {} [{}, {}] at 95% confidence (+/-{:.2}%)",
        fmt_ns(ci.estimate),
        fmt_ns(ci.lower),
        fmt_ns(ci.upper),
        rel.unwrap_or(f64::NAN) * 100.0
    );
    Ok(())
}
