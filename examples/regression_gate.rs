//! The results archive + regression gate, end to end and fully offline:
//! archive runs into a content-addressed store, pool a multi-run baseline,
//! and gate a new measurement against it with multiple-comparison-corrected
//! significance — the API behind `rigor archive` / `rigor history` /
//! `rigor check`.
//!
//! Run with: `cargo run --release -p examples --bin regression_gate`

use rigor::prelude::*;
use rigor::{check_regressions, pool_measurements, GatePolicy, GateStatus};
use rigor_store::{BaselineRef, Store};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("rigor-gate-example-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // --- Phase 1: archive a few baseline runs ----------------------------
    // Each append writes one fsynced, hash-protected JSONL record; the id
    // is the content hash of the run's canonical payload.
    let cfg = ExperimentConfig::interp()
        .with_invocations(6)
        .with_iterations(20)
        .with_size(Size::Small)
        .with_seed(17);
    let workloads = ["sieve", "leibniz"];
    let mut store = Store::open(&dir)?;
    for label in ["monday", "tuesday", "wednesday"] {
        let mut measurements = Vec::new();
        for name in workloads {
            let w = find(name).expect("in the suite");
            measurements.push(Runner::new(cfg.clone())?.measure(&w)?);
        }
        let run = store.append(Some(label.into()), &cfg, measurements)?;
        println!(
            "archived {} (seq {}, label {label}) — deterministic content id",
            run.short_id(),
            run.seq
        );
    }
    let report = store.verify()?;
    println!(
        "integrity: {} records intact, clean = {}\n",
        report.intact,
        report.is_clean()
    );

    // --- Phase 2: gate an unchanged engine against the pooled baseline ---
    let baseline = BaselineRef::parse("last-3").select(&store)?;
    let slices: Vec<&[BenchmarkMeasurement]> =
        baseline.iter().map(|r| r.measurements.as_slice()).collect();
    let pooled = pool_measurements(&slices);
    let mut current = Vec::new();
    for name in workloads {
        let w = find(name).expect("in the suite");
        current.push(Runner::new(cfg.clone())?.measure(&w)?);
    }
    let policy = GatePolicy::default(); // BH correction, q = 0.05, 0% tolerance
    let verdict = check_regressions(&pooled, &current, &SteadyStateDetector::default(), &policy);
    println!("unchanged engine vs pooled last-3 baseline:");
    for g in &verdict.benchmarks {
        println!("  {:<10} {}", g.benchmark, g.status.name());
    }
    assert!(verdict.passed(), "a deterministic re-run must gate clean");

    // --- Phase 3: a deliberate slowdown must be caught --------------------
    // The interpreter standing in for "someone broke the JIT".
    let jit_cfg = ExperimentConfig::jit()
        .with_invocations(6)
        .with_iterations(20)
        .with_size(Size::Small)
        .with_seed(17);
    let mut fast = Vec::new();
    for name in workloads {
        let w = find(name).expect("in the suite");
        fast.push(Runner::new(jit_cfg.clone())?.measure(&w)?);
    }
    let slowdown = check_regressions(&fast, &current, &SteadyStateDetector::default(), &policy);
    println!("\ninterpreter gated against a JIT baseline:");
    for g in &slowdown.benchmarks {
        let change = g
            .change_frac()
            .map(|c| format!("{:+.0}%", c * 100.0))
            .unwrap_or_default();
        let p = g.p_adjusted.map(|p| format!("{p:.3}")).unwrap_or_default();
        println!(
            "  {:<10} {:<10} change {change:>7}  corrected p {p}",
            g.benchmark,
            g.status.name()
        );
        assert_eq!(g.status, GateStatus::Regressed);
    }
    assert!(!slowdown.passed());

    // --- Phase 4: retention ------------------------------------------------
    let compaction = store.compact(Some(2))?;
    println!(
        "\ncompacted: kept {} of {} runs, {} -> {} bytes",
        compaction.kept,
        compaction.kept + compaction.dropped,
        compaction.bytes_before,
        compaction.bytes_after
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
