//! Bring your own benchmark: write a MiniPy workload inline, validate it on
//! both engines, characterize it, and measure it rigorously.
//!
//! Run with: `cargo run --release -p examples --bin custom_workload`

use minipy::{check_engines_agree, Session, VmConfig};
use rigor::prelude::*;
use rigor::{fmt_ns, precision_of};

/// Collatz trajectory lengths — any module defining `run()` is a workload.
const SOURCE: &str = "\
LIMIT = 600

def collatz_len(n):
    steps = 0
    while n != 1:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps = steps + 1
    return steps

def run():
    longest = 0
    total = 0
    n = 2
    while n < LIMIT:
        l = collatz_len(n)
        total = total + l
        if l > longest:
            longest = l
        n = n + 1
    return longest * 1000000 + total
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Sanity: both engines must compute the same checksum.
    let checksum = check_engines_agree(SOURCE, 1)?;
    println!("checksum (both engines agree): {checksum}");

    // 2. Peek at one session's dynamic profile.
    let mut session = Session::start(SOURCE, 1, VmConfig::interp())?;
    let iter = session.run_iteration()?;
    println!(
        "one interp iteration: {} ({} bytecodes, {} calls)",
        fmt_ns(iter.virtual_ns),
        iter.counters.total_ops,
        iter.counters.calls
    );

    // 3. Measure rigorously on both engines.
    let det = SteadyStateDetector::default();
    for cfg in [
        ExperimentConfig::interp()
            .with_invocations(8)
            .with_iterations(20)
            .with_seed(5),
        ExperimentConfig::jit()
            .with_invocations(8)
            .with_iterations(20)
            .with_seed(5),
    ] {
        let engine = cfg.engine.name();
        let m = Runner::new(cfg.clone())?.measure_source(SOURCE, "collatz")?;
        let (ci, _) = precision_of(&m, &det, 0.95);
        match ci {
            Some(ci) => println!(
                "{engine:>7}: steady mean {} [{}, {}]",
                fmt_ns(ci.estimate),
                fmt_ns(ci.lower),
                fmt_ns(ci.upper)
            ),
            None => println!("{engine:>7}: no steady state reached"),
        }
    }
    Ok(())
}
