//! Warmup analysis: per-iteration curves, steady-state detection under
//! multiple detectors, and warmup classification for one benchmark on the
//! JIT engine.
//!
//! Run with: `cargo run --release -p examples --bin warmup_analysis`

use rigor::prelude::*;
use rigor::{fmt_ns, sparkline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = find("spectral").expect("in the suite");
    let cfg = ExperimentConfig::jit()
        .with_invocations(5)
        .with_iterations(50)
        .with_size(Size::Default)
        .with_seed(11);
    let m = Runner::new(cfg.clone())?.measure(&w)?;

    println!("{} on the JIT engine — per-invocation series:\n", w.name);
    let classifier = WarmupClassifier::default();
    for (i, series) in m.series().enumerate() {
        let class = classifier.classify(series);
        println!(
            "invocation {i}: {}  first={} last={}  class={}",
            sparkline(series),
            fmt_ns(series[0]),
            fmt_ns(*series.last().expect("non-empty")),
            class.label()
        );
    }

    println!("\nsteady-state starts per detector (max across invocations):");
    for det in [
        SteadyStateDetector::cov_window(),
        SteadyStateDetector::changepoint(),
        SteadyStateDetector::robust_tail(),
    ] {
        let start = rigor::common_steady_start(m.series(), &det);
        println!(
            "  {:<12} {}",
            det.name(),
            match start {
                Some(s) => format!("iteration {s}"),
                None => "never".to_string(),
            }
        );
    }

    // What ignoring warmup would cost: mean over all iterations vs steady tail.
    let det = SteadyStateDetector::default();
    if let Some(start) = rigor::common_steady_start(m.series(), &det) {
        let all = rigor_stats::mean(&m.all_means());
        let steady = rigor_stats::mean(&m.tail_means(start));
        println!(
            "\nmean including warmup: {}   steady-state mean: {}   bias: {:+.1}%",
            fmt_ns(all),
            fmt_ns(steady),
            (all / steady - 1.0) * 100.0
        );
    }
    Ok(())
}
