//! Methodology pitfalls, demonstrated: what each popular shortcut concludes
//! about "is the JIT faster?" versus the rigorous answer.
//!
//! Run with: `cargo run --release -p examples --bin methodology_pitfalls`

use rigor::prelude::*;
use rigor::{all_schemes, verdict_from_ci, Verdict};

fn verdict_label(v: Verdict) -> &'static str {
    match v {
        Verdict::Faster => "JIT faster",
        Verdict::Slower => "JIT slower(!)",
        Verdict::Same => "no difference",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // dict_churn: the JIT's compile pause makes its *first* iteration slower
    // than the interpreter's, so single-shot timing flips the conclusion.
    let w = find("dict_churn").expect("in the suite");
    let interp_cfg = ExperimentConfig::interp()
        .with_invocations(12)
        .with_iterations(30)
        .with_size(Size::Default)
        .with_seed(3);
    let jit_cfg = ExperimentConfig::jit()
        .with_invocations(12)
        .with_iterations(30)
        .with_size(Size::Default)
        .with_seed(3);
    let base = Runner::new(interp_cfg.clone())?.measure(&w)?;
    let cand = Runner::new(jit_cfg.clone())?.measure(&w)?;

    let truth = compare(&base, &cand, &SteadyStateDetector::default(), 0.95)?;
    println!(
        "rigorous ground truth for {}: {:.2}x [{:.2}, {:.2}] → {}\n",
        w.name,
        truth.speedup.estimate,
        truth.speedup.lower,
        truth.speedup.upper,
        verdict_label(verdict_from_ci(&truth.speedup, 0.05))
    );

    let mut table = Table::new(vec![
        "methodology",
        "speedup estimate",
        "conclusion",
        "error vs truth",
    ]);
    for scheme in all_schemes() {
        // A naive experimenter runs one process: use invocation 0.
        let estimate = scheme.speedup(&base, &cand, 0).expect("has data");
        let verdict = rigor::verdict_from_point(estimate, 0.05);
        table.row(vec![
            scheme.label(),
            format!("{estimate:.2}x"),
            verdict_label(verdict).to_string(),
            format!("{:+.1}%", (estimate / truth.speedup.estimate - 1.0) * 100.0),
        ]);
    }
    table.row(vec![
        "rigorous (this library)".to_string(),
        format!("{:.2}x", truth.speedup.estimate),
        verdict_label(verdict_from_ci(&truth.speedup, 0.05)).to_string(),
        "ground truth".to_string(),
    ]);
    println!("{table}");
    println!("NaiveScheme::SingleIteration times the JIT compiler, not the program.");
    Ok(())
}
