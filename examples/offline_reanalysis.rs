//! Measure once, analyze many times: export measurements to JSON, then
//! re-analyze them offline — different detectors, different confidence
//! levels — without re-running a single VM invocation. This is the workflow
//! that makes expensive measurement campaigns reusable.
//!
//! Run with: `cargo run --release -p examples --bin offline_reanalysis`

use rigor::prelude::*;
use rigor::{from_json, to_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Phase 1: the (expensive) measurement campaign -------------------
    let w = find("sieve").expect("in the suite");
    let interp = Runner::new(
        ExperimentConfig::interp()
            .with_invocations(10)
            .with_iterations(25)
            .with_seed(21),
    )?
    .measure(&w)?;
    let jit = Runner::new(
        ExperimentConfig::jit()
            .with_invocations(10)
            .with_iterations(25)
            .with_seed(21),
    )?
    .measure(&w)?;
    let archive = to_json(&[interp, jit])?;
    println!(
        "archived {} bytes of raw measurements (normally written to disk)\n",
        archive.len()
    );

    // --- Phase 2: offline re-analysis, possibly much later ----------------
    let measurements = from_json(&archive)?;
    let (interp, jit) = (&measurements[0], &measurements[1]);
    println!(
        "loaded: {} on {} and {} ({} invocations x {} iterations each)\n",
        interp.benchmark,
        interp.engine,
        jit.engine,
        interp.n_invocations(),
        interp.n_iterations()
    );

    // The same data under every detector:
    for detector in [
        SteadyStateDetector::cov_window(),
        SteadyStateDetector::changepoint(),
        SteadyStateDetector::robust_tail(),
    ] {
        match compare(interp, jit, &detector, 0.95) {
            Ok(r) => println!(
                "{:<12} speedup {:.2}x [{:.2}, {:.2}] (steady from interp:{} / jit:{})",
                detector.name(),
                r.speedup.estimate,
                r.speedup.lower,
                r.speedup.upper,
                r.base_steady_start,
                r.cand_steady_start
            ),
            Err(e) => println!("{:<12} {e}", detector.name()),
        }
    }

    // ... and at different confidence levels:
    println!();
    for confidence in [0.90, 0.95, 0.99] {
        let r = compare(interp, jit, &SteadyStateDetector::default(), confidence)?;
        println!(
            "{:.0}% CI: [{:.3}, {:.3}] (half-width {:.3})",
            confidence * 100.0,
            r.speedup.lower,
            r.speedup.upper,
            r.speedup.half_width()
        );
    }
    Ok(())
}
