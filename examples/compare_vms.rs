//! Rigorous VM comparison: interpreter vs JIT across a suite subset, with
//! per-benchmark speedup CIs and the geometric-mean summary — a miniature of
//! the paper's headline experiment.
//!
//! Run with: `cargo run --release -p examples --bin compare_vms`

use rigor::fmt_ci;
use rigor::prelude::*;

const BENCHMARKS: [&str; 6] = [
    "leibniz",
    "sieve",
    "fib_recursive",
    "dict_churn",
    "word_count",
    "startup_heavy",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let interp_cfg = ExperimentConfig::interp()
        .with_invocations(10)
        .with_iterations(25)
        .with_size(Size::Default)
        .with_seed(7);
    let jit_cfg = ExperimentConfig::jit()
        .with_invocations(10)
        .with_iterations(25)
        .with_size(Size::Default)
        .with_seed(7);

    let mut pairs = Vec::new();
    for name in BENCHMARKS {
        let w = find(name).expect("known benchmark");
        println!("measuring {name} on both engines ...");
        pairs.push((
            Runner::new(interp_cfg.clone())?.measure(&w)?,
            Runner::new(jit_cfg.clone())?.measure(&w)?,
        ));
    }

    let suite = compare_suite(&pairs, &SteadyStateDetector::default(), 0.95);
    let mut table = Table::new(vec!["benchmark", "JIT speedup [95% CI]", "significant"]);
    for r in &suite.per_benchmark {
        table.row(vec![
            r.benchmark.clone(),
            fmt_ci(&r.speedup),
            if r.significant { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("\n{table}");
    for (name, err) in &suite.failures {
        println!("not converged: {name}: {err}");
    }
    if let Some(g) = &suite.geomean {
        println!("geometric-mean speedup: {}", fmt_ci(g));
    }
    Ok(())
}
