//! The adaptive precision planner, self-applied: run the full-registry
//! suite on both engines as an adaptive campaign (pilot, then
//! variance-proportional refinement) and compare the invocations it spends
//! against the fixed-n design that guarantees the same worst-case
//! precision — every cell at the largest n any cell needed.
//!
//! Run with: `cargo run --release -p examples --bin adaptive_planner`
//!
//! With `BLESS=1` it also rewrites `BENCH_planner.json` — the committed
//! artifact CI gates with `rigor check --baseline-json`: the interpreter
//! cells' measurements under a `schema_version` envelope, plus a `planner`
//! object recording the fixed-vs-adaptive invocation comparison.

use rigor::campaign::MemorySink;
use rigor::prelude::*;
use rigor::PlannerConfig;
use serde::json::JsonValue;
use serde::Serialize;

/// The precision target the comparison is run at (±2%, the paper's
/// reporting convention).
const TARGET: f64 = 0.02;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = ExperimentConfig::interp()
        .with_invocations(3)
        .with_iterations(8)
        .with_size(Size::Small);
    let planner = PlannerConfig::default()
        .with_target(TARGET)
        .with_min_invocations(3)
        .with_max_invocations(12);
    let benchmarks: Vec<String> = suite().iter().map(|w| w.name.to_string()).collect();
    let spec = CampaignSpec::new(base)
        .with_benchmarks(benchmarks)
        .with_engines(vec![
            minipy::EngineKind::Interp,
            minipy::EngineKind::Jit(minipy::JitConfig::default()),
        ])
        .with_planner(planner);

    let sink = MemorySink::default();
    let report = Campaign::new(spec).workers(4).run(&sink)?;
    assert!(report.is_complete());
    assert!(report.failures.is_empty(), "{:?}", report.failures);

    // Per-cell attainment, in grid order.
    let mut cells = sink.cells();
    cells.sort_by_key(|(index, _, _)| *index);
    let mut precisions = sink.precisions();
    precisions.sort_by_key(|(index, _)| *index);
    let mut table = Table::new(vec!["cell", "final n", "achieved +/-", "met"]);
    let mut max_n = 0u32;
    for ((_, label, _), (_, p)) in cells.iter().zip(&precisions) {
        max_n = max_n.max(p.invocations_used);
        table.row(vec![
            label.clone(),
            p.invocations_used.to_string(),
            p.rel_half_width
                .map_or("no CI".to_string(), |rel| format!("{:.2}%", rel * 100.0)),
            if p.target_met {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!("{table}");

    // The comparison the planner exists for: a fixed design reaching the
    // same worst-case precision must run *every* cell at the largest n
    // any cell needed.
    let adaptive: u64 = report.invocations;
    let fixed: u64 = u64::from(max_n) * precisions.len() as u64;
    let unmet = report.unmet.len();
    println!(
        "adaptive: {adaptive} invocation(s) over {} round(s); fixed-n equivalent \
         ({} cells x n={max_n}): {fixed}; saved {} ({:.0}%); {unmet} cell(s) \
         short of +/-{:.0}% at the n={} ceiling",
        report.rounds,
        precisions.len(),
        fixed - adaptive,
        (1.0 - adaptive as f64 / fixed as f64) * 100.0,
        TARGET * 100.0,
        planner.max_invocations,
    );
    assert!(
        adaptive < fixed,
        "adaptive allocation must beat the fixed design ({adaptive} vs {fixed})"
    );

    if std::env::var_os("BLESS").is_some() {
        // The gateable baseline: interpreter cells only (`rigor check`
        // matches by benchmark name and measures one engine per run).
        let measurements: Vec<&BenchmarkMeasurement> = cells
            .iter()
            .filter(|(_, label, _)| label.contains("/interp/"))
            .map(|(_, _, m)| m)
            .collect();
        let envelope = JsonValue::Object(vec![
            ("schema_version".into(), 1u32.to_value()),
            (
                "planner".into(),
                JsonValue::Object(vec![
                    ("target_rel_half_width".into(), TARGET.to_value()),
                    ("cells".into(), (precisions.len() as u64).to_value()),
                    ("adaptive_invocations".into(), adaptive.to_value()),
                    ("fixed_equivalent_invocations".into(), fixed.to_value()),
                    ("max_cell_invocations".into(), max_n.to_value()),
                    ("unmet_cells".into(), (unmet as u64).to_value()),
                ]),
            ),
            ("measurements".into(), measurements.to_value()),
        ]);
        std::fs::write(
            "BENCH_planner.json",
            serde_json::to_string_pretty(&Raw(envelope))?,
        )?;
        println!(
            "wrote BENCH_planner.json ({} interp measurement(s))",
            measurements.len()
        );
    }
    Ok(())
}

// The vendored serde has no blanket `Serialize` on its own value type.
struct Raw(JsonValue);

impl Serialize for Raw {
    fn to_value(&self) -> JsonValue {
        self.0.clone()
    }
}
