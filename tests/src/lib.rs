//! Integration-test support crate.
//!
//! The actual integration tests live in `tests/tests/*.rs`; this library only
//! hosts small shared helpers for them.

/// Builds a deterministic experiment seed for integration tests.
///
/// Keeping the seed derivation in one place means every integration test that
/// wants reproducible output agrees on the same seeding scheme.
pub fn test_seed(case: &str) -> u64 {
    // FNV-1a over the case name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in case.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::test_seed;

    #[test]
    fn seed_is_deterministic() {
        assert_eq!(test_seed("abc"), test_seed("abc"));
        assert_ne!(test_seed("abc"), test_seed("abd"));
    }
}
