//! Golden-file test of the CSV export format: `to_csv` must keep writing
//! byte-identical output for a fixed measurement set (the golden fixture is
//! what downstream tooling parses), and `from_csv` must round-trip it —
//! including the attempts and status columns added with fault tolerance.
//!
//! Regenerate the fixture after a *deliberate* format change with:
//! `BLESS=1 cargo test -p integration-tests --test export_csv`.

use std::fs;
use std::path::PathBuf;

use rigor::measurement::{
    BenchmarkMeasurement, CensoredInvocation, FailureKind, InvocationRecord, IterationCounters,
};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/golden_export.csv")
}

/// A fixed measurement set exercising every CSV feature: per-iteration
/// counters, a retried invocation, censored invocations, and a benchmark
/// recorded without counters (the pre-counter format).
fn fixture() -> Vec<BenchmarkMeasurement> {
    let counters = |gc, jit, deopts| IterationCounters {
        gc_cycles: gc,
        jit_compiles: jit,
        deopts,
    };
    vec![
        BenchmarkMeasurement {
            benchmark: "sieve".into(),
            engine: "jit".into(),
            invocations: vec![
                InvocationRecord {
                    invocation: 0,
                    seed: 101,
                    startup_ns: 1500.0,
                    iteration_ns: vec![220.5, 210.0, 209.75],
                    gc_cycles: 3,
                    jit_compiles: 2,
                    deopts: 1,
                    checksum: "1028".into(),
                    iteration_counters: Some(vec![
                        counters(2, 2, 1),
                        counters(1, 0, 0),
                        counters(0, 0, 0),
                    ]),
                    attempts: 1,
                },
                InvocationRecord {
                    invocation: 2,
                    seed: 103,
                    startup_ns: 1480.0,
                    iteration_ns: vec![219.0, 211.25, 208.5],
                    gc_cycles: 2,
                    jit_compiles: 1,
                    deopts: 0,
                    checksum: "1028".into(),
                    iteration_counters: Some(vec![
                        counters(1, 1, 0),
                        counters(1, 0, 0),
                        counters(0, 0, 0),
                    ]),
                    attempts: 3,
                },
            ],
            censored: vec![CensoredInvocation {
                invocation: 1,
                attempts: 2,
                failure: FailureKind::Timeout,
                error: "deadline exceeded".into(),
            }],
            quarantined: false,
        },
        BenchmarkMeasurement {
            benchmark: "nbody".into(),
            engine: "interp".into(),
            invocations: vec![InvocationRecord {
                invocation: 0,
                seed: 7,
                startup_ns: 900.0,
                iteration_ns: vec![5000.0, 4999.5],
                gc_cycles: 0,
                jit_compiles: 0,
                deopts: 0,
                checksum: "-3".into(),
                iteration_counters: None,
                attempts: 1,
            }],
            censored: Vec::new(),
            quarantined: false,
        },
    ]
}

#[test]
fn csv_export_matches_the_golden_file() {
    let actual = rigor::to_csv(&fixture());
    if std::env::var_os("BLESS").is_some() {
        fs::write(golden_path(), &actual).expect("bless golden fixture");
    }
    let expected = fs::read_to_string(golden_path())
        .expect("golden fixture missing — regenerate with BLESS=1");
    assert_eq!(
        actual, expected,
        "to_csv output drifted from the golden fixture; if the format \
         change is deliberate, regenerate with BLESS=1"
    );
}

#[test]
fn golden_file_roundtrips_through_from_csv() {
    let text = fs::read_to_string(golden_path()).expect("golden fixture");
    let parsed = rigor::from_csv(&text).expect("golden fixture parses");
    // Byte-identical re-serialization: timings, seeds, attempts, censoring
    // and the counters-vs-no-counters split all survive.
    assert_eq!(rigor::to_csv(&parsed), text);
    // Structural spot checks, including the columns fault tolerance added.
    assert_eq!(parsed.len(), 2);
    assert_eq!(parsed[0].benchmark, "sieve");
    assert_eq!(parsed[0].invocations[1].attempts, 3);
    assert_eq!(parsed[0].censored.len(), 1);
    assert_eq!(parsed[0].censored[0].failure, FailureKind::Timeout);
    assert_eq!(parsed[0].censored[0].attempts, 2);
    assert!(parsed[1].invocations[0].iteration_counters.is_none());
}

#[test]
fn live_measurement_roundtrips_through_csv() {
    let cfg = rigor::ExperimentConfig::interp()
        .with_invocations(2)
        .with_iterations(5)
        .with_size(rigor_workloads::Size::Small)
        .with_seed(3);
    let w = rigor_workloads::find("sieve").expect("sieve in suite");
    let m = rigor::Runner::new(cfg)
        .expect("valid config")
        .measure(&w)
        .expect("measure");
    let csv = rigor::to_csv(std::slice::from_ref(&m));
    let parsed = rigor::from_csv(&csv).expect("parse own export");
    assert_eq!(rigor::to_csv(&parsed), csv);
    assert_eq!(parsed[0].invocations.len(), m.invocations.len());
    assert_eq!(
        parsed[0].invocations[0].iteration_ns,
        m.invocations[0].iteration_ns
    );
}
