//! Robustness fuzzing of the MiniPy front end: the lexer, parser and
//! compiler must return errors — never panic — on arbitrary input, and the
//! VM must stay inside its error taxonomy on arbitrary-but-parseable input.
//!
//! The differential fuzz bridge at the bottom feeds the same generated
//! programs through both engines: any checksum divergence fails the test
//! and (with `BLESS=1`) is saved under `fixtures/fuzz_regressions/` so the
//! minimized case re-runs forever as a committed regression fixture.

use minipy::{compile, parse, JitConfig, JitMode, Session, VmConfig};
use proptest::prelude::*;
use rigor_workloads::random_program;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (as a string) never panics the pipeline.
    #[test]
    fn arbitrary_strings_never_panic(src in ".{0,200}") {
        let _ = parse(&src);
        let _ = compile(&src);
    }

    /// Strings built from MiniPy's own alphabet — much more likely to get
    /// deep into the parser — still never panic.
    #[test]
    fn minipy_flavoured_soup_never_panics(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "def ", "return ", "if ", "else:", "elif ", "while ", "for ",
                "in ", "break", "continue", "pass", "and ", "or ", "not ",
                "x", "y", "f", "run", "0", "1", "2.5", "'s'", "(", ")", "[",
                "]", "{", "}", ":", ",", ".", " + ", " - ", " * ", " / ",
                " // ", " % ", " ** ", " = ", " == ", " < ", "\n", "\n    ",
                "\n        ", "lambda", "global ", "del ",
            ]),
            0..40,
        )
    ) {
        let src: String = tokens.concat();
        let _ = parse(&src);
        let _ = compile(&src);
    }

    /// Everything that compiles either runs to completion or raises a
    /// classified runtime error — never an internal error, never a panic.
    #[test]
    fn compiled_soup_runs_or_raises_cleanly(
        stmts in prop::collection::vec(
            prop::sample::select(vec![
                "x = 1",
                "x = x + 1",
                "y = [1, 2, 3]",
                "y = y[x]",
                "z = {}",
                "z[x] = y",
                "x = x / (x - 1)",
                "x = unknown",
                "x = y.pop()",
                "x = len(z)",
                "x = int('nope')",
                "x = 2 ** 62 * 4",
            ]),
            1..12,
        )
    ) {
        let src: String = stmts.iter().map(|s| format!("{s}\n")).collect();
        if compile(&src).is_ok() {
            let mut cfg = VmConfig::interp();
            cfg.time_budget_ns = Some(1.0e8);
            match Session::start(&src, 1, cfg) {
                Ok(_) => {}
                Err(e) => {
                    // Must be a classified runtime error, not an internal one.
                    let kind = e.runtime_kind().expect("runtime error expected");
                    prop_assert_ne!(kind, minipy::RuntimeErrorKind::Internal, "{}", e);
                }
            }
        }
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow_the_parser() {
    // 300 nested parens/brackets: either parses or errors, no stack overflow.
    let mut src = String::from("x = ");
    for _ in 0..300 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..300 {
        src.push(')');
    }
    src.push('\n');
    let _ = compile(&src);
}

#[test]
fn pathological_indentation() {
    let mut src = String::new();
    for depth in 0..60 {
        src.push_str(&" ".repeat(depth * 4));
        src.push_str("if 1:\n");
    }
    src.push_str(&" ".repeat(60 * 4));
    src.push_str("pass\n");
    let _ = compile(&src);
}

#[test]
fn long_lines_and_many_constants() {
    let terms: Vec<String> = (0..2000).map(|i| i.to_string()).collect();
    let src = format!("x = {}\n", terms.join(" + "));
    let program = compile(&src).expect("long sums compile");
    assert!(program.total_ops() > 2000);
}

// ---------------------------------------------------------------------------
// Differential fuzz bridge: generated programs through both engines.
// ---------------------------------------------------------------------------

/// Directory of committed divergence regression fixtures.
fn fuzz_fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/fuzz_regressions")
}

/// Runs `src` on the interpreter and an eagerly-compiling JIT, comparing
/// rendered checksums across two iterations. Returns the divergence
/// message, or `None` when the engines agree.
fn engines_diverge(src: &str, seed: u64) -> Option<String> {
    let eager = VmConfig {
        engine: minipy::EngineKind::Jit(JitConfig {
            hot_threshold: 10,
            max_guard_failures: 2,
            mode: JitMode::Full,
        }),
        ..VmConfig::default()
    };
    let run = |cfg: VmConfig| -> Result<Vec<String>, minipy::MpError> {
        let mut s = Session::start(src, seed, cfg)?;
        (0..2)
            .map(|_| s.run_iteration().map(|r| s.render(r.value)))
            .collect()
    };
    match (run(VmConfig::interp()), run(eager)) {
        (Ok(a), Ok(b)) if a == b => None,
        (Ok(a), Ok(b)) => Some(format!("interp={a:?} jit={b:?}")),
        // Both engines failing identically is agreement; one succeeding
        // while the other fails is the worst kind of divergence.
        (Err(a), Err(b)) if a.to_string() == b.to_string() => None,
        (a, b) => Some(format!("interp={a:?} jit={b:?}")),
    }
}

/// Saves a divergent program as a regression fixture when `BLESS=1`, so a
/// fuzzing discovery is captured as a permanent test case instead of a
/// flaky seed-dependent failure.
fn save_divergence(src: &str, seed: u64) {
    if std::env::var("BLESS").is_ok_and(|v| v == "1") {
        let dir = fuzz_fixture_dir();
        std::fs::create_dir_all(&dir).expect("fixture dir");
        let path = dir.join(format!("divergence_seed_{seed}.mp"));
        std::fs::write(&path, src).expect("write fixture");
        eprintln!("saved divergence fixture: {}", path.display());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bridge proper: synthesized programs (a disjoint seed range from
    /// the engine_equivalence sweep) must checksum identically on both
    /// engines. A hit is recorded as a committed fixture via `BLESS=1`.
    #[test]
    fn generated_programs_never_diverge_across_engines(seed in 5000u64..9000) {
        let src = random_program(seed);
        if let Some(msg) = engines_diverge(&src, seed) {
            save_divergence(&src, seed);
            prop_assert!(false, "divergence for seed {}: {}\n{}", seed, msg, src);
        }
    }
}

/// Every committed divergence fixture re-runs on both engines forever:
/// once a fuzzing discovery is fixed, it stays fixed.
#[test]
fn committed_fuzz_regressions_stay_fixed() {
    let dir = fuzz_fixture_dir();
    let mut fixtures: Vec<_> = std::fs::read_dir(&dir)
        .expect("fuzz_regressions directory is committed")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "mp"))
        .collect();
    fixtures.sort();
    assert!(
        !fixtures.is_empty(),
        "no fixtures in {} — the harness must always have cases to re-run",
        dir.display()
    );
    for path in fixtures {
        let src = std::fs::read_to_string(&path).expect("read fixture");
        for seed in [1u64, 7, 1234] {
            if let Some(msg) = engines_diverge(&src, seed) {
                panic!(
                    "regression fixture {} diverged again (seed {seed}): {msg}",
                    path.display()
                );
            }
        }
    }
}
