//! Robustness fuzzing of the MiniPy front end: the lexer, parser and
//! compiler must return errors — never panic — on arbitrary input, and the
//! VM must stay inside its error taxonomy on arbitrary-but-parseable input.

use minipy::{compile, parse, Session, VmConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (as a string) never panics the pipeline.
    #[test]
    fn arbitrary_strings_never_panic(src in ".{0,200}") {
        let _ = parse(&src);
        let _ = compile(&src);
    }

    /// Strings built from MiniPy's own alphabet — much more likely to get
    /// deep into the parser — still never panic.
    #[test]
    fn minipy_flavoured_soup_never_panics(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "def ", "return ", "if ", "else:", "elif ", "while ", "for ",
                "in ", "break", "continue", "pass", "and ", "or ", "not ",
                "x", "y", "f", "run", "0", "1", "2.5", "'s'", "(", ")", "[",
                "]", "{", "}", ":", ",", ".", " + ", " - ", " * ", " / ",
                " // ", " % ", " ** ", " = ", " == ", " < ", "\n", "\n    ",
                "\n        ", "lambda", "global ", "del ",
            ]),
            0..40,
        )
    ) {
        let src: String = tokens.concat();
        let _ = parse(&src);
        let _ = compile(&src);
    }

    /// Everything that compiles either runs to completion or raises a
    /// classified runtime error — never an internal error, never a panic.
    #[test]
    fn compiled_soup_runs_or_raises_cleanly(
        stmts in prop::collection::vec(
            prop::sample::select(vec![
                "x = 1",
                "x = x + 1",
                "y = [1, 2, 3]",
                "y = y[x]",
                "z = {}",
                "z[x] = y",
                "x = x / (x - 1)",
                "x = unknown",
                "x = y.pop()",
                "x = len(z)",
                "x = int('nope')",
                "x = 2 ** 62 * 4",
            ]),
            1..12,
        )
    ) {
        let src: String = stmts.iter().map(|s| format!("{s}\n")).collect();
        if compile(&src).is_ok() {
            let mut cfg = VmConfig::interp();
            cfg.time_budget_ns = Some(1.0e8);
            match Session::start(&src, 1, cfg) {
                Ok(_) => {}
                Err(e) => {
                    // Must be a classified runtime error, not an internal one.
                    let kind = e.runtime_kind().expect("runtime error expected");
                    prop_assert_ne!(kind, minipy::RuntimeErrorKind::Internal, "{}", e);
                }
            }
        }
    }
}

#[test]
fn deeply_nested_expressions_do_not_overflow_the_parser() {
    // 300 nested parens/brackets: either parses or errors, no stack overflow.
    let mut src = String::from("x = ");
    for _ in 0..300 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..300 {
        src.push(')');
    }
    src.push('\n');
    let _ = compile(&src);
}

#[test]
fn pathological_indentation() {
    let mut src = String::new();
    for depth in 0..60 {
        src.push_str(&" ".repeat(depth * 4));
        src.push_str("if 1:\n");
    }
    src.push_str(&" ".repeat(60 * 4));
    src.push_str("pass\n");
    let _ = compile(&src);
}

#[test]
fn long_lines_and_many_constants() {
    let terms: Vec<String> = (0..2000).map(|i| i.to_string()).collect();
    let src = format!("x = {}\n", terms.join(" + "));
    let program = compile(&src).expect("long sums compile");
    assert!(program.total_ops() > 2000);
}
