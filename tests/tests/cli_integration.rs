//! End-to-end tests of the CLI surface through the library entry point
//! (`rigor_cli::run`), covering exit codes and export side effects.

use std::fs;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rigor-cli-integration");
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn help_list_and_characterize_exit_zero() {
    assert_eq!(rigor_cli::run(&argv("help")), 0);
    assert_eq!(rigor_cli::run(&argv("list")), 0);
    assert_eq!(
        rigor_cli::run(&argv("characterize leibniz --size small")),
        0
    );
}

#[test]
fn bad_input_exit_codes() {
    // Unknown flag: parse error (2).
    assert_eq!(rigor_cli::run(&argv("measure sieve --frobnicate 1")), 2);
    // Unknown benchmark: usage error (2), like any other bad command line.
    assert_eq!(
        rigor_cli::run(&argv("measure not_a_benchmark -n 2 -i 3")),
        2
    );
    // A case slip or typo is the same usage error, carrying a suggestion
    // (the message itself is asserted in the cli crate's unit tests).
    assert_eq!(rigor_cli::run(&argv("measure Sieve -n 2 -i 3")), 2);
    assert_eq!(rigor_cli::run(&argv("compare seive -n 2 -i 3")), 2);
    // Missing file: runtime error (1).
    assert_eq!(rigor_cli::run(&argv("run /definitely/not/a/file.mp")), 1);
}

#[test]
fn verify_grid_against_committed_manifest() {
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/suite_checksums.json");
    let dir = tmp_dir();
    let json = dir.join("verify.json");
    // The committed manifest verifies clean at small size (exit 0).
    let cmd = format!(
        "verify --sizes small --seeds 1 --workers 4 --quiet --manifest {manifest} --json {}",
        json.display()
    );
    assert_eq!(rigor_cli::run(&argv(&cmd)), 0);
    let report = fs::read_to_string(&json).expect("report written");
    assert!(report.contains("\"passed\": true"), "{report}");

    // An injected mismatch fails with exit 1 and names the cell.
    let tampered = dir.join("tampered_manifest.json");
    let text = fs::read_to_string(manifest).expect("committed manifest");
    let entry_start = text.find("\"sieve/small\": \"").expect("sieve entry") + 16;
    let entry_end = entry_start + text[entry_start..].find('"').expect("entry close");
    let mut bad = text.clone();
    bad.replace_range(entry_start..entry_end, "0xBAD");
    fs::write(&tampered, bad).expect("tampered manifest");
    let cmd = format!(
        "verify --sizes small --seeds 1 --workers 4 --quiet --manifest {} --json {}",
        tampered.display(),
        json.display()
    );
    assert_eq!(rigor_cli::run(&argv(&cmd)), 1);
    let report = fs::read_to_string(&json).expect("report written");
    assert!(
        report.contains("\"cell\": \"sieve/small/interp/1\""),
        "{report}"
    );
    assert!(report.contains("\"expected\": \"0xBAD\""), "{report}");
    // A missing manifest is a runtime error, not a crash.
    assert_eq!(
        rigor_cli::run(&argv("verify --manifest /definitely/not/a/manifest.json")),
        1
    );
}

#[test]
fn measure_exports_both_formats() {
    let dir = tmp_dir();
    let json = dir.join("out.json");
    let csv = dir.join("out.csv");
    let cmd = format!(
        "measure sieve -n 3 -i 8 --size small --seed 5 --json {} --csv {}",
        json.display(),
        csv.display()
    );
    assert_eq!(rigor_cli::run(&argv(&cmd)), 0);
    let parsed =
        rigor::from_json(&fs::read_to_string(&json).expect("json written")).expect("valid export");
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0].benchmark, "sieve");
    assert_eq!(parsed[0].n_invocations(), 3);
    let csv_text = fs::read_to_string(&csv).expect("csv written");
    assert_eq!(csv_text.trim().lines().count(), 1 + 3 * 8);
}

#[test]
fn compare_runs_on_jit_friendly_benchmark() {
    assert_eq!(
        rigor_cli::run(&argv("compare leibniz -n 4 -i 20 --size small")),
        0
    );
}

#[test]
fn warmup_runs_on_jit_engine() {
    assert_eq!(
        rigor_cli::run(&argv("warmup sieve --engine jit -n 3 -i 15 --size small")),
        0
    );
}

#[test]
fn trace_flag_writes_parseable_jsonl() {
    let dir = tmp_dir();
    let trace = dir.join("trace.jsonl");
    let cmd = format!(
        "measure sieve -n 3 -i 5 --size small --seed 9 --quiet --trace {}",
        trace.display()
    );
    assert_eq!(rigor_cli::run(&argv(&cmd)), 0);
    let text = fs::read_to_string(&trace).expect("trace written");
    let parsed = rigor::parse_trace(&text).expect("trace parses as event JSONL");
    assert!(parsed.warning.is_none(), "a complete trace has no warning");
    let events = parsed.events;
    // A fully successful N x M experiment emits exactly 2 + 2N + N*M events.
    assert_eq!(events.len(), 2 + 2 * 3 + 3 * 5);
    assert!(matches!(
        events[0],
        rigor::ExperimentEvent::ExperimentStarted { .. }
    ));
    assert!(matches!(
        events.last().expect("non-empty"),
        rigor::ExperimentEvent::ExperimentFinished {
            failed_invocations: 0,
            ..
        }
    ));
    // The trace round-trips through `trace-summary` with exit 0.
    assert_eq!(
        rigor_cli::run(&argv(&format!("trace-summary {}", trace.display()))),
        0
    );
}

#[test]
fn trace_summary_rejects_garbage() {
    let dir = tmp_dir();
    let bogus = dir.join("bogus.jsonl");
    fs::write(&bogus, "this is not json\n").expect("write");
    assert_eq!(
        rigor_cli::run(&argv(&format!("trace-summary {}", bogus.display()))),
        1
    );
}

#[test]
fn fault_flag_usage_errors_exit_two() {
    assert_eq!(
        rigor_cli::run(&argv("measure sieve --quarantine-threshold 2")),
        2
    );
    assert_eq!(rigor_cli::run(&argv("measure sieve --deadline-ns -5")), 2);
    assert_eq!(rigor_cli::run(&argv("measure sieve --fuel 0")), 2);
    // Checkpoint flags outside `measure` are usage errors too.
    assert_eq!(rigor_cli::run(&argv("suite --journal j.jsonl")), 2);
    assert_eq!(rigor_cli::run(&argv("compare sieve --resume j.jsonl")), 2);
}

#[test]
fn quarantined_benchmark_exits_one() {
    // A deadline no real iteration can meet censors everything; the report
    // still prints (and exports still happen) but the verdict is exit 1.
    let dir = tmp_dir();
    let json = dir.join("quarantined.json");
    let cmd = format!(
        "measure sieve -n 2 -i 3 --size small --deadline-ns 100 --max-retries 0 --json {}",
        json.display()
    );
    assert_eq!(rigor_cli::run(&argv(&cmd)), 1);
    // The export carries the censoring taxonomy despite the failure verdict.
    let text = fs::read_to_string(&json).expect("export still written");
    assert!(text.contains("\"quarantined\": true"));
    assert!(text.contains("\"failure\": \"timeout\""));
}

#[test]
fn journal_resume_roundtrip_through_the_cli() {
    let dir = tmp_dir();
    let journal = dir.join("roundtrip.jsonl");
    let full_json = dir.join("full.json");
    let resumed_json = dir.join("resumed.json");
    let base = "measure sieve -n 4 -i 5 --size small --seed 11 --quiet";
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "{base} --journal {} --json {}",
            journal.display(),
            full_json.display()
        ))),
        0
    );
    // Drop all but the meta line + 2 checkpoints, as a crash would.
    let text = fs::read_to_string(&journal).expect("journal written");
    let prefix: Vec<&str> = text.lines().take(3).collect();
    fs::write(&journal, format!("{}\n", prefix.join("\n"))).expect("truncate");
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "{base} --resume {} --json {}",
            journal.display(),
            resumed_json.display()
        ))),
        0
    );
    assert_eq!(
        fs::read_to_string(&full_json).expect("full export"),
        fs::read_to_string(&resumed_json).expect("resumed export"),
        "resumed run must export byte-identical measurements"
    );
}

#[test]
fn missing_resume_journal_exits_one() {
    assert_eq!(
        rigor_cli::run(&argv(
            "measure sieve --resume /definitely/not/a/journal.jsonl"
        )),
        1
    );
}

#[test]
fn self_test_exits_zero() {
    assert_eq!(rigor_cli::run(&argv("self-test --quiet")), 0);
}

#[test]
fn run_and_disasm_shipped_fixture() {
    // The repository ships a sample workload; resolve it relative to the
    // workspace root (tests run with the package dir as cwd).
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .join("examples/fixtures/collatz.mp");
    assert!(fixture.exists(), "sample fixture must ship with the repo");
    assert_eq!(
        rigor_cli::run(&argv(&format!("run {}", fixture.display()))),
        0
    );
    assert_eq!(
        rigor_cli::run(&argv(&format!("disasm {}", fixture.display()))),
        0
    );
}
