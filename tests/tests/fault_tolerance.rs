//! Integration tests of the fault-tolerance machinery across crates:
//! deadlines and fuel budgets (minipy), retry + censoring + quarantine
//! (rigor runner), and checkpoint/resume equivalence (property-tested).

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use rigor::{ExperimentConfig, FailureKind, FaultPlan, Journal, Runner};
use rigor_workloads::{find, Size};

const DIVERGENT_SRC: &str = "def run():\n    while True:\n        pass\n";

fn quick_config() -> ExperimentConfig {
    ExperimentConfig::interp()
        .with_invocations(4)
        .with_iterations(5)
        .with_size(Size::Small)
        .with_seed(7)
}

fn runner(cfg: ExperimentConfig) -> Runner {
    Runner::new(cfg).expect("valid config")
}

/// A unique temp path per call, so parallel tests and proptest cases never
/// collide on a journal file.
fn temp_journal(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rigor-ft-{tag}-{}-{n}.jsonl", std::process::id()))
}

/// The headline acceptance criterion: a workload that never terminates is
/// stopped by the virtual-time deadline with a typed timeout, retried per
/// config, and the experiment still produces a (censored, quarantined)
/// report instead of hanging or erroring.
#[test]
fn divergent_workload_yields_a_censored_report() {
    let cfg = quick_config()
        .with_invocations(3)
        .with_deadline_ns(5.0e7)
        .with_max_retries(2);
    let m = runner(cfg)
        .measure_source(DIVERGENT_SRC, "divergent")
        .expect("runtime failures must not abort the experiment");
    assert_eq!(m.n_invocations(), 0);
    assert_eq!(m.censored.len(), 3);
    assert!(m.quarantined);
    for c in &m.censored {
        assert_eq!(c.failure, FailureKind::Timeout);
        assert_eq!(c.attempts, 3, "max_retries=2 means 3 attempts per slot");
        assert!(c.error.contains("TimeoutError"), "typed error: {}", c.error);
    }
    // The censored taxonomy survives both export formats.
    let json = rigor::to_json(std::slice::from_ref(&m)).expect("export");
    assert!(json.contains("\"quarantined\": true"));
    assert!(json.contains("\"failure\": \"timeout\""));
    let csv = rigor::to_csv(std::slice::from_ref(&m));
    assert!(csv.lines().any(|l| l.ends_with("censored:timeout")));
}

/// Fuel exhaustion is the same story with the other budget and taxonomy.
#[test]
fn fuel_exhaustion_yields_a_censored_report() {
    let cfg = quick_config()
        .with_invocations(1)
        .with_step_budget(50_000)
        .with_max_retries(0);
    let m = runner(cfg)
        .measure_source(DIVERGENT_SRC, "divergent")
        .expect("censored, not error");
    assert_eq!(m.censored.len(), 1);
    assert_eq!(m.censored[0].failure, FailureKind::FuelExhausted);
}

/// Fault injection composes with journaling: a run that limps through
/// transient panics still checkpoints every resolved slot.
#[test]
fn faulty_runs_checkpoint_every_slot() {
    let w = find("sieve").expect("in the suite");
    let path = temp_journal("faulty");
    let m = runner(quick_config().with_max_retries(4))
        .fault_plan(FaultPlan::new(21).with_panic_rate(0.4))
        .journal(&path)
        .measure(&w)
        .expect("recoverable faults");
    let journal = Journal::load(&path).expect("journal parses");
    assert_eq!(journal.completed(), m.n_requested());
    for r in &m.invocations {
        assert!(journal.contains(r.invocation));
    }
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Resume equivalence, property-tested: kill an experiment after any
    /// prefix of its checkpoint journal and resume — the summary statistics
    /// (the full JSON export) are byte-identical to the uninterrupted run.
    #[test]
    fn resume_reproduces_uninterrupted_run(
        seed in 0u64..1000,
        invocations in 2u32..6,
        iterations in 2u32..5,
        keep_fraction in 0.0f64..=1.0,
    ) {
        let w = find("sieve").expect("in the suite");
        let cfg = quick_config()
            .with_invocations(invocations)
            .with_iterations(iterations)
            .with_seed(seed);
        let path = temp_journal("prop");
        let full = runner(cfg.clone())
            .journal(&path)
            .measure(&w)
            .expect("clean run");

        // Simulate dying after an arbitrary number of checkpoint lines
        // (0 = right after the meta line, all = a completed journal).
        let text = std::fs::read_to_string(&path).expect("journal readable");
        let lines: Vec<&str> = text.lines().collect();
        let keep = 1 + ((lines.len() - 1) as f64 * keep_fraction).floor() as usize;
        let keep = keep.min(lines.len());
        std::fs::write(&path, format!("{}\n", lines[..keep].join("\n"))).expect("truncate");

        let journal = Journal::load(&path).expect("prefix parses");
        prop_assert_eq!(journal.completed(), keep - 1);
        let resumed = runner(cfg)
            .resume(journal)
            .measure(&w)
            .expect("resumed run");
        std::fs::remove_file(&path).ok();

        let a = rigor::to_json(std::slice::from_ref(&full)).expect("export full");
        let b = rigor::to_json(std::slice::from_ref(&resumed)).expect("export resumed");
        prop_assert_eq!(a, b, "resume must be indistinguishable from an uninterrupted run");
    }

    /// A truncated *final* journal line (torn write at the kill point) is
    /// forgiven: the journal loads as the valid prefix and resume works.
    #[test]
    fn torn_final_journal_line_is_forgiven(seed in 0u64..1000, cut in 1usize..40) {
        let w = find("sieve").expect("in the suite");
        let cfg = quick_config().with_invocations(3).with_seed(seed);
        let path = temp_journal("torn");
        let full = runner(cfg.clone())
            .journal(&path)
            .measure(&w)
            .expect("clean run");

        let text = std::fs::read_to_string(&path).expect("journal readable");
        let lines: Vec<&str> = text.lines().collect();
        // Keep meta + 1 full record, then a torn prefix of the next line.
        let torn = &lines[2][..cut.min(lines[2].len() - 1)];
        std::fs::write(&path, format!("{}\n{}\n{}", lines[0], lines[1], torn))
            .expect("tear the file");

        let journal = Journal::load(&path).expect("torn tail tolerated");
        prop_assert!(journal.truncated, "the torn line must be flagged");
        prop_assert_eq!(journal.completed(), 1);
        let resumed = runner(cfg)
            .resume(journal)
            .measure(&w)
            .expect("resumed run");
        std::fs::remove_file(&path).ok();
        let a = rigor::to_json(std::slice::from_ref(&full)).expect("export full");
        let b = rigor::to_json(std::slice::from_ref(&resumed)).expect("export resumed");
        prop_assert_eq!(a, b);
    }
}
