//! Model-based testing of MiniPy's seeded open-addressing dict against a
//! reference `BTreeMap` under random operation sequences, across hash seeds.

use std::collections::BTreeMap;

use minipy::dict::Dict;
use minipy::heap::Heap;
use minipy::Value;
use proptest::prelude::*;

/// One dict operation in the random program.
#[derive(Debug, Clone)]
enum Op {
    InsertInt(i8, i16),
    InsertStr(u8, i16),
    RemoveInt(i8),
    RemoveStr(u8),
    GetInt(i8),
    GetStr(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i8>(), any::<i16>()).prop_map(|(k, v)| Op::InsertInt(k, v)),
        (any::<u8>(), any::<i16>()).prop_map(|(k, v)| Op::InsertStr(k, v)),
        any::<i8>().prop_map(Op::RemoveInt),
        any::<u8>().prop_map(Op::RemoveStr),
        any::<i8>().prop_map(Op::GetInt),
        any::<u8>().prop_map(Op::GetStr),
    ]
}

/// Model key: distinguishes int keys from string keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ModelKey {
    Int(i8),
    Str(u8),
}

/// Runs the op sequence against both the real dict and the model; checks
/// every intermediate get and the final contents.
fn check(ops: &[Op], seed: u64) {
    let mut heap = Heap::with_seed(seed);
    // Pre-intern the string keys so lookups and inserts share content-equal
    // but distinct heap strings (exercising content equality, not identity).
    let strings: Vec<(Value, Value)> = (0..=255u8)
        .map(|i| {
            let a = heap.alloc_str(format!("key{i}"));
            let b = heap.alloc_str(format!("key{i}"));
            (Value::Obj(a), Value::Obj(b))
        })
        .collect();
    let mut dict = Dict::new();
    let mut model: BTreeMap<ModelKey, i16> = BTreeMap::new();
    let mut probes = 0u64;

    for op in ops {
        match *op {
            Op::InsertInt(k, v) => {
                dict.insert(
                    &heap,
                    Value::Int(k as i64),
                    Value::Int(v as i64),
                    &mut probes,
                )
                .expect("int keys are hashable");
                model.insert(ModelKey::Int(k), v);
            }
            Op::InsertStr(k, v) => {
                dict.insert(
                    &heap,
                    strings[k as usize].0,
                    Value::Int(v as i64),
                    &mut probes,
                )
                .expect("str keys are hashable");
                model.insert(ModelKey::Str(k), v);
            }
            Op::RemoveInt(k) => {
                let real = dict
                    .remove(&heap, Value::Int(k as i64), &mut probes)
                    .expect("hashable");
                let expected = model.remove(&ModelKey::Int(k));
                assert_eq!(
                    real.map(|v| match v {
                        Value::Int(i) => i,
                        other => panic!("unexpected value {other:?}"),
                    }),
                    expected.map(|v| v as i64)
                );
            }
            Op::RemoveStr(k) => {
                // Remove via the *other* content-equal string handle.
                let real = dict
                    .remove(&heap, strings[k as usize].1, &mut probes)
                    .expect("hashable");
                let expected = model.remove(&ModelKey::Str(k));
                assert_eq!(real.is_some(), expected.is_some());
            }
            Op::GetInt(k) => {
                let real = dict
                    .try_get(&heap, Value::Int(k as i64), &mut probes)
                    .expect("hashable");
                let expected = model.get(&ModelKey::Int(k)).copied();
                assert_eq!(
                    real.map(|v| match v {
                        Value::Int(i) => i,
                        other => panic!("unexpected value {other:?}"),
                    }),
                    expected.map(|v| v as i64)
                );
            }
            Op::GetStr(k) => {
                let real = dict
                    .try_get(&heap, strings[k as usize].1, &mut probes)
                    .expect("hashable");
                let expected = model.get(&ModelKey::Str(k)).copied();
                assert_eq!(real.is_some(), expected.is_some());
            }
        }
        assert_eq!(dict.len(), model.len(), "length diverged after {op:?}");
    }
    // Final contents: every model entry is present; the dict iterates exactly
    // the model's key count (no phantom entries).
    assert_eq!(dict.entries().count(), model.len());
    for (k, v) in &model {
        let key = match k {
            ModelKey::Int(i) => Value::Int(*i as i64),
            ModelKey::Str(s) => strings[*s as usize].1,
        };
        let got = dict.try_get(&heap, key, &mut probes).expect("hashable");
        assert_eq!(
            got,
            Some(Value::Int(*v as i64)),
            "missing or wrong value for {k:?} at the end"
        );
    }
    // `probes` is only advisory here: lookups on a never-populated dict
    // return early without probing, so no lower bound is asserted.
    let _ = probes;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random op sequences behave identically to a BTreeMap model,
    /// irrespective of the hash seed (seeds vary probing, not semantics).
    #[test]
    fn dict_matches_model(
        ops in prop::collection::vec(op_strategy(), 0..200),
        seed in any::<u64>(),
    ) {
        check(&ops, seed);
    }
}

#[test]
fn heavy_insert_remove_cycles_with_tombstone_pressure() {
    // Deterministic torture: repeated insert/remove waves force tombstone
    // accumulation and resizes across several seeds.
    for seed in [0u64, 1, 0xDEAD, u64::MAX] {
        let heap = Heap::with_seed(seed);
        let mut dict = Dict::new();
        let mut probes = 0u64;
        for wave in 0..20i64 {
            for i in 0..64 {
                dict.insert(&heap, Value::Int(i), Value::Int(wave), &mut probes)
                    .unwrap();
            }
            for i in (0..64).step_by(2) {
                assert!(dict
                    .remove(&heap, Value::Int(i), &mut probes)
                    .unwrap()
                    .is_some());
            }
            assert_eq!(dict.len(), 32);
            for i in (1..64).step_by(2) {
                assert_eq!(
                    dict.try_get(&heap, Value::Int(i), &mut probes).unwrap(),
                    Some(Value::Int(wave))
                );
            }
            for i in (1..64).step_by(2) {
                dict.remove(&heap, Value::Int(i), &mut probes).unwrap();
            }
            assert_eq!(dict.len(), 0);
        }
        // The table must not have ballooned: capacity stays bounded after
        // every wave deletes everything.
        assert!(
            dict.capacity() <= 512,
            "capacity {} after churn",
            dict.capacity()
        );
    }
}
