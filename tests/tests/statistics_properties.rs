//! Property-based tests of the statistics substrate's invariants.

use proptest::prelude::*;
use rigor_stats::changepoint::SegmentConfig;

fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0f64..1.0e6, min_len..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mean_is_between_min_and_max(xs in finite_vec(1)) {
        let m = rigor_stats::mean(&xs);
        let lo = rigor_stats::descriptive::min(&xs);
        let hi = rigor_stats::descriptive::max(&xs);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn geomean_le_mean(xs in finite_vec(1)) {
        // AM-GM inequality.
        prop_assert!(rigor_stats::geomean(&xs) <= rigor_stats::mean(&xs) + 1e-9);
    }

    #[test]
    fn harmonic_le_geomean(xs in finite_vec(1)) {
        prop_assert!(rigor_stats::harmonic_mean(&xs) <= rigor_stats::geomean(&xs) + 1e-9);
    }

    #[test]
    fn quantiles_are_monotone(xs in finite_vec(2), qs in prop::collection::vec(0.0f64..=1.0, 2..8)) {
        let mut sorted_q = qs.clone();
        sorted_q.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let vals = rigor_stats::quantiles(&xs, &sorted_q);
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
    }

    #[test]
    fn t_ci_contains_sample_mean(xs in finite_vec(3)) {
        if let Some(ci) = rigor_stats::mean_ci(&xs, 0.95) {
            prop_assert!(ci.contains(rigor_stats::mean(&xs)));
            prop_assert!(ci.lower <= ci.upper);
        }
    }

    #[test]
    fn bootstrap_ci_contains_sample_mean(xs in finite_vec(3), seed in 0u64..1000) {
        if let Some(ci) = rigor_stats::bootstrap_mean_ci(&xs, 0.95, 300, seed) {
            // Percentile bootstrap of the mean: sample mean sits inside
            // (it is the expectation of the resampling distribution).
            prop_assert!(ci.lower <= rigor_stats::mean(&xs) + 1e-6);
            prop_assert!(ci.upper >= rigor_stats::mean(&xs) - 1e-6);
        }
    }

    #[test]
    fn segments_partition_any_series(xs in finite_vec(1)) {
        let segs = rigor_stats::segment(&xs, &SegmentConfig::default());
        prop_assert!(!segs.is_empty());
        prop_assert_eq!(segs[0].start, 0);
        prop_assert_eq!(segs.last().unwrap().end, xs.len());
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn merged_segments_still_partition(xs in finite_vec(8)) {
        let segs = rigor_stats::segment(&xs, &SegmentConfig::default());
        let merged = rigor_stats::merge_equivalent(&segs, 0.05);
        prop_assert!(merged.len() <= segs.len());
        prop_assert_eq!(merged[0].start, 0);
        prop_assert_eq!(merged.last().unwrap().end, xs.len());
    }

    #[test]
    fn despike_never_touches_edges(xs in finite_vec(8)) {
        let out = rigor_stats::despike(&xs, 8.0);
        prop_assert_eq!(out.len(), xs.len());
        for i in 0..3 {
            prop_assert_eq!(out[i], xs[i]);
            prop_assert_eq!(out[xs.len() - 1 - i], xs[xs.len() - 1 - i]);
        }
    }

    #[test]
    fn welch_test_is_symmetric(a in finite_vec(3), b in finite_vec(3)) {
        if let (Some(r1), Some(r2)) =
            (rigor_stats::welch_t_test(&a, &b), rigor_stats::welch_t_test(&b, &a))
        {
            prop_assert!((r1.statistic + r2.statistic).abs() < 1e-9);
            prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        }
    }

    #[test]
    fn cliffs_delta_is_antisymmetric_and_bounded(a in finite_vec(1), b in finite_vec(1)) {
        let d1 = rigor_stats::cliffs_delta(&a, &b);
        let d2 = rigor_stats::cliffs_delta(&b, &a);
        prop_assert!((d1 + d2).abs() < 1e-12);
        prop_assert!((-1.0..=1.0).contains(&d1));
    }

    #[test]
    fn t_quantile_round_trips_with_cdf(p in 0.011f64..0.989, df in 2.0f64..200.0) {
        let t = rigor_stats::t_quantile(p, df);
        prop_assert!((rigor_stats::t_cdf(t, df) - p).abs() < 1e-6);
    }

    #[test]
    fn normal_quantile_round_trips(p in 0.001f64..0.999) {
        let x = rigor_stats::normal_quantile(p);
        prop_assert!((rigor_stats::normal_cdf(x) - p).abs() < 1e-6);
    }

    #[test]
    fn outlier_removal_is_idempotent_enough(xs in finite_vec(8)) {
        let once = rigor_stats::remove_tukey_outliers(&xs, 1.5);
        let twice = rigor_stats::remove_tukey_outliers(&once, 1.5);
        // Removing outliers can expose new ones, but the count never grows.
        prop_assert!(twice.len() <= once.len());
        prop_assert!(once.len() <= xs.len());
    }

    #[test]
    fn effective_sample_size_is_bounded(xs in finite_vec(4)) {
        let ess = rigor_stats::effective_sample_size(&xs);
        prop_assert!(ess >= 1.0 - 1e-9);
        prop_assert!(ess <= xs.len() as f64 + 1e-9);
    }
}
