//! Statistical calibration of the trend/changepoint alert pipeline, plus
//! the golden-fixture contract of `rigor trend --json`.
//!
//! The detector is *measured*, not trusted: seeded synthetic histories
//! with known ground truth (no-change nulls, injected steps, drift,
//! heteroscedastic noise) bound its empirical false-positive rate and its
//! detection power, and a committed synthetic archive pins the exact JSON
//! `TrendReport` the CLI emits.
//!
//! Regenerate the archive fixture and pinned report after a *deliberate*
//! format or detector change with:
//! `BLESS=1 cargo test -p integration-tests --test trend_alerts`.

use std::fs;
use std::path::PathBuf;

use rigor::measurement::{BenchmarkMeasurement, InvocationRecord};
use rigor::trend::synth::{detected_shift_index, null_alert_rate, Shape, SynthHistory};
use rigor::trend::{analyze_trend, TrendConfig, TrendStatus};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

// ---------------------------------------------------------------------------
// Calibration: false-positive rate on nulls
// ---------------------------------------------------------------------------

/// The acceptance bound: across 200 seeded no-change replications, the
/// fraction that raises any significant changepoint must not exceed the
/// configured FDR level.
#[test]
fn null_histories_alert_at_most_at_the_fdr_level() {
    let config = TrendConfig::default();
    let rate = null_alert_rate(&SynthHistory::default(), 200, &config);
    assert!(
        rate <= config.fdr_q,
        "empirical FPR {rate} exceeds configured FDR level {} over 200 null replications",
        config.fdr_q
    );
}

/// The bound must also hold when the noise scale itself is unstable from
/// run to run (heteroscedastic nulls are the classic source of spurious
/// "changepoints" on real machines).
#[test]
fn heteroscedastic_nulls_stay_within_the_fdr_level() {
    let config = TrendConfig::default();
    let base = SynthHistory {
        heteroscedastic: true,
        ..SynthHistory::default()
    };
    let rate = null_alert_rate(&base, 100, &config);
    assert!(
        rate <= config.fdr_q,
        "heteroscedastic empirical FPR {rate} exceeds {}",
        config.fdr_q
    );
}

// ---------------------------------------------------------------------------
// Power and localization on known shifts
// ---------------------------------------------------------------------------

/// A single injected 3σ step (σ of the run value) must be detected in the
/// large majority of seeded replications, and the detections must locate
/// the step: almost all within ±1 run of the injected index, and none far
/// from it. (At exactly 3σ a noise realization can ramp up just before
/// the true step and pull the maximal-gain split a couple of runs early,
/// so the ±1 bound is on the distribution, not on every single draw.)
#[test]
fn three_sigma_steps_are_detected_and_located() {
    let config = TrendConfig::default();
    let base = SynthHistory::default();
    let frac = 3.0 * base.value_sigma() / base.level;
    let at = 20usize;
    let mut detected = 0usize;
    let mut within_one = 0usize;
    for seed in 0..25u64 {
        let h = base
            .clone()
            .with_shape(Shape::Step { at, frac })
            .with_seed(1000 + seed);
        if let Some(idx) = detected_shift_index(&h, &config) {
            detected += 1;
            let err = (idx as i64 - at as i64).abs();
            if err <= 1 {
                within_one += 1;
            }
            assert!(
                err <= 3,
                "seed {seed}: 3σ step located at {idx}, injected at {at}"
            );
        }
    }
    assert!(
        detected >= 20,
        "3σ step detected in only {detected}/25 replications"
    );
    assert!(
        within_one >= 22,
        "3σ step located within ±1 in only {within_one}/25 replications"
    );
}

/// Changepoint locations are stable under segment-preserving noise
/// reseeds: regenerating the *noise* (same ground-truth step, different
/// seed) must keep the detected changepoint within ±1 of the injected
/// index in every replication — the segmentation reacts to the level
/// structure, not to one realization of the noise.
#[test]
fn changepoints_are_stable_under_noise_reseeds() {
    let config = TrendConfig::default();
    let base = SynthHistory::default();
    // A large (8σ) step: detection is certain, so every reseed must both
    // find it and agree on where it is.
    let frac = 8.0 * base.value_sigma() / base.level;
    let at = 12usize;
    for seed in 0..20u64 {
        let h = base
            .clone()
            .with_shape(Shape::Step { at, frac })
            .with_seed(5000 + seed);
        let idx = detected_shift_index(&h, &config)
            .unwrap_or_else(|| panic!("seed {seed}: 8σ step not detected"));
        assert!(
            (idx as i64 - at as i64).abs() <= 1,
            "seed {seed}: 8σ step located at {idx}, injected at {at}"
        );
    }
}

/// Smoke: drift (no true step) analyzes without panicking under every
/// penalty policy; whatever segmentation it picks, the report is
/// structurally sound (segments tile the history).
#[test]
fn drift_histories_analyze_cleanly() {
    for penalty in ["auto", "bic", "4.0"] {
        let config = TrendConfig::default()
            .with_penalty(rigor::Penalty::parse(penalty).expect("valid penalty"));
        let points = SynthHistory::default()
            .with_shape(Shape::Drift { total_frac: 0.15 })
            .generate();
        let trend = analyze_trend("drifty", &points, &config);
        assert!(trend.status != TrendStatus::InsufficientData);
        assert_eq!(trend.segments.first().map(|s| s.start), Some(0));
        assert_eq!(trend.segments.last().map(|s| s.end), Some(points.len()));
        for pair in trend.segments.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }
}

// ---------------------------------------------------------------------------
// True-positive calibration on *measured* non-steady workloads
// ---------------------------------------------------------------------------

/// End-to-end true-positive check with real measurements instead of
/// synthetic histories: the archive holds eight measured runs of the
/// nonsteady drift workload — five at baseline cost, three at the degraded
/// (3×) cost, same checksum — plus a steady companion. `rigor trend` must
/// locate the run-level shift within ±1 of the injected index (seq 5) and
/// keep the steady benchmark quiet. This aligns the measured pipeline with
/// the `trend::synth` calibration above: the injected step is the measured
/// analogue of `Shape::Step { at: 5, frac: 2.0 }`.
#[test]
fn measured_nonsteady_drift_is_located_and_steady_stays_quiet() {
    use rigor_workloads::programs::nonsteady;

    let dir = std::env::temp_dir().join(format!("rigor-nonsteady-trend-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    let mut store = rigor_store::Store::open(&dir).expect("open store");
    let config = rigor::ExperimentConfig::interp()
        .with_invocations(4)
        .with_iterations(8)
        .with_seed(33);
    let runner = rigor::Runner::new(config.clone()).expect("runner");
    let steady_src = nonsteady::drift_baseline(60);
    for seq in 0..8u64 {
        // The workload itself changes shape at seq 5 — a genuine 3× cost
        // step with an identical checksum, the scenario trend alerts exist
        // to catch (perf regressed, semantics did not).
        let drift_src = if seq >= 5 {
            nonsteady::drift_degraded(40)
        } else {
            nonsteady::drift_baseline(40)
        };
        let drift = runner
            .measure_source(&drift_src, "nonsteady_drift")
            .expect("measure drift");
        let steady = runner
            .measure_source(&steady_src, "steady_companion")
            .expect("measure steady");
        store
            .append(None, &config, vec![drift, steady])
            .expect("append run");
    }

    let out = dir.join("trend.json");
    let code = rigor_cli::run(&argv(&format!(
        "trend --store {} --json {}",
        dir.display(),
        out.display()
    )));
    let report = fs::read_to_string(&out).expect("trend report written");
    // Three degraded runs follow the step, so the shift is mid-history by
    // the at-HEAD rule (within the last min_segment runs): exit 0, with
    // the shift fully reported.
    assert_eq!(
        code, 0,
        "mid-history shift is not an at-HEAD alert: {report}"
    );
    assert!(
        report.contains("\"benchmark\": \"nonsteady_drift\""),
        "{report}"
    );
    assert!(report.contains("\"direction\": \"slower\""), "{report}");
    assert!(report.contains("\"significant\": true"), "{report}");

    // Localization: the changepoint for nonsteady_drift lands within ±1 of
    // the injected run index.
    let drift_section = report
        .split("\"benchmark\": \"nonsteady_drift\"")
        .nth(1)
        .expect("drift section present");
    let drift_section = drift_section
        .split("\"benchmark\":")
        .next()
        .expect("section bounded");
    assert!(
        drift_section.contains("\"status\": \"shifted\""),
        "{report}"
    );
    let seq: i64 = drift_section
        .split("\"seq\": ")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("changepoint seq present");
    assert!(
        (seq - 5).abs() <= 1,
        "drift step injected at run 5, located at run {seq}: {report}"
    );

    // The steady companion must not alert (false-positive control at the
    // same FDR the synthetic nulls are calibrated against).
    let steady_section = report
        .split("\"benchmark\": \"steady_companion\"")
        .nth(1)
        .expect("steady section present");
    let steady_section = steady_section
        .split("\"benchmark\":")
        .next()
        .expect("section bounded");
    assert!(
        steady_section.contains("\"status\": \"stable\""),
        "steady companion must stay quiet: {report}"
    );
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Golden fixture: the exact TrendReport JSON over a committed archive
// ---------------------------------------------------------------------------

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/trend_history")
}

/// A deterministic synthetic measurement: `n_inv` invocations whose
/// iteration series settle on `level` with a small repeating jitter, so
/// the default steady-state detector accepts every invocation.
fn measurement(name: &str, level: f64, n_inv: usize) -> BenchmarkMeasurement {
    let invocations = (0..n_inv)
        .map(|i| InvocationRecord {
            invocation: i as u32,
            seed: i as u64,
            startup_ns: 250.0,
            iteration_ns: (0..12)
                .map(|j| level * (1.0 + ((i + j) % 3) as f64 * 0.002))
                .collect(),
            gc_cycles: 0,
            jit_compiles: 0,
            deopts: 0,
            checksum: "42".into(),
            iteration_counters: None,
            attempts: 1,
        })
        .collect();
    BenchmarkMeasurement {
        benchmark: name.into(),
        engine: "interp".into(),
        invocations,
        censored: Vec::new(),
        quarantined: false,
    }
}

/// Rebuilds the committed archive from scratch: eight runs of two
/// benchmarks, `steady` flat throughout and `shifty` stepping from 100 to
/// 130 at run 5 — a mid-history shift, so `rigor trend` on the fixture
/// exits 0 (shifted, but not at HEAD).
fn regenerate_fixture_archive(dir: &PathBuf) {
    fs::remove_dir_all(dir).ok();
    let mut store = rigor_store::Store::open(dir).expect("open fixture store");
    let config = rigor::ExperimentConfig::interp()
        .with_invocations(4)
        .with_iterations(12)
        .with_seed(11);
    for seq in 0..8u64 {
        let shifty_level = if seq >= 5 { 130.0 } else { 100.0 };
        let label = (seq == 5).then(|| "first-shifted-run".to_string());
        store
            .append(
                label,
                &config,
                vec![
                    measurement("steady", 50.0, 4),
                    measurement("shifty", shifty_level, 4),
                ],
            )
            .expect("append fixture run");
    }
}

#[test]
fn trend_report_matches_the_golden_fixture() {
    let dir = fixture_dir();
    if std::env::var_os("BLESS").is_some() {
        regenerate_fixture_archive(&dir);
    }
    let out = std::env::temp_dir().join(format!("rigor-trend-golden-{}.json", std::process::id()));
    let code = rigor_cli::run(&argv(&format!(
        "trend --store {} --json {}",
        dir.display(),
        out.display()
    )));
    assert_eq!(code, 0, "mid-history shift is not an at-HEAD alert");
    let actual = fs::read_to_string(&out).expect("trend report written");
    fs::remove_file(&out).ok();
    let pinned = dir.join("report.json");
    if std::env::var_os("BLESS").is_some() {
        fs::write(&pinned, &actual).expect("bless pinned report");
    }
    let expected =
        fs::read_to_string(&pinned).expect("pinned report missing — regenerate with BLESS=1");
    assert_eq!(
        actual, expected,
        "rigor trend --json drifted from the pinned TrendReport; if the \
         change is deliberate, regenerate with BLESS=1"
    );
    // Structural spot checks on top of the byte-for-byte pin: the report
    // names the shifting run (seq 5, the labelled run in the archive),
    // carries segment means on both sides of the step, and adjusted
    // p-values marking the shift significant.
    assert!(actual.contains("\"benchmark\": \"shifty\""), "{actual}");
    assert!(actual.contains("\"status\": \"shifted\""), "{actual}");
    assert!(actual.contains("\"status\": \"stable\""), "{actual}");
    assert!(actual.contains("\"seq\": 5"), "{actual}");
    assert!(actual.contains("\"direction\": \"slower\""), "{actual}");
    assert!(actual.contains("\"p_adjusted\""), "{actual}");
    assert!(actual.contains("\"at_head\": false"), "{actual}");
    // The named run id resolves in the committed archive and is the run
    // the fixture labelled as the first at the new level.
    let store = rigor_store::Store::open(&dir).expect("open committed fixture");
    let id_field = actual
        .split("\"run_id\": \"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("report names a run id");
    let run = store.get(id_field).expect("run id resolves in the archive");
    assert_eq!(run.seq, 5);
    assert_eq!(run.label.as_deref(), Some("first-shifted-run"));
}
