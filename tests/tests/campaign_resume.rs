//! Crash-safety of campaign orchestration: killing a campaign after *any*
//! byte prefix of its journal and resuming must yield an archive
//! byte-identical to the uninterrupted run's (single worker), and a
//! content-id set identical to it under concurrent workers — the campaign
//! analogue of `store_archive.rs`.
//!
//! The simulated kill point is "right after the journal flush of cell J":
//! the archive (appended before the journal line, and authoritative on
//! resume) holds exactly the first J cells, and the journal holds the
//! prefix — possibly with a torn final line, which resume must forgive.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use rigor::{Campaign, CampaignSpec, ExperimentConfig};
use rigor_store::{SharedStore, Store, ARCHIVE_FILE};
use rigor_workloads::Size;

/// The grid under test: 2 benchmarks x 1 engine x 1 variant x 2 seeds.
fn spec() -> CampaignSpec {
    let base = ExperimentConfig::interp()
        .with_invocations(1)
        .with_iterations(2)
        .with_size(Size::Small)
        .with_seed(3);
    CampaignSpec::new(base)
        .with_benchmarks(["sieve", "leibniz"])
        .with_seeds(vec![3, 4])
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rigor-campaign-resume-{}-{name}",
        std::process::id()
    ));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs the campaign uninterrupted on one worker (deterministic append
/// order: grid order) and returns its (archive bytes, journal bytes).
fn clean_run(dir: &PathBuf) -> (Vec<u8>, Vec<u8>) {
    let sink = SharedStore::open(dir).expect("open store");
    let journal = dir.join("campaign.jsonl");
    let report = Campaign::new(spec())
        .workers(1)
        .journal(&journal)
        .run(&sink)
        .expect("clean campaign");
    assert!(report.is_complete());
    assert_eq!(report.executed, 4);
    (
        fs::read(dir.join(ARCHIVE_FILE)).expect("read archive"),
        fs::read(&journal).expect("read journal"),
    )
}

/// The content-id set of every archived run, with its grid seq.
fn id_set(dir: &PathBuf) -> BTreeSet<(u64, String)> {
    let store = Store::open(dir).expect("open");
    store.runs().map(|r| (r.seq, r.id.clone())).collect()
}

#[test]
fn every_journal_byte_prefix_resumes_to_a_byte_identical_archive() {
    let clean_dir = temp_dir("clean");
    let (clean_archive, clean_journal) = clean_run(&clean_dir);

    // Archive line boundaries: meta line, then one line per cell in grid
    // order (workers=1). Slicing at these boundaries reconstructs the
    // archive state after any number of completed cells.
    let archive_line_ends: Vec<usize> = clean_archive
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    let journal_meta_end = clean_journal
        .iter()
        .position(|&b| b == b'\n')
        .expect("journal meta newline")
        + 1;

    let work_dir = temp_dir("work");
    for cut in 0..=clean_journal.len() {
        // Complete journaled cells in this prefix.
        let journaled = if cut < journal_meta_end {
            0
        } else {
            clean_journal[journal_meta_end..cut]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
        };
        fs::remove_dir_all(&work_dir).ok();
        fs::create_dir_all(&work_dir).expect("work dir");
        fs::write(work_dir.join("campaign.jsonl"), &clean_journal[..cut]).expect("journal prefix");
        // Archive = meta line + the first `journaled` cell lines.
        fs::write(
            work_dir.join(ARCHIVE_FILE),
            &clean_archive[..archive_line_ends[journaled]],
        )
        .expect("archive prefix");

        let sink = SharedStore::open(&work_dir).expect("open work store");
        let report = Campaign::new(spec())
            .workers(1)
            .journal(work_dir.join("campaign.jsonl"))
            .resume(true)
            .run(&sink)
            .unwrap_or_else(|e| panic!("resume after journal cut {cut} failed: {e}"));
        assert!(report.is_complete(), "cut {cut} left the campaign torn");
        assert_eq!(
            report.skipped, journaled,
            "cut {cut} must skip exactly the archived cells"
        );

        let resumed = fs::read(work_dir.join(ARCHIVE_FILE)).expect("read resumed archive");
        assert_eq!(
            resumed, clean_archive,
            "archive differs from uninterrupted run after journal cut {cut}"
        );
    }
    fs::remove_dir_all(&clean_dir).ok();
    fs::remove_dir_all(&work_dir).ok();
}

#[test]
fn interrupted_concurrent_campaign_resumes_to_the_same_content_id_set() {
    let clean_dir = temp_dir("set-clean");
    let (clean_archive, _) = clean_run(&clean_dir);

    // Interrupt a 4-worker run after at most 2 cells, then resume it.
    let work_dir = temp_dir("set-work");
    let journal = work_dir.join("campaign.jsonl");
    let sink = SharedStore::open(&work_dir).expect("open store");
    let partial = Campaign::new(spec())
        .workers(4)
        .journal(&journal)
        .max_cells(2)
        .run(&sink)
        .expect("interrupted campaign");
    assert!(!partial.is_complete());
    assert_eq!(partial.executed, 2);
    drop(sink);

    let sink = SharedStore::open(&work_dir).expect("reopen store");
    let resumed = Campaign::new(spec())
        .workers(4)
        .journal(&journal)
        .resume(true)
        .run(&sink)
        .expect("resumed campaign");
    assert!(resumed.is_complete());
    assert_eq!(resumed.skipped, 2);

    // Same content-id set as the uninterrupted run, and — because each
    // cell's line carries its grid index as seq and is byte-identical under
    // any completion order — the same archive lines up to ordering.
    assert_eq!(id_set(&work_dir), id_set(&clean_dir));
    let mut clean_lines: Vec<&[u8]> = clean_archive.split(|&b| b == b'\n').collect();
    let work_archive = fs::read(work_dir.join(ARCHIVE_FILE)).expect("read archive");
    let mut work_lines: Vec<&[u8]> = work_archive.split(|&b| b == b'\n').collect();
    clean_lines.sort();
    work_lines.sort();
    assert_eq!(clean_lines, work_lines);

    fs::remove_dir_all(&clean_dir).ok();
    fs::remove_dir_all(&work_dir).ok();
}

#[test]
fn resume_rejects_a_journal_from_a_different_grid() {
    let dir = temp_dir("mismatch");
    let journal = dir.join("campaign.jsonl");
    let sink = SharedStore::open(&dir).expect("open store");
    Campaign::new(spec())
        .workers(1)
        .journal(&journal)
        .run(&sink)
        .expect("clean campaign");

    // Same store, different seed axis: the journal no longer describes
    // this grid and resuming must fail loudly instead of mixing cells.
    let other = spec().with_seeds(vec![5]);
    let err = Campaign::new(other)
        .workers(1)
        .journal(&journal)
        .resume(true)
        .run(&sink)
        .expect_err("grid mismatch must be rejected");
    assert!(
        err.to_string().contains("journal"),
        "unexpected error: {err}"
    );
    fs::remove_dir_all(&dir).ok();
}
