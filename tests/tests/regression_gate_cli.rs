//! End-to-end tests of `rigor archive` / `rigor history` / `rigor check`
//! through the library entry point, covering the exit-code contract the
//! docs promise: an unchanged engine gates clean (exit 0), a deliberately
//! slowed engine regresses (exit 1) and the regressed benchmark is named.

use std::fs;
use std::path::PathBuf;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn tmp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rigor-gate-cli-{}-{name}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Small, fast experiment shape shared by the scenarios.
const SHAPE: &str = "-n 4 -i 20 --size small --quiet";

#[test]
fn unchanged_engine_gates_clean() {
    let store = tmp_store("clean");
    let store = store.display();
    assert_eq!(
        rigor_cli::run(&argv(&format!("archive leibniz {SHAPE} --store {store}"))),
        0
    );
    // Determinism makes the re-measurement identical; the gate must pass.
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "check leibniz {SHAPE} --store {store} --baseline last"
        ))),
        0
    );
    // Default baseline is `last`, so omitting the flag behaves the same.
    assert_eq!(
        rigor_cli::run(&argv(&format!("check leibniz {SHAPE} --store {store}"))),
        0
    );
}

#[test]
fn slowed_engine_regresses_with_exit_one() {
    let store = tmp_store("slow");
    let dir = store.clone();
    let store = store.display();
    // Baseline on the JIT; the current run on the interpreter is the
    // "deliberate slowdown" (JIT disabled via the existing engine flag).
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "archive leibniz {SHAPE} --engine jit --store {store}"
        ))),
        0
    );
    let json = dir.join("gate.json");
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "check leibniz {SHAPE} --engine interp --store {store} --json {}",
            json.display()
        ))),
        1
    );
    // The gate report names the regressed benchmark with a corrected p.
    let report = fs::read_to_string(&json).expect("gate report written");
    assert!(report.contains("\"benchmark\": \"leibniz\""), "{report}");
    assert!(report.contains("\"status\": \"regressed\""), "{report}");
    assert!(report.contains("\"p_adjusted\""), "{report}");
    assert!(report.contains("\"speedup\""), "{report}");
}

#[test]
fn tolerance_and_correction_flags_are_honored() {
    let store = tmp_store("tolerance");
    let store = store.display();
    assert_eq!(
        rigor_cli::run(&argv(&format!("archive leibniz {SHAPE} --store {store}"))),
        0
    );
    // A huge tolerance cannot turn a clean pass into anything else, and the
    // Holm correction must also run end to end.
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "check leibniz {SHAPE} --store {store} --max-regression 50 \
             --fdr 0.01 --correction holm"
        ))),
        0
    );
}

#[test]
fn history_renders_archived_runs_and_check_needs_a_baseline() {
    let store = tmp_store("history");
    let store = store.display();
    // Checking an empty store is a runtime error, not a pass.
    assert_eq!(
        rigor_cli::run(&argv(&format!("check leibniz {SHAPE} --store {store}"))),
        1
    );
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "archive leibniz {SHAPE} --store {store} --label nightly"
        ))),
        0
    );
    assert_eq!(
        rigor_cli::run(&argv(&format!("history leibniz --store {store}"))),
        0
    );
    // A benchmark with no archived runs still exits 0 (empty history is
    // not an error).
    assert_eq!(
        rigor_cli::run(&argv(&format!("history sieve --store {store}"))),
        0
    );
    // Unknown baseline references are runtime errors.
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "check leibniz {SHAPE} --store {store} --baseline deadbeef"
        ))),
        1
    );
}

#[test]
fn archive_emits_run_archived_to_the_trace() {
    let store = tmp_store("trace");
    let dir = store.clone();
    let store = store.display();
    fs::create_dir_all(&dir).expect("store dir");
    let trace = dir.join("trace.jsonl");
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "archive leibniz {SHAPE} --store {store} --trace {}",
            trace.display()
        ))),
        0
    );
    let text = fs::read_to_string(&trace).expect("trace written");
    assert!(text.contains("\"run_archived\""), "{text}");
    // And check emits its own closing event.
    let trace2 = dir.join("trace2.jsonl");
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "check leibniz {SHAPE} --store {store} --trace {}",
            trace2.display()
        ))),
        0
    );
    let text = fs::read_to_string(&trace2).expect("trace2 written");
    assert!(text.contains("\"regression_checked\""), "{text}");
    // trace-summary must digest a trace containing run-level events.
    assert_eq!(
        rigor_cli::run(&argv(&format!("trace-summary {}", trace2.display()))),
        0
    );
}

// ---------------------------------------------------------------------------
// `rigor trend`: the exit-code contract of the changepoint alert command
// ---------------------------------------------------------------------------

#[test]
fn trend_usage_errors_exit_two() {
    // Bad flag values are usage errors (exit 2), not runtime failures —
    // they must be rejected before any store is touched.
    assert_eq!(rigor_cli::run(&argv("trend --penalty bogus")), 2);
    assert_eq!(rigor_cli::run(&argv("trend --penalty -1")), 2);
    assert_eq!(rigor_cli::run(&argv("trend --min-segment 0")), 2);
    assert_eq!(rigor_cli::run(&argv("trend --min-segment x")), 2);
    assert_eq!(rigor_cli::run(&argv("trend leibniz extra")), 2);
}

#[test]
fn trend_on_stable_history_exits_zero() {
    let store = tmp_store("trend-stable");
    let store = store.display();
    // An empty archive has no trends to alert on.
    assert_eq!(rigor_cli::run(&argv(&format!("trend --store {store}"))), 0);
    for _ in 0..2 {
        assert_eq!(
            rigor_cli::run(&argv(&format!("archive leibniz {SHAPE} --store {store}"))),
            0
        );
    }
    // Two identical deterministic runs: no level shift, exit 0 — both at
    // the default minimum segment length (insufficient history) and at the
    // permissive one (sufficient history, but nothing shifted).
    assert_eq!(rigor_cli::run(&argv(&format!("trend --store {store}"))), 0);
    assert_eq!(
        rigor_cli::run(&argv(&format!("trend --store {store} --min-segment 1"))),
        0
    );
    // `history --alerts` renders the same analysis inline and stays
    // informational (exit 0) either way.
    assert_eq!(
        rigor_cli::run(&argv(&format!("history leibniz --store {store} --alerts"))),
        0
    );
    // Pooling the trend segment as the gate baseline must also gate clean.
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "check leibniz {SHAPE} --store {store} --baseline segment"
        ))),
        0
    );
}

#[test]
fn trend_alerts_on_a_shift_at_head_with_exit_one() {
    let store = tmp_store("trend-shift");
    let dir = store.clone();
    let store = store.display();
    fs::create_dir_all(&dir).expect("store dir");
    // Three interpreter runs establish the old level (three, so the
    // robust noise estimate has a clean majority of no-change diffs); a
    // JIT run at HEAD is the injected shift.
    for _ in 0..3 {
        assert_eq!(
            rigor_cli::run(&argv(&format!("archive leibniz {SHAPE} --store {store}"))),
            0
        );
    }
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "archive leibniz {SHAPE} --engine jit --store {store}"
        ))),
        0
    );
    let json = dir.join("trend.json");
    let trace = dir.join("trend-trace.jsonl");
    assert_eq!(
        rigor_cli::run(&argv(&format!(
            "trend --store {store} --min-segment 1 --json {} --trace {}",
            json.display(),
            trace.display()
        ))),
        1,
        "a shift at HEAD must exit 1"
    );
    // The JSON report names the shifted benchmark and flags the head run.
    let report = fs::read_to_string(&json).expect("trend report written");
    assert!(report.contains("\"benchmark\": \"leibniz\""), "{report}");
    assert!(report.contains("\"status\": \"shifted\""), "{report}");
    assert!(report.contains("\"at_head\": true"), "{report}");
    assert!(report.contains("\"p_adjusted\""), "{report}");
    // The telemetry trace carries both trend events.
    let text = fs::read_to_string(&trace).expect("trace written");
    assert!(text.contains("\"changepoint_detected\""), "{text}");
    assert!(text.contains("\"trend_analyzed\""), "{text}");
    // `history --alerts` narrates the shift but remains informational.
    assert_eq!(
        rigor_cli::run(&argv(&format!("history leibniz --store {store} --alerts"))),
        0
    );
}
