//! End-to-end pipeline integration tests: workload source → suite → runner →
//! steady-state detection → rigorous comparison.

use integration_tests::test_seed;
use rigor::{compare, compare_suite, ExperimentConfig, SteadyStateDetector};
use rigor_workloads::{find, suite, Size};

/// Builds a runner for a fixed test config (shape validity asserted).
fn runner(cfg: &ExperimentConfig) -> rigor::Runner {
    rigor::Runner::new(cfg.clone()).expect("valid config")
}

fn interp(invocations: u32, iterations: u32) -> ExperimentConfig {
    ExperimentConfig::interp()
        .with_invocations(invocations)
        .with_iterations(iterations)
        .with_size(Size::Small)
        .with_seed(test_seed("pipeline"))
}

fn jit(invocations: u32, iterations: u32) -> ExperimentConfig {
    ExperimentConfig::jit()
        .with_invocations(invocations)
        .with_iterations(iterations)
        .with_size(Size::Small)
        .with_seed(test_seed("pipeline"))
}

#[test]
fn full_pipeline_detects_jit_speedup_on_numeric_kernel() {
    let w = find("leibniz").expect("in suite");
    let base = runner(&interp(6, 25)).measure(&w).expect("interp");
    let cand = runner(&jit(6, 25)).measure(&w).expect("jit");
    let r = compare(&base, &cand, &SteadyStateDetector::default(), 0.95).expect("converges");
    assert!(r.significant, "{:?}", r.speedup);
    assert!(r.speedup.estimate > 3.0, "leibniz speedup {:?}", r.speedup);
    assert!(r.speedup.lower > 1.0);
    assert!(r.effect_size > 1.0);
}

#[test]
fn startup_dominated_benchmark_shows_no_speedup() {
    let w = find("startup_heavy").expect("in suite");
    let base = runner(&interp(6, 25)).measure(&w).expect("interp");
    let cand = runner(&jit(6, 25)).measure(&w).expect("jit");
    let r = compare(&base, &cand, &SteadyStateDetector::default(), 0.95).expect("converges");
    assert!(
        r.speedup.estimate < 1.3,
        "trivial run() must not benefit from the JIT: {:?}",
        r.speedup
    );
}

#[test]
fn engines_agree_semantically_on_whole_suite() {
    for w in suite() {
        let src = w.source(Size::Small);
        minipy::check_engines_agree(&src, test_seed(w.name))
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    }
}

#[test]
fn checksums_consistent_across_invocations_for_whole_suite() {
    for w in suite() {
        let m = runner(&interp(3, 2)).measure(&w).expect(w.name);
        assert!(
            m.checksums_consistent(),
            "{} must compute a seed-independent checksum",
            w.name
        );
    }
}

#[test]
fn suite_comparison_on_subset_has_sane_geomean() {
    let names = ["sieve", "fib_recursive", "dict_churn"];
    let mut pairs = Vec::new();
    for name in names {
        let w = find(name).expect("in suite");
        // dict_churn's JIT warmup is the longest of the three; 40 iterations
        // leaves enough steady tail for the detector at this seed.
        pairs.push((
            runner(&interp(5, 40)).measure(&w).expect("interp"),
            runner(&jit(5, 40)).measure(&w).expect("jit"),
        ));
    }
    let s = compare_suite(&pairs, &SteadyStateDetector::default(), 0.95);
    assert!(s.failures.is_empty(), "{:?}", s.failures);
    assert_eq!(s.per_benchmark.len(), 3);
    let g = s.geomean.expect("geomean");
    assert!(g.estimate > 1.2, "suite geomean {g:?}");
    assert!(g.lower <= g.estimate && g.estimate <= g.upper);
}

#[test]
fn experiment_is_fully_reproducible_end_to_end() {
    let w = find("str_keys").expect("in suite");
    let cfg = interp(4, 6);
    let a = runner(&cfg).measure(&w).expect("run a");
    let b = runner(&cfg).measure(&w).expect("run b");
    let ja = rigor::to_json(&[a]).expect("json");
    let jb = rigor::to_json(&[b]).expect("json");
    assert_eq!(
        ja, jb,
        "identical configs must produce byte-identical exports"
    );
}

#[test]
fn export_roundtrip_preserves_measurement() {
    let w = find("sieve").expect("in suite");
    let m = runner(&interp(3, 4)).measure(&w).expect("run");
    let json = rigor::to_json(std::slice::from_ref(&m)).expect("json");
    let back = rigor::from_json(&json).expect("parse");
    assert_eq!(back[0].benchmark, m.benchmark);
    assert_eq!(
        back[0].invocations[2].iteration_ns,
        m.invocations[2].iteration_ns
    );
    let csv = rigor::to_csv(&back);
    assert_eq!(csv.trim().lines().count(), 1 + 3 * 4);
}

#[test]
fn interp_is_steady_immediately_jit_is_not() {
    let w = find("leibniz").expect("in suite");
    let det = SteadyStateDetector::default();
    let mi = runner(&interp(4, 25)).measure(&w).expect("interp");
    let mj = runner(&jit(4, 25)).measure(&w).expect("jit");
    let si = rigor::common_steady_start(mi.series(), &det).expect("interp steady");
    let sj = rigor::common_steady_start(mj.series(), &det).expect("jit steady");
    assert_eq!(si, 0, "interpreter has no warmup");
    assert!(sj >= 1, "JIT must show warmup, got steady start {sj}");
}
