//! Adaptive precision planner, end to end: on the full-registry ×
//! 2-engine suite the planner must reach the precision target while
//! spending strictly fewer invocations than the fixed-n design that
//! guarantees the same worst-case precision (every cell at the largest n
//! any cell needed) — and a killed-then-resumed adaptive campaign must
//! converge to the same archive and the same target-attainment set as an
//! uninterrupted one.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use rigor::campaign::MemorySink;
use rigor::{Campaign, CampaignSpec, ExperimentConfig, PlannerConfig};
use rigor_store::{SharedStore, Store, ARCHIVE_FILE};
use rigor_workloads::{suite, Size};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rigor-adaptive-planner-{}-{name}",
        std::process::id()
    ));
    fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn adaptive_suite_beats_the_fixed_design_with_equal_worst_case_precision() {
    let base = ExperimentConfig::interp()
        .with_invocations(3)
        .with_iterations(8)
        .with_size(Size::Small)
        .with_seed(17);
    let benchmarks: Vec<String> = suite().iter().map(|w| w.name.to_string()).collect();
    let n_benchmarks = benchmarks.len();
    assert_eq!(
        n_benchmarks, 29,
        "the paper's 21 workloads plus the 8 PR-10 checksum-oracle families"
    );
    let planner = PlannerConfig::default()
        .with_target(0.02)
        .with_min_invocations(3)
        .with_max_invocations(12);
    let spec = CampaignSpec::new(base)
        .with_benchmarks(benchmarks)
        .with_engines(vec![
            minipy::EngineKind::Interp,
            minipy::EngineKind::Jit(minipy::JitConfig::default()),
        ])
        .with_planner(planner);

    let sink = MemorySink::default();
    let report = Campaign::new(spec)
        .workers(4)
        .run(&sink)
        .expect("adaptive suite campaign");
    assert!(report.is_complete());
    assert!(report.failures.is_empty(), "{:?}", report.failures);

    let precisions = sink.precisions();
    assert_eq!(precisions.len(), n_benchmarks * 2, "one record per cell");
    let mut spent = 0u64;
    let mut max_n = 0u32;
    let mut min_n = u32::MAX;
    for (_, p) in &precisions {
        assert!(p.invocations_used >= planner.pilot());
        assert!(p.invocations_used <= planner.max_invocations);
        // `target_met` must agree with the recorded half-width.
        assert_eq!(
            p.target_met,
            p.rel_half_width.is_some_and(|rel| rel <= 0.02),
            "{p:?}"
        );
        // A cell left short of target must have been pushed to the ceiling
        // (no budget was set, so nothing else can stop refinement).
        if !p.target_met {
            assert_eq!(p.invocations_used, planner.max_invocations, "{p:?}");
        }
        spent += u64::from(p.invocations_used);
        max_n = max_n.max(p.invocations_used);
        min_n = min_n.min(p.invocations_used);
    }
    assert_eq!(spent, report.invocations, "report totals the final sizes");

    // The suite is heterogeneous: quiet kernels stop at the pilot while
    // noisy cells are driven to larger n — that spread is exactly what a
    // fixed design cannot exploit.
    assert!(
        min_n < max_n,
        "expected a spread of final sizes, got all cells at n={min_n}"
    );
    let fixed_equivalent = u64::from(max_n) * precisions.len() as u64;
    assert!(
        spent < fixed_equivalent,
        "adaptive spent {spent} invocations but the fixed-n equivalent \
         ({} cells x n={max_n}) costs {fixed_equivalent}",
        precisions.len()
    );

    // The attainment set must line up with the report's unmet list.
    let unmet = precisions.iter().filter(|(_, p)| !p.target_met).count();
    assert_eq!(unmet, report.unmet.len());
}

/// The kill/resume grid: 2 benchmarks (one quiet, one noisy) × 2 engines.
fn resume_spec() -> CampaignSpec {
    let base = ExperimentConfig::interp()
        .with_invocations(2)
        .with_iterations(8)
        .with_size(Size::Small)
        .with_seed(9);
    CampaignSpec::new(base)
        .with_benchmarks(["sieve", "gc_pressure"])
        .with_engines(vec![
            minipy::EngineKind::Interp,
            minipy::EngineKind::Jit(minipy::JitConfig::default()),
        ])
        .with_planner(
            PlannerConfig::default()
                .with_target(0.03)
                .with_min_invocations(2)
                .with_max_invocations(8),
        )
}

/// Per-label (invocations_used, target_met) of every archived cell.
fn attainment(dir: &PathBuf) -> BTreeMap<String, (u32, bool)> {
    let store = Store::open(dir).expect("open store");
    store
        .runs()
        .map(|r| {
            let p = r
                .precision
                .as_ref()
                .expect("adaptive cells carry precision");
            (
                r.label.clone().expect("campaign cells are labeled"),
                (p.invocations_used, p.target_met),
            )
        })
        .collect()
}

#[test]
fn killed_adaptive_campaign_resumes_to_the_same_attainment_set() {
    // Uninterrupted reference run.
    let clean_dir = temp_dir("clean");
    let sink = SharedStore::open(&clean_dir).expect("open clean store");
    let clean = Campaign::new(resume_spec())
        .workers(2)
        .journal(clean_dir.join("campaign.jsonl"))
        .run(&sink)
        .expect("clean adaptive campaign");
    assert!(clean.is_complete());
    drop(sink);

    // Kill mid-refinement (the ticket budget stops the campaign after two
    // invocation jobs — inside the refinement loop, before all four cells
    // are archived), then resume against the surviving archive + journal.
    let work_dir = temp_dir("work");
    let journal = work_dir.join("campaign.jsonl");
    let sink = SharedStore::open(&work_dir).expect("open work store");
    let partial = Campaign::new(resume_spec())
        .workers(2)
        .journal(&journal)
        .max_cells(2)
        .run(&sink)
        .expect("interrupted adaptive campaign");
    assert!(!partial.is_complete(), "2 tickets cannot finish 4 cells");
    drop(sink);

    let sink = SharedStore::open(&work_dir).expect("reopen work store");
    let resumed = Campaign::new(resume_spec())
        .workers(2)
        .journal(&journal)
        .resume(true)
        .run(&sink)
        .expect("resumed adaptive campaign");
    assert!(resumed.is_complete());
    drop(sink);

    // Same per-cell attainment (final n and target_met) as the clean run…
    assert_eq!(attainment(&work_dir), attainment(&clean_dir));
    assert_eq!(resumed.unmet, clean.unmet);

    // …and the same archive content, line for line (cell lines are
    // byte-identical whatever the schedule; only append order may differ).
    let clean_archive = fs::read(clean_dir.join(ARCHIVE_FILE)).expect("clean archive");
    let work_archive = fs::read(work_dir.join(ARCHIVE_FILE)).expect("work archive");
    let mut clean_lines: Vec<&[u8]> = clean_archive.split(|&b| b == b'\n').collect();
    let mut work_lines: Vec<&[u8]> = work_archive.split(|&b| b == b'\n').collect();
    clean_lines.sort();
    work_lines.sort();
    assert_eq!(clean_lines, work_lines);

    fs::remove_dir_all(&clean_dir).ok();
    fs::remove_dir_all(&work_dir).ok();
}
