//! Resilience of the shared archive service end to end: concurrent
//! duplicate writers against one `SharedStore`, and the kill-anywhere
//! property for a campaign running against `rigor serve` through the
//! fault-injecting `RemoteStore` client — however the network misbehaves
//! and wherever the server dies, the service archive must converge to the
//! exact line set an uninterrupted local run produces.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use rigor::campaign::CellSink;
use rigor::{Campaign, CampaignSpec, ExperimentConfig, NetFaultPlan};
use rigor_serve::{ArchiveServer, RemoteStore, ServerHandle};
use rigor_store::{SharedStore, Store, ARCHIVE_FILE};
use rigor_workloads::Size;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rigor-serve-resilience-{}-{name}",
        std::process::id()
    ));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// The grid under test: 2 benchmarks x 1 engine x 1 variant x 2 seeds.
fn spec() -> CampaignSpec {
    let base = ExperimentConfig::interp()
        .with_invocations(1)
        .with_iterations(2)
        .with_size(Size::Small)
        .with_seed(3);
    CampaignSpec::new(base)
        .with_benchmarks(["sieve", "leibniz"])
        .with_seeds(vec![3, 4])
}

/// The content-id set of every archived run, with its grid seq.
fn id_set(dir: &Path) -> BTreeSet<(u64, String)> {
    let store = Store::open(dir).expect("open");
    store.runs().map(|r| (r.seq, r.id.clone())).collect()
}

/// Starts a server over `dir`; returns (url, handle, join).
fn start_server(
    addr: &str,
    dir: &Path,
    faults: Option<NetFaultPlan>,
) -> (String, ServerHandle, std::thread::JoinHandle<()>) {
    let mut server = ArchiveServer::bind(addr, dir).expect("bind server");
    if let Some(plan) = faults {
        server = server.with_fault_plan(plan);
    }
    let handle = server.handle();
    let url = format!("127.0.0.1:{}", handle.addr().port());
    let join = std::thread::spawn(move || {
        let _ = server.serve();
    });
    (url, handle, join)
}

/// A client tuned for tests: short timeouts, tight backoff, breaker on.
fn client(url: &str, spool: &Path) -> RemoteStore {
    RemoteStore::connect(url)
        .with_timeout(Duration::from_millis(500))
        .with_retries(2)
        .with_backoff_base(Duration::from_millis(1))
        .with_breaker_threshold(2)
        .with_seed(17)
        .with_spool(spool)
        .expect("open spool")
}

/// Satellite stress test: N threads hammering `SharedStore::archive_cell`
/// with the same cells in different (duplicate, out-of-order) sequences
/// must converge to the same line set as one sequential pass — exactly one
/// line per cell — and the archive must verify clean.
#[test]
fn concurrent_duplicate_appends_converge_to_the_sequential_archive() {
    let cells = Arc::new(spec().cells().expect("grid"));
    let m = rigor::BenchmarkMeasurement {
        benchmark: "sieve".to_string(),
        engine: "interp".to_string(),
        invocations: vec![],
        censored: vec![],
        quarantined: false,
    };

    // Ground truth: one thread, grid order, no duplicates.
    let seq_dir = temp_dir("stress-sequential");
    let sequential = SharedStore::open(&seq_dir).expect("open");
    for c in cells.iter() {
        sequential.archive_cell(c, &m).expect("sequential append");
    }

    // 8 threads, each replaying the whole grid in a rotated order, several
    // times over — every append after the first per cell is a duplicate.
    let stress_dir = temp_dir("stress-concurrent");
    let shared = Arc::new(SharedStore::open(&stress_dir).expect("open"));
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let shared = Arc::clone(&shared);
            let cells = Arc::clone(&cells);
            let m = m.clone();
            std::thread::spawn(move || {
                for round in 0..4 {
                    for i in 0..cells.len() {
                        let c = &cells[(i + t + round) % cells.len()];
                        let receipt = shared.archive_cell(c, &m).expect("stress append");
                        assert_eq!(receipt.seq, c.index as u64);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("stress thread");
    }

    // Same line set (the interleaving may reorder lines, never change or
    // duplicate them), and a clean verification report.
    let read_sorted_lines = |dir: &Path| {
        let bytes = fs::read(dir.join(ARCHIVE_FILE)).expect("read archive");
        let mut lines: Vec<Vec<u8>> = bytes
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .map(<[u8]>::to_vec)
            .collect();
        lines.sort();
        lines
    };
    assert_eq!(read_sorted_lines(&stress_dir), read_sorted_lines(&seq_dir));
    assert_eq!(id_set(&stress_dir).len(), cells.len());
    assert!(Store::verify_dir(&stress_dir).expect("verify").is_clean());

    fs::remove_dir_all(&seq_dir).ok();
    fs::remove_dir_all(&stress_dir).ok();
}

/// The kill-anywhere property: a campaign against `rigor serve` through
/// the resilient client — under seeded refuse/drop/5xx/garbage faults,
/// with the server killed mid-campaign and restarted later — must
/// converge to a server archive holding the same content ids at the same
/// seqs as an uninterrupted local `SharedStore` run, verifying clean.
#[test]
fn killed_and_faulted_remote_campaign_converges_to_the_local_archive() {
    // Ground truth: the uninterrupted local run.
    let local_dir = temp_dir("kill-local");
    let sink = SharedStore::open(&local_dir).expect("open local");
    let report = Campaign::new(spec())
        .workers(1)
        .journal(local_dir.join("campaign.jsonl"))
        .run(&sink)
        .expect("local campaign");
    assert!(report.is_complete());
    let truth = id_set(&local_dir);
    assert_eq!(truth.len(), 4);

    // Phase 1: a flaky server; the campaign gets through 2 of 4 cells
    // before the server is killed.
    let server_dir = temp_dir("kill-server");
    let spool_dir = temp_dir("kill-spool");
    let work_dir = temp_dir("kill-work");
    fs::create_dir_all(&work_dir).expect("work dir");
    let journal = work_dir.join("campaign.jsonl");
    let faults = NetFaultPlan::new(23)
        .with_refuse_rate(0.15)
        .with_drop_rate(0.15)
        .with_error_rate(0.1)
        .with_garbage_rate(0.1);
    let (url, handle, join) = start_server("127.0.0.1:0", &server_dir, Some(faults.clone()));
    let phase1 = Campaign::new(spec())
        .workers(2)
        .journal(&journal)
        .max_cells(2)
        .run(&client(&url, &spool_dir))
        .expect("phase-1 campaign");
    assert_eq!(phase1.executed, 2);
    handle.stop();
    join.join().expect("server thread");

    // Phase 2: the server is gone. A fresh client process resumes the
    // campaign; every remaining cell lands in the spool.
    let resumed = Campaign::new(spec())
        .workers(2)
        .journal(&journal)
        .resume(true)
        .run(&client(&url, &spool_dir))
        .expect("phase-2 campaign");
    assert!(resumed.is_complete());
    assert!(resumed.failures.is_empty(), "{:?}", resumed.failures);

    // Phase 3: the server restarts on the same port over the same store,
    // still flaky. A fresh client replays the spool until it drains.
    let port = url.rsplit(':').next().expect("port");
    let (url, handle, join) = start_server(&format!("127.0.0.1:{port}"), &server_dir, Some(faults));
    let replayer = client(&url, &spool_dir);
    for _ in 0..500 {
        replayer.flush().expect("flush");
        if replayer.spooled() == 0 {
            break;
        }
    }
    assert_eq!(replayer.spooled(), 0, "the spool must drain");
    handle.stop();
    join.join().expect("server thread");

    // Convergence: same content ids at the same seqs, clean verification.
    assert_eq!(id_set(&server_dir), truth);
    assert!(Store::verify_dir(&server_dir).expect("verify").is_clean());

    for dir in [&local_dir, &server_dir, &spool_dir, &work_dir] {
        fs::remove_dir_all(dir).ok();
    }
}
