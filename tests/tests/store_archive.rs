//! Crash-safety properties of the results archive: killing a process after
//! *any* byte prefix of `archive.jsonl` must leave a store that opens,
//! loads exactly the complete records, and — once the lost runs are
//! re-appended — reproduces the uninterrupted file byte for byte. A
//! recovered archive must also gate regressions identically to one that
//! was never interrupted.

use std::fs;
use std::path::PathBuf;

use rigor::measurement::{BenchmarkMeasurement, InvocationRecord};
use rigor::{check_regressions, GatePolicy, SteadyStateDetector};
use rigor_store::{BaselineRef, Store, ARCHIVE_FILE};

/// A deterministic, steady measurement: every iteration takes `level` ns.
fn constant(benchmark: &str, level: f64) -> BenchmarkMeasurement {
    BenchmarkMeasurement {
        benchmark: benchmark.into(),
        engine: "interp".into(),
        invocations: (0..4)
            .map(|i| InvocationRecord {
                invocation: i,
                seed: u64::from(i) + 1,
                startup_ns: 10.0,
                iteration_ns: vec![level; 12],
                gc_cycles: 0,
                jit_compiles: 0,
                deopts: 0,
                checksum: "42".into(),
                iteration_counters: None,
                attempts: 1,
            })
            .collect(),
        censored: Vec::new(),
        quarantined: false,
    }
}

fn config() -> rigor::ExperimentConfig {
    rigor::ExperimentConfig::interp()
        .with_invocations(4)
        .with_iterations(12)
        .with_seed(0xA11CE)
}

/// The three runs every scenario archives, in order.
fn runs() -> Vec<(Option<String>, Vec<BenchmarkMeasurement>)> {
    vec![
        (
            None,
            vec![constant("sieve", 100.0), constant("nbody", 50.0)],
        ),
        (
            Some("second".into()),
            vec![constant("sieve", 101.0), constant("nbody", 50.5)],
        ),
        (None, vec![constant("sieve", 99.5), constant("nbody", 49.8)]),
    ]
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rigor-store-prefix-test-{}-{name}",
        std::process::id()
    ));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Builds the uninterrupted archive and returns its journal bytes.
fn clean_archive_bytes(dir: &PathBuf) -> Vec<u8> {
    let mut store = Store::open(dir).expect("open fresh store");
    for (label, measurements) in runs() {
        store
            .append(label, &config(), measurements)
            .expect("append");
    }
    fs::read(dir.join(ARCHIVE_FILE)).expect("read journal")
}

#[test]
fn every_byte_prefix_recovers_and_reappends_byte_identically() {
    let clean_dir = temp_dir("clean");
    let clean = clean_archive_bytes(&clean_dir);
    // How many complete record lines a prefix of each length contains:
    // count newlines past the meta line.
    let meta_end = clean
        .iter()
        .position(|&b| b == b'\n')
        .expect("meta newline")
        + 1;

    let work_dir = temp_dir("work");
    for cut in 0..=clean.len() {
        fs::remove_dir_all(&work_dir).ok();
        fs::create_dir_all(&work_dir).expect("work dir");
        fs::write(work_dir.join(ARCHIVE_FILE), &clean[..cut]).expect("write prefix");

        let mut store = Store::open(&work_dir)
            .unwrap_or_else(|e| panic!("prefix of {cut} bytes failed to open: {e}"));
        let complete_records = if cut < meta_end {
            0
        } else {
            clean[meta_end..cut].iter().filter(|&&b| b == b'\n').count()
        };
        assert_eq!(
            store.len(),
            complete_records,
            "prefix of {cut} bytes must load exactly the complete records"
        );
        // A cut strictly inside a line is a torn tail.
        let at_boundary = cut == 0 || clean[cut - 1] == b'\n';
        assert_eq!(
            store.recovered_torn_tail(),
            !at_boundary,
            "torn-tail flag wrong at cut {cut}"
        );

        // Re-append the lost runs: the journal must reproduce the
        // uninterrupted file byte for byte (content addressing demands the
        // payload bytes be deterministic).
        for (label, measurements) in runs().into_iter().skip(store.len()) {
            store
                .append(label, &config(), measurements)
                .unwrap_or_else(|e| panic!("re-append after cut {cut} failed: {e}"));
        }
        let repaired = fs::read(work_dir.join(ARCHIVE_FILE)).expect("read repaired");
        assert_eq!(
            repaired, clean,
            "repaired journal differs from the uninterrupted one after cut {cut}"
        );
    }
    fs::remove_dir_all(&clean_dir).ok();
    fs::remove_dir_all(&work_dir).ok();
}

#[test]
fn recovered_archive_gates_identically_to_uninterrupted() {
    let clean_dir = temp_dir("gate-clean");
    let clean = clean_archive_bytes(&clean_dir);

    // Kill mid-way through the final record line, then recover + re-append.
    let torn_dir = temp_dir("gate-torn");
    fs::create_dir_all(&torn_dir).expect("torn dir");
    fs::write(torn_dir.join(ARCHIVE_FILE), &clean[..clean.len() - 31]).expect("torn write");
    let mut recovered = Store::open(&torn_dir).expect("open torn");
    assert!(recovered.recovered_torn_tail());
    assert_eq!(recovered.len(), 2);
    for (label, measurements) in runs().into_iter().skip(recovered.len()) {
        recovered
            .append(label, &config(), measurements)
            .expect("re-append");
    }

    // The same "current" measurement gated against both stores must yield
    // identical reports (down to the serialized JSON).
    let current = vec![constant("sieve", 100.2), constant("nbody", 50.1)];
    let det = SteadyStateDetector::default();
    let policy = GatePolicy::default();
    let report_of = |store: &Store| {
        let baseline = BaselineRef::parse("last-3").select(store).expect("select");
        let slices: Vec<&[BenchmarkMeasurement]> =
            baseline.iter().map(|r| r.measurements.as_slice()).collect();
        let pooled = rigor::pool_measurements(&slices);
        serde_json::to_string(&check_regressions(&pooled, &current, &det, &policy))
            .expect("serialize report")
    };
    let clean_store = Store::open(&clean_dir).expect("reopen clean");
    assert_eq!(report_of(&clean_store), report_of(&recovered));

    fs::remove_dir_all(&clean_dir).ok();
    fs::remove_dir_all(&torn_dir).ok();
}

#[test]
fn verify_is_clean_on_recovered_then_repaired_archive() {
    let dir = temp_dir("verify");
    let clean = clean_archive_bytes(&dir);
    fs::write(dir.join(ARCHIVE_FILE), &clean[..clean.len() - 5]).expect("tear");
    let mut store = Store::open(&dir).expect("open torn");
    assert!(!store.verify().expect("verify").is_clean());
    for (label, measurements) in runs().into_iter().skip(store.len()) {
        store
            .append(label, &config(), measurements)
            .expect("append");
    }
    let report = store.verify().expect("verify repaired");
    assert!(report.is_clean());
    assert_eq!(report.intact, 3);
    fs::remove_dir_all(&dir).ok();
}
