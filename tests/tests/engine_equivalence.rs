//! Differential tests: the interpreter and the JIT engine must compute the
//! same results, always — the JIT differs in virtual time only.

use integration_tests::test_seed;
use minipy::{
    compile_unfused, CompiledProgram, DynCounters, JitConfig, NoiseConfig, Session, Value, VmConfig,
};
use proptest::prelude::*;
use rigor_workloads::{random_program, suite, Size};

/// A JIT config with a tiny hot threshold so even short loops compile,
/// maximizing compiled-code coverage in differential tests.
fn eager_jit() -> VmConfig {
    VmConfig {
        engine: minipy::EngineKind::Jit(JitConfig {
            hot_threshold: 10,
            max_guard_failures: 2,
            mode: minipy::JitMode::Full,
        }),
        ..VmConfig::default()
    }
}

fn run_many(src: &str, cfg: VmConfig, seed: u64, iters: usize) -> Vec<String> {
    let mut s = Session::start(src, seed, cfg).expect("session");
    (0..iters)
        .map(|_| {
            let r = s.run_iteration().expect("iteration");
            s.render(r.value)
        })
        .collect()
}

/// Runs `iters` iterations from a frozen program, returning rendered
/// checksums, per-iteration virtual times, and the VM's final counters.
fn sweep(
    program: &CompiledProgram,
    cfg: VmConfig,
    seed: u64,
    iters: usize,
) -> (Vec<String>, Vec<f64>, DynCounters) {
    let mut s = Session::start_from(program, seed, cfg).expect("session");
    let mut sums = Vec::with_capacity(iters);
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let r = s.run_iteration().expect("iteration");
        sums.push(s.render(r.value));
        times.push(r.virtual_ns);
    }
    (sums, times, s.vm().counters())
}

/// The fast-path contract, checked over the whole suite on both engines:
/// superinstruction fusion and frozen (parse-once) sessions must be
/// invisible — identical checksums, bit-identical virtual-time sequences,
/// and identical counters (op-class charge totals, probes, GC, JIT events)
/// versus unfused and fresh-compiled execution.
#[test]
fn fast_path_sweep_is_bit_identical_across_execution_modes() {
    for w in suite() {
        let src = w.source(Size::Small);
        let seed = test_seed(w.name);
        let fused = CompiledProgram::compile(&src).expect("compile");
        let unfused = CompiledProgram::from_program(compile_unfused(&src).expect("compile"));
        for mk in [VmConfig::interp as fn() -> VmConfig, eager_jit] {
            let (sums_fused, times_fused, counters_fused) = sweep(&fused, mk(), seed, 2);
            let (sums_unfused, times_unfused, counters_unfused) = sweep(&unfused, mk(), seed, 2);
            assert_eq!(
                sums_fused, sums_unfused,
                "fusion changed results on {}",
                w.name
            );
            assert_eq!(
                times_fused, times_unfused,
                "fusion moved virtual time on {}",
                w.name
            );
            assert_eq!(
                counters_fused, counters_unfused,
                "fusion changed counters on {}",
                w.name
            );

            // Fresh sessions (compile per invocation) match frozen sessions.
            let mut fresh = Session::start(&src, seed, mk()).expect("session");
            let fresh_times: Vec<f64> = (0..2)
                .map(|_| fresh.run_iteration().expect("iteration").virtual_ns)
                .collect();
            assert_eq!(
                fresh_times, times_fused,
                "frozen session diverged from fresh session on {}",
                w.name
            );
        }
    }
}

/// With the JIT disabled, the hoisted engine check must leave zero JIT
/// accounting: no jit-priced ops, no compiles, no deopts — on every workload.
#[test]
fn interp_engine_pays_zero_jit_accounting() {
    for w in suite() {
        let src = w.source(Size::Small);
        let program = CompiledProgram::compile(&src).expect("compile");
        let (_, _, counters) = sweep(&program, VmConfig::interp(), test_seed(w.name), 2);
        assert_eq!(counters.jit_ops, 0, "{} charged jit-priced ops", w.name);
        assert_eq!(counters.jit_compiles, 0, "{} compiled", w.name);
        assert_eq!(counters.deopts, 0, "{} deopted", w.name);
    }
}

#[test]
fn eager_jit_matches_interp_on_whole_suite_across_iterations() {
    for w in suite() {
        let src = w.source(Size::Small);
        let seed = test_seed(w.name);
        let a = run_many(&src, VmConfig::interp(), seed, 3);
        let b = run_many(&src, eager_jit(), seed, 3);
        assert_eq!(a, b, "engine divergence on {}", w.name);
    }
}

/// The suite-wide checksum-oracle contract: for every workload, at every
/// size, under three seeds, the checksum is (a) constant across the
/// iterations of one session, (b) identical across two *fresh* sessions
/// (no state leaks out of `run()` into module globals between sessions or
/// iterations), and (c) independent of how many iterations a session has
/// already run. This is the property the `rigor verify` golden manifest
/// pins; here it is established from first principles across the full
/// registry cross-product.
#[test]
fn every_workload_checksum_is_deterministic_at_every_size_and_seed() {
    // One closure per workload, fanned across threads: the full
    // 29 × {S,M,L} × 3-seed grid is minutes of single-threaded debug-mode
    // VM time, but workloads are independent.
    let check = |w: &rigor_workloads::Workload| {
        for size in [Size::Small, Size::Default, Size::Large] {
            let src = w.source(size);
            let mut expected: Option<String> = None;
            for seed in [1u64, 2, 3] {
                // Each seed gets a fresh session; the first runs two
                // iterations, the rest one — so agreement across the whole
                // set proves the checksum is stable within a session,
                // identical across fresh sessions of different lengths,
                // and seed-invariant. (One crossing per seed keeps the
                // grid affordable; the heavier per-cell iteration sweep
                // runs in `rigor verify`.)
                let iters = if seed == 1 { 2 } else { 1 };
                for sum in run_many(&src, VmConfig::interp(), seed, iters) {
                    match &expected {
                        None => expected = Some(sum),
                        Some(e) => assert_eq!(
                            &sum, e,
                            "{} at {size:?} seed {seed}: checksum not deterministic",
                            w.name
                        ),
                    }
                }
            }
        }
    };
    let workloads = suite();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(workloads.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(w) = workloads.get(i) else { break };
                check(w);
            });
        }
    });
}

#[test]
fn deopt_path_preserves_semantics() {
    // Type-flipping loop with a hot threshold low enough that guards compile
    // on the int phase and fail on the float phase.
    let src = "\
def total(xs):
    acc = 0.0
    for x in xs:
        acc = acc + x * 3 - 1
    return acc

def run():
    ints = [1, 2, 3, 4, 5, 6, 7, 8] * 8
    floats = [1.5, 2.5, 3.5, 4.5] * 16
    return total(ints) + total(floats) + total(ints)
";
    let a = run_many(src, VmConfig::interp(), 1, 5);
    let b = run_many(src, eager_jit(), 1, 5);
    assert_eq!(a, b);
}

#[test]
fn blacklisted_loops_still_compute_correctly() {
    // Alternate among three types so guards exhaust their failure budget.
    let src = "\
def mix(i):
    if i % 3 == 0:
        return 1
    if i % 3 == 1:
        return 1.5
    return True

def run():
    acc = 0.0
    i = 0
    while i < 200:
        acc = acc + mix(i) + mix(i + 1)
        i = i + 1
    return floor(acc * 10.0)
";
    let a = run_many(src, VmConfig::interp(), 2, 4);
    let b = run_many(src, eager_jit(), 2, 4);
    assert_eq!(a, b);
    // Confirm the adversarial pattern actually exercised the deopt machinery.
    let mut s = Session::start(src, 2, eager_jit()).unwrap();
    for _ in 0..4 {
        s.run_iteration().unwrap();
    }
    assert!(s.vm().counters().deopts > 0, "expected guard failures");
}

#[test]
fn noise_sources_never_change_results() {
    let w = rigor_workloads::find("dict_churn").expect("in suite");
    let src = w.source(Size::Small);
    let mut configs = Vec::new();
    for hash in [false, true] {
        for layout in [false, true] {
            let mut cfg = VmConfig::interp();
            cfg.noise = NoiseConfig {
                hash_randomization: hash,
                layout,
                os_jitter: hash,
                gc_costed: layout,
            };
            configs.push(cfg);
        }
    }
    let mut results = Vec::new();
    for cfg in configs {
        results.push(run_many(&src, cfg, 9, 2));
    }
    for r in &results[1..] {
        assert_eq!(
            *r, results[0],
            "noise must only perturb time, never semantics"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential fuzzing: random integer programs produce identical
    /// results on both engines, across iterations and seeds.
    #[test]
    fn random_programs_are_engine_equivalent(seed in 0u64..5000) {
        let src = random_program(seed);
        let a = run_many(&src, VmConfig::interp(), seed, 2);
        let b = run_many(&src, eager_jit(), seed, 2);
        prop_assert_eq!(a, b, "divergence for generator seed {}:\n{}", seed, src);
    }

    /// Virtual time is deterministic: identical seeds and configs yield
    /// identical clocks, regardless of which engine.
    #[test]
    fn virtual_time_is_reproducible(seed in 0u64..1000) {
        let src = random_program(seed);
        let run_ns = |cfg: VmConfig| -> f64 {
            let mut s = Session::start(&src, seed, cfg).expect("session");
            s.run_iteration().expect("iteration");
            s.vm().now_ns()
        };
        prop_assert_eq!(run_ns(VmConfig::interp()), run_ns(VmConfig::interp()));
        prop_assert_eq!(run_ns(eager_jit()), run_ns(eager_jit()));
    }
}

#[test]
fn jit_returns_same_value_type_as_interp() {
    // Return-type preservation under compilation: floats stay floats.
    let src = "\
def run():
    acc = 0.0
    i = 0
    while i < 100:
        acc = acc + 0.5
        i = i + 1
    return acc
";
    let mut si = Session::start(src, 1, VmConfig::interp()).unwrap();
    let mut sj = Session::start(src, 1, eager_jit()).unwrap();
    for _ in 0..3 {
        let a = si.run_iteration().unwrap().value;
        let b = sj.run_iteration().unwrap().value;
        assert_eq!(a, Value::Float(50.0));
        assert_eq!(b, Value::Float(50.0));
    }
}
